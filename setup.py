"""Shim so `pip install -e .` works without the `wheel` package installed.

Offline environments that lack `wheel` cannot run PEP 660 editable builds;
with this file present pip falls back to the legacy `setup.py develop` path.
All project metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
