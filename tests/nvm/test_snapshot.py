"""Snapshot/restore at the NVM layer: crossbars, tile banks, CiM matrices."""

import numpy as np
import pytest

from repro.cim import CiMMatrix
from repro.nvm import get_device
from repro.nvm.crossbar import CrossbarArray, CrossbarStats, TileBank
from repro.serve.codec import decode_value, encode_value


def roundtrip(snap):
    """Push a snapshot through the binary codec, as spill/restore does."""
    return decode_value(encode_value(snap))


def make_crossbar(seed=3, rows=8, cols=6):
    device = get_device("NVM-1")
    array = CrossbarArray(device, rows=rows, cols=cols, sigma=0.1,
                          rng=np.random.default_rng(seed))
    levels = np.random.default_rng(0).integers(0, device.n_levels,
                                               (rows, cols))
    array.program(levels)
    return array


class TestCrossbarStats:
    def test_subtract_inverts_add(self):
        a = CrossbarStats(1, 2, 3, 4, 5)
        b = CrossbarStats(10, 20, 30, 40, 50)
        assert CrossbarStats().add(b).add(a).subtract(a) == b

    def test_dict_roundtrip(self):
        stats = CrossbarStats(1, 2, 3, 4, 5)
        assert CrossbarStats.from_dict(stats.to_dict()) == stats


class TestCrossbarArraySnapshot:
    def test_restore_is_bit_identical(self):
        array = make_crossbar()
        array.matvec(np.ones(8, dtype=np.float32))
        other = CrossbarArray(get_device("NVM-1"), rows=8, cols=6, sigma=0.1)
        other.restore(roundtrip(array.snapshot()))
        assert np.array_equal(other.conductance, array.conductance)
        assert np.array_equal(other.target_levels, array.target_levels)
        assert other.stats == array.stats

    def test_restored_rng_continues_identically(self):
        array = make_crossbar()
        other = CrossbarArray(get_device("NVM-1"), rows=8, cols=6, sigma=0.1)
        other.restore(array.snapshot())
        mask = np.ones((8, 6), dtype=bool)
        array.reprogram_cells(mask)
        other.reprogram_cells(mask)
        assert np.array_equal(other.conductance, array.conductance)

    def test_counters_only_snapshot_skips_state(self):
        array = make_crossbar()
        snap = array.snapshot(include_state=False)
        assert "conductance" not in snap
        other = make_crossbar(seed=99)
        before = other.conductance.copy()
        other.restore(roundtrip(snap))
        assert np.array_equal(other.conductance, before)  # state untouched
        assert other.stats == array.stats

    def test_rejects_unknown_version(self):
        array = make_crossbar()
        snap = array.snapshot()
        snap["version"] = 999
        with pytest.raises(ValueError, match="version"):
            array.restore(snap)

    def test_rejects_geometry_mismatch(self):
        array = make_crossbar()
        other = CrossbarArray(get_device("NVM-1"), rows=4, cols=6, sigma=0.1)
        with pytest.raises(ValueError, match="geometry"):
            other.restore(array.snapshot())


class TestTileBankSnapshot:
    def make_bank(self, seed=5, n_tiles=3, rows=8, cols=6):
        device = get_device("NVM-2")
        rngs = [np.random.default_rng(seed + i) for i in range(n_tiles)]
        bank = TileBank(device, n_tiles, rows=rows, cols=cols, sigma=0.1,
                        rngs=rngs)
        levels = np.random.default_rng(1).integers(
            0, device.n_levels, (n_tiles, rows, cols))
        bank.program(levels)
        return bank

    def test_restore_is_bit_identical(self):
        bank = self.make_bank()
        chunks = np.random.default_rng(2).normal(
            size=(bank.n_tiles, 2, bank.rows)).astype(np.float32)
        bank.matmat(chunks)
        other = self.make_bank(seed=77)
        other.restore(roundtrip(bank.snapshot()))
        assert np.array_equal(other.conductance, bank.conductance)
        assert other.aggregate_stats() == bank.aggregate_stats()
        # The restored bank computes identically, merged-operand cache
        # included (restore bumps the version so the cache rebuilds).
        assert np.array_equal(other.matmat(chunks), bank.matmat(chunks))

    def test_restored_rngs_continue_identically(self):
        bank = self.make_bank()
        other = self.make_bank(seed=77)
        other.restore(bank.snapshot())
        masks = np.ones((bank.n_tiles, bank.rows, bank.cols), dtype=bool)
        bank.reprogram_cells(masks)
        other.reprogram_cells(masks)
        assert np.array_equal(other.conductance, bank.conductance)

    def test_counters_only_restores_counter_vectors(self):
        bank = self.make_bank()
        bank.read_cells()
        snap = roundtrip(bank.snapshot(include_state=False))
        assert "conductance" not in snap
        other = self.make_bank(seed=77)
        other.restore(snap)
        assert np.array_equal(other.cell_reads, bank.cell_reads)
        assert np.array_equal(other.write_pulses, bank.write_pulses)

    def test_rejects_geometry_mismatch(self):
        bank = self.make_bank()
        other = self.make_bank(n_tiles=4)
        with pytest.raises(ValueError, match="geometry"):
            other.restore(bank.snapshot())


class TestCiMMatrixSnapshot:
    def make_matrix(self, vectorized, seed=5, mitigation=None):
        values = np.random.default_rng(1).normal(size=(20, 10))
        return CiMMatrix(values.astype(np.float32), get_device("NVM-3"),
                         sigma=0.1, rows=8, cols=6, vectorized=vectorized,
                         mitigation=mitigation,
                         rng=np.random.default_rng(seed))

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_from_snapshot_is_bit_identical(self, vectorized):
        matrix = self.make_matrix(vectorized)
        query = np.random.default_rng(2).normal(size=20).astype(np.float32)
        matrix.matvec(query)
        rebuilt = CiMMatrix.from_snapshot(roundtrip(matrix.snapshot()),
                                          get_device("NVM-3"))
        assert rebuilt.aggregate_stats() == matrix.aggregate_stats()
        assert np.array_equal(rebuilt.matvec(query), matrix.matvec(query))
        assert np.array_equal(rebuilt.read_matrix(), matrix.read_matrix())

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_from_snapshot_bills_no_programming(self, vectorized):
        matrix = self.make_matrix(vectorized)
        before = matrix.aggregate_stats()
        rebuilt = CiMMatrix.from_snapshot(matrix.snapshot(),
                                          get_device("NVM-3"))
        after = rebuilt.aggregate_stats()
        assert after.write_pulses == before.write_pulses
        assert after.cells_programmed == before.cells_programmed

    def test_mitigation_calibration_travels(self):
        from repro.mitigation import make_mitigation
        matrix = self.make_matrix(True, mitigation=make_mitigation("cxdnn"))
        assert matrix.calibration  # cxdnn calibrates at program time
        rebuilt = CiMMatrix.from_snapshot(
            roundtrip(matrix.snapshot()), get_device("NVM-3"),
            mitigation=make_mitigation("cxdnn"))
        query = np.random.default_rng(2).normal(size=20).astype(np.float32)
        assert np.array_equal(rebuilt.matvec(query), matrix.matvec(query))

    def test_from_snapshot_requires_matching_mitigation(self):
        matrix = self.make_matrix(True)
        from repro.mitigation import make_mitigation
        with pytest.raises(ValueError, match="mitigation"):
            CiMMatrix.from_snapshot(matrix.snapshot(), get_device("NVM-3"),
                                    mitigation=make_mitigation("cxdnn"))

    def test_from_snapshot_requires_full_state(self):
        matrix = self.make_matrix(True)
        with pytest.raises(ValueError, match="counters-only"):
            CiMMatrix.from_snapshot(matrix.snapshot(include_state=False),
                                    get_device("NVM-3"))

    def test_counters_only_restore_onto_identical_rebuild(self):
        matrix = self.make_matrix(True)
        query = np.random.default_rng(2).normal(size=20).astype(np.float32)
        matrix.matvec(query)
        rebuilt = self.make_matrix(True)   # same seeds -> same conductances
        rebuilt.restore(roundtrip(matrix.snapshot(include_state=False)))
        assert rebuilt.aggregate_stats() == matrix.aggregate_stats()
        assert np.array_equal(rebuilt.matvec(query), matrix.matvec(query))
