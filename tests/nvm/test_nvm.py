"""Tests for device models, int16 bit-slicing and the crossbar array."""

import numpy as np
import pytest

from repro.nvm import (
    CrossbarArray,
    Int16Codec,
    REFERENCE_SIGMA,
    available_devices,
    digits_to_values,
    get_device,
    slice_to_digits,
)

RNG = np.random.default_rng(17)


class TestDeviceModels:
    def test_table_ii_devices_present(self):
        assert available_devices() == ["NVM-1", "NVM-2", "NVM-3",
                                       "NVM-4", "NVM-5"]

    def test_table_ii_values(self):
        nvm3 = get_device("NVM-3")
        assert nvm3.device == "FeFET3"
        assert nvm3.level_sigmas == (0.0049, 0.0146, 0.0146, 0.0049)

    def test_lookup_by_physical_name(self):
        assert get_device("RRAM4").name == "NVM-4"

    def test_unknown_device(self):
        with pytest.raises(KeyError):
            get_device("NVM-9")

    def test_nvm1_is_binary(self):
        nvm1 = get_device("NVM-1")
        assert nvm1.n_levels == 2
        assert nvm1.bits_per_cell == 1

    def test_multilevel_devices_are_2bit(self):
        for name in ("NVM-2", "NVM-3", "NVM-4", "NVM-5"):
            assert get_device(name).bits_per_cell == 2

    def test_level_values_normalised(self):
        values = get_device("NVM-3").level_values()
        np.testing.assert_allclose(values, [0.0, 1/3, 2/3, 1.0])

    def test_sigma_scales_linearly(self):
        device = get_device("NVM-3")
        levels = np.array([1, 2])
        low = device.sigma_for_levels(levels, sigma=REFERENCE_SIGMA)
        high = device.sigma_for_levels(levels, sigma=10 * REFERENCE_SIGMA)
        np.testing.assert_allclose(high, 10 * low)

    def test_sigma_matches_table_at_reference(self):
        device = get_device("NVM-5")
        stds = device.sigma_for_levels(np.array([0, 1, 2, 3]),
                                       sigma=REFERENCE_SIGMA)
        np.testing.assert_allclose(stds, device.level_sigmas)

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            get_device("NVM-3").sigma_for_levels(np.array([4]))

    def test_middle_levels_noisier(self):
        """Table II pattern: mid conductance states have larger variation."""
        for name in ("NVM-2", "NVM-3", "NVM-4", "NVM-5"):
            s = get_device(name).level_sigmas
            assert s[1] > s[0] and s[2] > s[3]

    def test_program_noise_statistics(self):
        device = get_device("NVM-3")
        levels = np.full(20000, 1)
        noise = device.program_noise(levels, sigma=0.1,
                                     rng=np.random.default_rng(0))
        expected = 0.0146 * (0.1 / REFERENCE_SIGMA)
        assert abs(noise.std() - expected) < 0.01 * expected * 5
        assert abs(noise.mean()) < expected / 50


class TestBitSlicing:
    def test_roundtrip_exact(self):
        ints = RNG.integers(-32768, 32768, size=(10, 7)).astype(np.int64)
        for bits in (1, 2, 4, 8):
            digits = slice_to_digits(ints, bits)
            back = digits_to_values(digits, bits)
            np.testing.assert_array_equal(back, ints)

    def test_digit_range(self):
        ints = RNG.integers(-32768, 32768, size=100)
        digits = slice_to_digits(ints, 2)
        assert digits.shape == (8, 100)
        assert digits.min() >= 0 and digits.max() <= 3

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            slice_to_digits(np.array([0]), 3)

    def test_noise_weighting_in_recompose(self):
        """MSB digit noise moves the value 4^7 times more than LSB noise."""
        ints = np.zeros(1, dtype=np.int64)
        digits = slice_to_digits(ints, 2).astype(np.float64)
        lsb = digits.copy()
        lsb[0] += 0.5
        msb = digits.copy()
        msb[7] += 0.5
        lsb_shift = digits_to_values(lsb, 2)[0]
        msb_shift = digits_to_values(msb, 2)[0]
        assert msb_shift == pytest.approx(lsb_shift * 4 ** 7)


class TestInt16Codec:
    def test_roundtrip_within_quantum(self):
        values = RNG.normal(size=(50,)).astype(np.float32)
        codec = Int16Codec.fit(values)
        decoded = codec.decode(codec.encode(values))
        assert np.abs(decoded - values).max() <= codec.scale

    def test_clipping_at_extremes(self):
        codec = Int16Codec(scale=0.001)
        assert codec.encode(np.array([100.0]))[0] == 32767
        assert codec.encode(np.array([-100.0]))[0] == -32768

    def test_fit_empty_and_zero(self):
        codec = Int16Codec.fit(np.zeros(5))
        assert codec.scale > 0

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            Int16Codec(scale=0.0)


class TestCrossbarArray:
    def _array(self, sigma=0.1, seed=0, device="NVM-3"):
        return CrossbarArray(get_device(device), rows=32, cols=16,
                             sigma=sigma, rng=np.random.default_rng(seed))

    def test_program_and_read(self):
        xbar = self._array(sigma=0.0)
        levels = RNG.integers(0, 4, size=(32, 16))
        xbar.program(levels)
        np.testing.assert_allclose(xbar.read_cells(), levels, atol=1e-5)

    def test_requires_programming_first(self):
        with pytest.raises(RuntimeError):
            self._array().read_cells()
        with pytest.raises(RuntimeError):
            self._array().matvec(np.ones(32))

    def test_shape_validation(self):
        xbar = self._array()
        with pytest.raises(ValueError):
            xbar.program(np.zeros((4, 4), dtype=np.int64))
        xbar.program(np.zeros((32, 16), dtype=np.int64))
        with pytest.raises(ValueError):
            xbar.matvec(np.ones(31))

    def test_matvec_matches_ideal_without_noise(self):
        xbar = self._array(sigma=0.0)
        levels = RNG.integers(0, 4, size=(32, 16))
        xbar.program(levels)
        x = RNG.normal(size=32).astype(np.float32)
        ideal = x @ (levels / 3.0)
        out = xbar.matvec(x, quantize_output=False)
        np.testing.assert_allclose(out, ideal, atol=1e-4)

    def test_noise_perturbs_conductance(self):
        a = self._array(sigma=0.1, seed=1)
        levels = np.full((32, 16), 2)
        a.program(levels)
        deviation = a.conductance - 2 / 3.0
        assert 0.05 < deviation.std() < 0.3

    def test_adc_quantizes_output(self):
        xbar = CrossbarArray(get_device("NVM-3"), rows=32, cols=16,
                             sigma=0.0, adc_bits=3)
        xbar.program(RNG.integers(0, 4, size=(32, 16)))
        x = np.ones(32, dtype=np.float32)
        out = xbar.matvec(x)
        step = 2.0 * 32 / (2 ** 3 - 1)
        np.testing.assert_allclose(out / step, np.round(out / step), atol=1e-5)

    def test_reprogram_cells_redraws_masked_only(self):
        xbar = self._array(sigma=0.2, seed=3)
        xbar.program(np.full((32, 16), 1))
        before = xbar.conductance.copy()
        mask = np.zeros((32, 16), dtype=bool)
        mask[:4] = True
        xbar.reprogram_cells(mask)
        after = xbar.conductance
        assert not np.allclose(after[:4], before[:4])
        np.testing.assert_allclose(after[4:], before[4:])

    def test_stats_counters(self):
        xbar = self._array()
        xbar.program(np.zeros((32, 16), dtype=np.int64))
        xbar.matvec(np.ones(32))
        xbar.read_cells()
        stats = xbar.stats
        assert stats.cells_programmed == 32 * 16
        assert stats.mvm_ops == 1
        assert stats.adc_conversions == 16
        assert stats.cell_reads == 32 * 16

    def test_unquantized_readout_skips_adc(self):
        """No ADC conversions are counted for an ideal analog readout —
        counting them would inflate the energy model."""
        xbar = self._array()
        xbar.program(np.zeros((32, 16), dtype=np.int64))
        xbar.matvec(np.ones(32), quantize_output=False)
        assert xbar.stats.mvm_ops == 1
        assert xbar.stats.adc_conversions == 0
        xbar.matvec(np.ones(32), quantize_output=True)
        assert xbar.stats.adc_conversions == 16

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CrossbarArray(get_device("NVM-3"), rows=0, cols=8)
        with pytest.raises(ValueError):
            CrossbarArray(get_device("NVM-3"), adc_bits=1)
