"""Tests for pooling, WMSDP and the CiM search engines."""

import numpy as np
import pytest

from repro.nvm import get_device
from repro.retrieval import (
    MIPS_CONFIG,
    SSA_CONFIG,
    CiMSearchEngine,
    SearchConfig,
    avg_pool_rows,
    multi_scale_vectors,
    pad_rows,
    wmsdp_reference,
)

RNG = np.random.default_rng(31)


class TestPooling:
    def test_pad_extends_with_zeros(self):
        out = pad_rows(np.ones((3, 4)), 6)
        assert out.shape == (6, 4)
        np.testing.assert_allclose(out[3:], 0.0)

    def test_pad_truncates(self):
        out = pad_rows(np.arange(20).reshape(10, 2), 4)
        assert out.shape == (4, 2)
        np.testing.assert_allclose(out[3], [6, 7])

    def test_pad_validation(self):
        with pytest.raises(ValueError):
            pad_rows(np.ones(4), 2)
        with pytest.raises(ValueError):
            pad_rows(np.ones((2, 2)), 0)

    def test_scale1_identity(self):
        x = RNG.normal(size=(8, 3)).astype(np.float32)
        np.testing.assert_allclose(avg_pool_rows(x, 1), x)

    def test_scale2_averages_pairs(self):
        x = np.array([[1.0], [3.0], [5.0], [7.0]], dtype=np.float32)
        np.testing.assert_allclose(avg_pool_rows(x, 2), [[2.0], [6.0]])

    def test_indivisible_rows_rejected(self):
        with pytest.raises(ValueError):
            avg_pool_rows(np.ones((5, 2)), 2)

    def test_multi_scale_shapes(self):
        vectors = multi_scale_vectors(RNG.normal(size=(10, 6)), (1, 2, 4), 16)
        assert vectors[1].shape == (96,)
        assert vectors[2].shape == (48,)
        assert vectors[4].shape == (24,)

    def test_pooling_preserves_mean(self):
        x = RNG.normal(size=(16, 4)).astype(np.float32)
        np.testing.assert_allclose(avg_pool_rows(x, 4).mean(axis=0),
                                   x.mean(axis=0), atol=1e-6)


class TestSearchConfig:
    def test_defaults_match_paper(self):
        assert SSA_CONFIG.scales == (1, 2, 4)
        assert SSA_CONFIG.weights == (1.0, 0.8, 0.6)
        assert MIPS_CONFIG.scales == (1,)

    def test_validation(self):
        with pytest.raises(ValueError):
            SearchConfig(scales=(1, 2), weights=(1.0,))
        with pytest.raises(ValueError):
            SearchConfig(scales=(3,), weights=(1.0,))  # 16 % 3 != 0
        with pytest.raises(ValueError):
            SearchConfig(scales=(1,), weights=(0.0,))
        with pytest.raises(ValueError):
            SearchConfig(scales=(), weights=())


class TestWMSDPReference:
    def test_self_similarity_highest(self):
        mats = [RNG.normal(size=(8, 6)).astype(np.float32) for _ in range(5)]
        for i, query in enumerate(mats):
            scores = [wmsdp_reference(query, m) for m in mats]
            assert int(np.argmax(scores)) == i

    def test_normalized_self_similarity_is_one(self):
        m = RNG.normal(size=(8, 6)).astype(np.float32)
        assert wmsdp_reference(m, m) == pytest.approx(1.0, abs=1e-5)

    def test_mips_equals_plain_inner_product(self):
        config = SearchConfig(scales=(1,), weights=(1.0,),
                              normalize_scales=False)
        a = RNG.normal(size=(16, 4)).astype(np.float32)
        b = RNG.normal(size=(16, 4)).astype(np.float32)
        expected = float(a.reshape(-1) @ b.reshape(-1))
        assert wmsdp_reference(a, b, config) == pytest.approx(expected, rel=1e-5)

    def test_weights_influence_score(self):
        a = RNG.normal(size=(16, 4)).astype(np.float32)
        b = RNG.normal(size=(16, 4)).astype(np.float32)
        heavy_coarse = SearchConfig(scales=(1, 4), weights=(0.1, 2.0))
        heavy_fine = SearchConfig(scales=(1, 4), weights=(2.0, 0.1))
        assert (wmsdp_reference(a, b, heavy_coarse)
                != pytest.approx(wmsdp_reference(a, b, heavy_fine)))


class TestCiMSearchEngine:
    def _ovts(self, n=6, rows=8, dim=12):
        return [RNG.normal(size=(rows, dim)).astype(np.float32)
                for _ in range(n)]

    def _engine(self, sigma=0.0, config=SSA_CONFIG, on_cim=True, seed=0):
        return CiMSearchEngine(get_device("NVM-3"), sigma=sigma,
                               config=config, on_cim=on_cim,
                               rng=np.random.default_rng(seed))

    def test_retrieves_self_without_noise(self):
        ovts = self._ovts()
        engine = self._engine(sigma=0.0)
        engine.build(ovts)
        for i, ovt in enumerate(ovts):
            assert engine.retrieve(ovt) == i

    def test_digital_store_matches_reference(self):
        ovts = self._ovts(4)
        engine = self._engine(on_cim=False)
        engine.build(ovts)
        query = RNG.normal(size=(10, 12)).astype(np.float32)
        scores = engine.query(query)
        expected = [wmsdp_reference(query, o) for o in ovts]
        np.testing.assert_allclose(scores, expected, rtol=1e-4, atol=1e-5)

    def test_cim_scores_close_to_digital_without_noise(self):
        ovts = self._ovts(4)
        on_cim = self._engine(sigma=0.0)
        on_cim.build(ovts)
        digital = self._engine(on_cim=False)
        digital.build(ovts)
        query = RNG.normal(size=(9, 12)).astype(np.float32)
        np.testing.assert_allclose(on_cim.query(query), digital.query(query),
                                   atol=0.02)

    def test_restore_roundtrip_without_noise(self):
        ovts = self._ovts(3)
        engine = self._engine(sigma=0.0)
        engine.build(ovts)
        restored = engine.restore(1)
        assert restored.shape == ovts[1].shape
        np.testing.assert_allclose(restored, ovts[1], atol=0.02)

    def test_restore_works_when_scale_one_not_first(self):
        """Regression: restore used to require scales[0] == 1, wrongly
        failing configs where the scale-1 store exists later in the tuple."""
        config = SearchConfig(scales=(2, 1, 4), weights=(0.8, 1.0, 0.6))
        ovts = self._ovts(3)
        engine = self._engine(sigma=0.0, config=config)
        engine.build(ovts)
        restored = engine.restore(2)
        assert restored.shape == ovts[2].shape
        np.testing.assert_allclose(restored, ovts[2], atol=0.02)

    def test_restore_without_scale_one_store_rejected(self):
        config = SearchConfig(scales=(2, 4), weights=(1.0, 0.8))
        engine = self._engine(sigma=0.0, config=config)
        engine.build(self._ovts(2))
        with pytest.raises(RuntimeError):
            engine.restore(0)

    def test_restore_noise_grows_with_sigma(self):
        ovts = self._ovts(3)
        errors = []
        for sigma in (0.02, 0.2):
            engine = self._engine(sigma=sigma, seed=5)
            engine.build(ovts)
            errors.append(np.abs(engine.restore(0) - ovts[0]).mean())
        assert errors[0] < errors[1]

    def test_ssa_more_noise_robust_than_mips(self):
        """The paper's core retrieval claim, as a statistical property."""
        ovts = [RNG.normal(size=(8, 12)).astype(np.float32) for _ in range(8)]
        hits = {"ssa": 0, "mips": 0}
        for trial in range(12):
            for name, config in (("ssa", SSA_CONFIG), ("mips", MIPS_CONFIG)):
                engine = CiMSearchEngine(get_device("NVM-3"), sigma=0.3,
                                         config=config,
                                         rng=np.random.default_rng(trial))
                engine.build(ovts)
                # Query = noisy version of a stored OVT.
                probe_rng = np.random.default_rng(100 + trial)
                target = trial % len(ovts)
                query = ovts[target] + probe_rng.normal(
                    0, 0.4, ovts[target].shape).astype(np.float32)
                hits[name] += engine.retrieve(query) == target
        assert hits["ssa"] >= hits["mips"]

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError):
            self._engine().build([])

    def test_query_before_build_rejected(self):
        with pytest.raises(RuntimeError):
            self._engine().query(np.zeros((4, 12)))

    def test_restore_index_checked(self):
        engine = self._engine(sigma=0.0)
        engine.build(self._ovts(2))
        with pytest.raises(IndexError):
            engine.restore(5)

    def test_subarray_count_positive_on_cim(self):
        engine = self._engine()
        engine.build(self._ovts(4))
        assert engine.subarray_count() > 0

    def test_rebuild_replaces_store(self):
        engine = self._engine(sigma=0.0)
        engine.build(self._ovts(4))
        fresh = self._ovts(2)
        engine.build(fresh)
        assert engine.n_stored == 2
        assert engine.retrieve(fresh[1]) == 1


class TestBatchedQueries:
    def _ovts(self, n=6, rows=8, dim=12):
        return [RNG.normal(size=(rows, dim)).astype(np.float32)
                for _ in range(n)]

    def _engine(self, sigma=0.0, config=SSA_CONFIG, on_cim=True,
                vectorized=True, seed=0):
        return CiMSearchEngine(get_device("NVM-3"), sigma=sigma,
                               config=config, on_cim=on_cim,
                               vectorized=vectorized,
                               rng=np.random.default_rng(seed))

    def _queries(self, n=5):
        return [RNG.normal(size=(rows, 12)).astype(np.float32)
                for rows in range(6, 6 + n)]

    @pytest.mark.parametrize("on_cim", [True, False])
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_batch_matches_sequential(self, on_cim, vectorized):
        engine = self._engine(sigma=0.1, on_cim=on_cim,
                              vectorized=vectorized)
        engine.build(self._ovts())
        queries = self._queries()
        batched = engine.query_batch(queries)
        sequential = np.stack([engine.query(q) for q in queries])
        np.testing.assert_allclose(batched, sequential,
                                   rtol=1e-5, atol=1e-6)
        assert engine.retrieve_batch(queries) == \
            [engine.retrieve(q) for q in queries]

    def test_batched_scores_bitwise_stable_on_cim(self):
        """Batch width must not change a query's score (the serve layer
        snapshots scores into responses, sequential or batched)."""
        engine = self._engine(sigma=0.1)
        engine.build(self._ovts())
        queries = self._queries(4)
        batched = engine.query_batch(queries)
        for i, q in enumerate(queries):
            np.testing.assert_array_equal(batched[i], engine.query(q))

    def test_retrieve_batch_breaks_ties_like_sequential(self):
        """Duplicate OVTs score exact ties on the digital store; argmax
        must resolve them identically in both paths."""
        ovt = RNG.normal(size=(8, 12)).astype(np.float32)
        engine = self._engine(on_cim=False)
        engine.build([ovt.copy(), ovt.copy(), ovt.copy()])
        queries = [ovt, ovt + 0.1, ovt * 2.0]
        assert engine.retrieve_batch(queries) == \
            [engine.retrieve(q) for q in queries] == [0, 0, 0]

    def test_empty_batch_rejected(self):
        engine = self._engine()
        engine.build(self._ovts(2))
        with pytest.raises(ValueError):
            engine.query_batch([])

    def test_restore_reads_only_covering_tiles(self):
        engine = self._engine(sigma=0.0)
        engine.build(self._ovts(4))
        before = engine.aggregate_stats().cell_reads
        engine.restore(2)
        delta = engine.aggregate_stats().cell_reads - before
        scale1 = engine._scale_matrices[1]
        full_read = scale1.n_subarrays * 384 * 128
        # One column out of a 128-column tile: a sliver of the store.
        assert 0 < delta == scale1.n_slices * scale1.n_row_tiles * 384
        assert delta < full_read / 100

    def test_aggregate_stats_layout_parity(self):
        ovts = self._ovts(4)
        queries = self._queries(3)
        totals = []
        for vectorized in (False, True):
            engine = self._engine(sigma=0.1, vectorized=vectorized)
            engine.build(ovts)
            engine.query_batch(queries)
            engine.restore(1)
            totals.append(engine.aggregate_stats())
        assert totals[0] == totals[1]
