"""End-to-end integration tests: the paper's pipeline on a small scale.

These tests exercise the full stack — pretraining, streaming data through
the buffer, RS, (noise-aware) prompt tuning, autoencoding, NVM storage,
scaled search, restoration, generation and scoring — and assert the
paper's qualitative claims as statistical properties.
"""

import numpy as np
import pytest

from repro.core import FrameworkConfig, NVCiMDeployment
from repro.eval import score_output
from repro.eval.runner import ExperimentContext, TABLE1_METHODS, evaluate_method
from repro.llm.generation import generate
from repro.tuning import TuningConfig


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=0, corpus_sentences=1500, n_queries=8)


FAST_TUNING = TuningConfig(steps=25, lr=0.05)


def fast_config(**overrides):
    defaults = dict(buffer_capacity=12, device_name="NVM-3", sigma=0.1,
                    tuning=FAST_TUNING, seed=0)
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


class TestMethodRegistry:
    def test_six_table1_methods(self):
        names = [m.name for m in TABLE1_METHODS]
        assert names == ["SWV", "CxDNN", "CorrectNet", "No-Miti(MIPS)",
                         "NVP*(MIPS)", "NVCiM-PT"]

    def test_nvcim_pt_combines_nt_and_ssa(self):
        spec = TABLE1_METHODS[-1]
        assert spec.noise_aware and spec.retrieval == "ssa"
        assert spec.mitigation == "none"


class TestUserTaskProtocol:
    def test_stream_covers_domains_in_sessions(self, ctx):
        task = ctx.user_task("LaMP-2", 0, 12)
        domains = task.dataset.user_domains(task.user)
        assert len(task.training_stream) == 12 * len(domains)
        # First session is single-domain (the paper's domain-shift setting).
        first = {s.domain for s in task.training_stream[:12]}
        assert len(first) == 1

    def test_last_buffer_is_final_session(self, ctx):
        task = ctx.user_task("LaMP-2", 0, 12)
        assert len(task.last_buffer) == 12
        assert {s.domain for s in task.last_buffer} == {
            task.dataset.user_domains(task.user)[-1]}

    def test_queries_span_domains(self, ctx):
        task = ctx.user_task("LaMP-2", 1, 12)
        assert len({q.domain for q in task.queries}) > 1


class TestEndToEnd:
    def test_nvcim_pt_beats_zero_shot_on_lamp2(self, ctx):
        """The framework must actually personalise the model."""
        config = fast_config()
        model = ctx.model("phi-2-sim")
        generation = ctx.generation_config()
        task = ctx.user_task("LaMP-2", 0, config.buffer_capacity)
        library = ctx.library("phi-2-sim", "LaMP-2", 0, config)
        deployment = NVCiMDeployment(model, ctx.tokenizer, library, config)
        framework, zero_shot = [], []
        for query in task.queries:
            out = deployment.answer(query.input_text, generation)
            framework.append(score_output("accuracy", out, query.target_text))
            base = ctx.tokenizer.decode(
                generate(model, ctx.tokenizer.encode(query.input_text),
                         generation))
            zero_shot.append(score_output("accuracy", base, query.target_text))
        assert np.mean(framework) > np.mean(zero_shot)

    def test_evaluate_method_returns_unit_interval(self, ctx):
        score = evaluate_method(ctx, "phi-2-sim", "LaMP-2", TABLE1_METHODS[-1],
                                fast_config(), user_ids=(0,))
        assert 0.0 <= score <= 1.0

    def test_library_cache_reuses_training(self, ctx):
        config = fast_config()
        a = ctx.library("phi-2-sim", "LaMP-2", 0, config)
        b = ctx.library("phi-2-sim", "LaMP-2", 0, config)
        assert a is b

    def test_library_differs_for_noise_aware(self, ctx):
        from dataclasses import replace
        config = fast_config()
        a = ctx.library("phi-2-sim", "LaMP-2", 0, config)
        b = ctx.library("phi-2-sim", "LaMP-2", 0,
                        replace(config, noise_aware=False))
        assert a is not b

    def test_deployments_reuse_library_across_devices(self, ctx):
        from dataclasses import replace
        config = fast_config()
        library = ctx.library("phi-2-sim", "LaMP-2", 1, config)
        model = ctx.model("phi-2-sim")
        for device in ("NVM-1", "NVM-4"):
            deployment = NVCiMDeployment(model, ctx.tokenizer, library,
                                         replace(config, device_name=device))
            assert deployment.engine.n_stored == len(library.ovts)

    def test_binary_device_stores_and_retrieves(self, ctx):
        from dataclasses import replace
        config = replace(fast_config(), device_name="NVM-1")
        library = ctx.library("phi-2-sim", "LaMP-2", 0, fast_config())
        deployment = NVCiMDeployment(ctx.model("phi-2-sim"), ctx.tokenizer,
                                     library, config)
        index = deployment.retrieve("movie about robot space tag")
        assert 0 <= index < len(library.ovts)

    def test_generation_task_end_to_end(self, ctx):
        config = fast_config()
        task = ctx.user_task("LaMP-5", 0, config.buffer_capacity)
        library = ctx.library("phi-2-sim", "LaMP-5", 0, config)
        deployment = NVCiMDeployment(ctx.model("phi-2-sim"), ctx.tokenizer,
                                     library, config)
        out = deployment.answer(task.queries[0].input_text,
                                ctx.generation_config())
        assert isinstance(out, str) and out


class TestPaperShapeProperties:
    def test_ssa_no_worse_than_mips_under_heavy_noise(self, ctx):
        """Aggregate retrieval-quality claim behind Table I's last rows."""
        from dataclasses import replace
        model = ctx.model("phi-2-sim")
        config = fast_config(noise_aware=True)
        scores = {"ssa": [], "mips": []}
        generation = ctx.generation_config()
        for uid in (0, 1, 2):
            task = ctx.user_task("LaMP-2", uid, config.buffer_capacity)
            library = ctx.library("phi-2-sim", "LaMP-2", uid, config)
            for retrieval in ("ssa", "mips"):
                deployment = NVCiMDeployment(
                    model, ctx.tokenizer, library,
                    replace(config, sigma=0.15, retrieval=retrieval))
                for query in task.queries:
                    out = deployment.answer(query.input_text, generation)
                    scores[retrieval].append(
                        score_output("accuracy", out, query.target_text))
        assert np.mean(scores["ssa"]) >= np.mean(scores["mips"]) - 0.10

    def test_restore_noise_grows_with_sigma(self, ctx):
        from dataclasses import replace
        config = fast_config()
        library = ctx.library("phi-2-sim", "LaMP-2", 0, config)
        model = ctx.model("phi-2-sim")
        errors = []
        for sigma in (0.025, 0.15):
            deployment = NVCiMDeployment(model, ctx.tokenizer, library,
                                         replace(config, sigma=sigma))
            clean = library.ovts[0].matrix
            restored = deployment.restored_prompt(0)
            errors.append(float(np.abs(restored - clean).mean()))
        assert errors[0] < errors[1]
