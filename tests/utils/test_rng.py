"""Tests for deterministic RNG derivation."""

import numpy as np

from repro.utils import derive_rng, rng_from_seed, spawn_seeds


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        a = derive_rng(1, "user", 3).normal(size=5)
        b = derive_rng(1, "user", 3).normal(size=5)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_differ(self):
        a = derive_rng(1, "user", 3).normal(size=5)
        b = derive_rng(1, "user", 4).normal(size=5)
        assert not np.allclose(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "x").normal(size=5)
        b = derive_rng(2, "x").normal(size=5)
        assert not np.allclose(a, b)

    def test_label_order_matters(self):
        a = derive_rng(0, "a", "b").normal(size=3)
        b = derive_rng(0, "b", "a").normal(size=3)
        assert not np.allclose(a, b)


class TestSpawnSeeds:
    def test_count_and_range(self):
        seeds = spawn_seeds(0, 10, "workers")
        assert len(seeds) == 10
        assert all(0 <= s < 2**31 for s in seeds)

    def test_deterministic(self):
        assert spawn_seeds(5, 4, "x") == spawn_seeds(5, 4, "x")

    def test_rng_from_seed(self):
        np.testing.assert_array_equal(rng_from_seed(3).normal(size=3),
                                      rng_from_seed(3).normal(size=3))


class TestSpawnGenerators:
    def test_deterministic_children(self):
        from repro.utils import spawn_generators
        a = spawn_generators(np.random.default_rng(3), 4)
        b = spawn_generators(np.random.default_rng(3), 4)
        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(ga.normal(size=5),
                                          gb.normal(size=5))

    def test_children_are_independent_streams(self):
        from repro.utils import spawn_generators
        children = spawn_generators(np.random.default_rng(3), 3)
        draws = [g.normal(size=8) for g in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_successive_spawns_do_not_repeat(self):
        from repro.utils import spawn_generators
        parent = np.random.default_rng(3)
        first = spawn_generators(parent, 2)
        second = spawn_generators(parent, 2)
        assert not np.allclose(first[0].normal(size=5),
                               second[0].normal(size=5))

    def test_negative_count_rejected(self):
        from repro.utils import spawn_generators
        import pytest
        with pytest.raises(ValueError):
            spawn_generators(np.random.default_rng(0), -1)
