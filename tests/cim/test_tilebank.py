"""Equivalence matrix: vectorized TileBank layout vs per-tile reference.

The vectorized ``CiMMatrix`` must program bit-identical conductances (per
tile, independent of iteration order), read back identically, evaluate
matvec/matmat within float tolerance, and keep every operation counter in
lockstep with the per-tile reference across devices, variation levels, ADC
resolutions and non-divisible tile geometries.
"""

import numpy as np
import pytest

from repro.cim import CiMMatrix
from repro.mitigation import SelectiveWriteVerify, make_mitigation
from repro.nvm import TileBank, get_device

RNG = np.random.default_rng(57)

DEVICES = ["NVM-1", "NVM-3"]
SIGMAS = [0.0, 0.15]
ADC_BITS = [4, 8]
# Single tile / non-divisible multi-tile / exactly tiled (32x16 subarrays).
SHAPES = [(20, 7), (50, 23), (64, 16)]


def make_pair(values, *, device="NVM-3", sigma=0.1, adc_bits=8, seed=7,
              mitigation_name=None, rows=32, cols=16):
    """The same matrix stored on both layouts with the same seed."""
    pair = []
    for vectorized in (False, True):
        mitigation = (make_mitigation(mitigation_name)
                      if mitigation_name else None)
        pair.append(CiMMatrix(values, get_device(device), sigma=sigma,
                              rows=rows, cols=cols, adc_bits=adc_bits,
                              mitigation=mitigation,
                              rng=np.random.default_rng(seed),
                              vectorized=vectorized))
    return pair


def run_workload(matrix, x, batch):
    """A fixed mixed workload whose counters must match across layouts."""
    matrix.matvec(x)
    matrix.matvec(x, quantize_output=False)
    matrix.matmat(batch)
    matrix.read_matrix()
    matrix.read_columns(1, 3)


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("device", DEVICES)
    @pytest.mark.parametrize("sigma", SIGMAS)
    @pytest.mark.parametrize("adc_bits", ADC_BITS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_layouts_agree(self, device, sigma, adc_bits, shape):
        w = RNG.normal(size=shape).astype(np.float32)
        ref, vec = make_pair(w, device=device, sigma=sigma,
                             adc_bits=adc_bits)
        # Programmed conductances are bit-identical, tile for tile.
        for (s_ref, t_ref), (s_vec, t_vec) in zip(
                ref.iter_tiles_with_slice(), vec.iter_tiles_with_slice()):
            assert s_ref == s_vec
            np.testing.assert_array_equal(t_ref.conductance,
                                          t_vec.conductance)
            np.testing.assert_array_equal(t_ref.target_levels,
                                          t_vec.target_levels)
        # Noisy read-backs agree exactly; compute agrees to float tolerance.
        np.testing.assert_array_equal(ref.read_matrix(), vec.read_matrix())
        x = RNG.normal(size=shape[0]).astype(np.float32)
        np.testing.assert_allclose(ref.matvec(x), vec.matvec(x),
                                   rtol=1e-3, atol=1e-3)
        np.testing.assert_allclose(
            ref.matvec(x, quantize_output=False),
            vec.matvec(x, quantize_output=False), rtol=1e-3, atol=1e-3)
        batch = RNG.normal(size=(3, shape[0])).astype(np.float32)
        np.testing.assert_allclose(ref.matmat(batch), vec.matmat(batch),
                                   rtol=1e-3, atol=1e-3)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_stats_parity(self, shape):
        w = RNG.normal(size=shape).astype(np.float32)
        ref, vec = make_pair(w, sigma=0.1)
        x = RNG.normal(size=shape[0]).astype(np.float32)
        batch = RNG.normal(size=(4, shape[0])).astype(np.float32)
        run_workload(ref, x, batch)
        run_workload(vec, x, batch)
        assert ref.aggregate_stats() == vec.aggregate_stats()

    def test_batched_counters_scale_with_batch_width(self):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        _, vec = make_pair(w, sigma=0.1)
        base = vec.aggregate_stats()
        batch = RNG.normal(size=(5, 50)).astype(np.float32)
        vec.matmat(batch)
        stats = vec.aggregate_stats()
        assert stats.mvm_ops - base.mvm_ops == 5 * vec.n_subarrays
        assert (stats.adc_conversions - base.adc_conversions
                == 5 * vec.n_subarrays * vec.subarray_cols)

    def test_matmat_rows_equal_single_matvecs(self):
        """Batched evaluation is bit-identical to one query at a time."""
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        _, vec = make_pair(w, sigma=0.1)
        batch = RNG.normal(size=(6, 50)).astype(np.float32)
        out = vec.matmat(batch)
        for i in range(6):
            np.testing.assert_array_equal(out[i], vec.matvec(batch[i]))


class TestMitigationEquivalence:
    @pytest.mark.parametrize("name", ["swv", "cxdnn", "correctnet"])
    def test_read_and_stats_agree(self, name):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        ref, vec = make_pair(w, sigma=0.15, mitigation_name=name)
        np.testing.assert_array_equal(ref.read_matrix(), vec.read_matrix())
        np.testing.assert_array_equal(ref.read_columns(2, 5),
                                      vec.read_columns(2, 5))
        x = RNG.normal(size=50).astype(np.float32)
        np.testing.assert_allclose(ref.matvec(x), vec.matvec(x),
                                   rtol=1e-3, atol=1e-3)
        assert ref.aggregate_stats() == vec.aggregate_stats()

    def test_swv_multi_iteration_parity(self):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        pair = []
        for vectorized in (False, True):
            pair.append(CiMMatrix(
                w, get_device("NVM-3"), sigma=0.3, rows=32, cols=16,
                mitigation=SelectiveWriteVerify(max_iterations=3),
                rng=np.random.default_rng(11), vectorized=vectorized))
        ref, vec = pair
        np.testing.assert_array_equal(ref.read_matrix(), vec.read_matrix())
        assert ref.aggregate_stats() == vec.aggregate_stats()

    def test_legacy_mitigation_without_column_hook(self):
        """Out-of-tree mitigations predating correct_read_columns keep
        working: read_columns falls back to the full-width correction."""
        class LegacyGain:
            name = "legacy"

            def post_program(self, matrix):
                matrix.calibration["g"] = np.full(matrix.shape[1], 2.0,
                                                  dtype=np.float32)

            def prepare_values(self, values):
                return values

            def correct_output(self, matrix, outputs):
                return outputs

            def correct_read(self, matrix, values):
                return values * matrix.calibration["g"][None, :]

        w = RNG.normal(size=(20, 7)).astype(np.float32)
        matrix = CiMMatrix(w, get_device("NVM-3"), sigma=0.0, rows=32,
                           cols=16, mitigation=LegacyGain(),
                           rng=np.random.default_rng(3))
        np.testing.assert_array_equal(matrix.read_columns(2, 4),
                                      matrix.read_matrix()[:, 2:4])

    def test_batched_output_correction_matches_per_query(self):
        """CxDNN/CorrectNet corrections broadcast over batched outputs."""
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        for name in ("cxdnn", "correctnet"):
            _, vec = make_pair(w, sigma=0.15, mitigation_name=name)
            batch = RNG.normal(size=(3, 50)).astype(np.float32)
            out = vec.matmat(batch)
            for i in range(3):
                np.testing.assert_array_equal(out[i], vec.matvec(batch[i]))


class TestColumnRangeRead:
    @pytest.mark.parametrize("vectorized", [False, True])
    def test_equals_full_read_columns(self, vectorized):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        matrix = CiMMatrix(w, get_device("NVM-3"), sigma=0.1, rows=32,
                           cols=16, rng=np.random.default_rng(3),
                           vectorized=vectorized)
        full = matrix.read_matrix()
        for col0, col1 in [(0, 1), (5, 6), (14, 19), (0, 23)]:
            np.testing.assert_array_equal(matrix.read_columns(col0, col1),
                                          full[:, col0:col1])

    @pytest.mark.parametrize("vectorized", [False, True])
    def test_bills_only_cells_read(self, vectorized):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        matrix = CiMMatrix(w, get_device("NVM-3"), sigma=0.0, rows=32,
                           cols=16, rng=np.random.default_rng(3),
                           vectorized=vectorized)
        before = matrix.aggregate_stats().cell_reads
        matrix.read_columns(2, 4)
        delta = matrix.aggregate_stats().cell_reads - before
        # One column tile covers columns [0, 16): every slice reads both
        # row tiles of that tile column, 2 columns x 32 rows each.
        assert delta == matrix.n_slices * matrix.n_row_tiles * 32 * 2
        # Far below a full-matrix read.
        full_read = matrix.n_subarrays * 32 * 16
        assert delta < full_read / 10

    def test_range_validation(self):
        w = RNG.normal(size=(20, 7)).astype(np.float32)
        matrix = CiMMatrix(w, get_device("NVM-3"), rows=32, cols=16)
        with pytest.raises(ValueError):
            matrix.read_columns(3, 3)
        with pytest.raises(ValueError):
            matrix.read_columns(0, 8)


class TestSpawnedTileStreams:
    def test_reprogram_order_independent(self):
        """Per-tile streams: re-pulsing tiles in any order draws the same
        noise for each tile (the pre-spawn layout consumed one shared
        stream, so order mattered)."""
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        mats = [CiMMatrix(w, get_device("NVM-3"), sigma=0.2, rows=32,
                          cols=16, rng=np.random.default_rng(5),
                          vectorized=False) for _ in range(2)]
        tiles_a = list(mats[0].iter_tiles())
        tiles_b = list(mats[1].iter_tiles())
        mask = np.ones((32, 16), dtype=bool)
        tiles_a[3].reprogram_cells(mask)
        tiles_a[5].reprogram_cells(mask)
        tiles_b[5].reprogram_cells(mask)
        tiles_b[3].reprogram_cells(mask)
        np.testing.assert_array_equal(mats[0].read_matrix(),
                                      mats[1].read_matrix())

    def test_same_seed_same_programming(self):
        w = RNG.normal(size=(50, 23)).astype(np.float32)
        a, _ = make_pair(w, sigma=0.2, seed=9)
        b, _ = make_pair(w, sigma=0.2, seed=9)
        np.testing.assert_array_equal(a.read_matrix(), b.read_matrix())


class TestTileBank:
    def _bank(self, n_tiles=4, rows=8, cols=4):
        rngs = [np.random.default_rng(i) for i in range(n_tiles)]
        return TileBank(get_device("NVM-3"), n_tiles, rows=rows, cols=cols,
                        sigma=0.1, rngs=rngs)

    def test_requires_programming(self):
        bank = self._bank()
        with pytest.raises(RuntimeError):
            bank.read_cells()
        with pytest.raises(RuntimeError):
            bank.matmat(np.zeros((4, 1, 8), dtype=np.float32))

    def test_validation(self):
        with pytest.raises(ValueError):
            TileBank(get_device("NVM-3"), 0)
        with pytest.raises(ValueError):
            TileBank(get_device("NVM-3"), 2, adc_bits=1)
        with pytest.raises(ValueError):
            TileBank(get_device("NVM-3"), 2,
                     rngs=[np.random.default_rng(0)])
        bank = self._bank()
        with pytest.raises(ValueError):
            bank.program(np.zeros((2, 8, 4), dtype=np.int64))

    def test_tile_view_surface(self):
        bank = self._bank()
        levels = RNG.integers(0, 4, size=(4, 8, 4))
        bank.program(levels)
        view = bank.tile(2)
        np.testing.assert_array_equal(view.target_levels, levels[2])
        assert view.stats.cells_programmed == 8 * 4
        before = view.conductance.copy()
        mask = np.zeros((8, 4), dtype=bool)
        mask[0] = True
        view.reprogram_cells(mask)
        after = bank.conductance[2]
        assert not np.allclose(after[0], before[0])
        np.testing.assert_allclose(after[1:], before[1:])
        assert view.stats.write_pulses == 8 * 4 + 4

    def test_matmat_counts_and_shapes(self):
        bank = self._bank()
        bank.program(np.zeros((4, 8, 4), dtype=np.int64))
        out = bank.matmat(np.ones((4, 3, 8), dtype=np.float32))
        assert out.shape == (4, 3, 4)
        stats = bank.aggregate_stats()
        assert stats.mvm_ops == 4 * 3
        assert stats.adc_conversions == 4 * 3 * 4

    def test_zero_input_full_scale_guard(self):
        bank = self._bank()
        bank.program(RNG.integers(0, 4, size=(4, 8, 4)))
        out = bank.matmat(np.zeros((4, 1, 8), dtype=np.float32))
        np.testing.assert_array_equal(out, np.zeros_like(out))
