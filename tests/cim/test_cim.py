"""Tests for the CiM accelerator, cost model and memory model."""

import numpy as np
import pytest

from repro.cim import (
    CIM_TECH,
    CPU_JETSON_ORIN,
    CiMMatrix,
    OVTStorageModel,
    PAPER_SCALE_STORAGE,
    retrieval_cost,
)
from repro.nvm import get_device

RNG = np.random.default_rng(23)


def make_matrix(values, sigma=0.0, device="NVM-3", seed=0, **kwargs):
    return CiMMatrix(values, get_device(device), sigma=sigma,
                     rng=np.random.default_rng(seed), **kwargs)


class TestCiMMatrix:
    def test_noise_free_matvec_matches_numpy(self):
        w = RNG.normal(size=(20, 7)).astype(np.float32)
        matrix = make_matrix(w, sigma=0.0)
        x = RNG.normal(size=20).astype(np.float32)
        out = matrix.matvec(x, quantize_output=False)
        np.testing.assert_allclose(out, x @ w, rtol=1e-3, atol=1e-3)

    def test_noise_free_read_matches_input(self):
        w = RNG.normal(size=(16, 5)).astype(np.float32)
        matrix = make_matrix(w, sigma=0.0)
        np.testing.assert_allclose(matrix.read_matrix(), w, atol=1e-3)

    def test_ideal_matrix_is_quantized_input(self):
        w = RNG.normal(size=(8, 3)).astype(np.float32)
        matrix = make_matrix(w, sigma=0.5)
        np.testing.assert_allclose(matrix.ideal_matrix(), w, atol=1e-3)

    def test_noise_grows_with_sigma(self):
        w = RNG.normal(size=(48, 6)).astype(np.float32)
        errors = []
        for sigma in (0.025, 0.1, 0.2):
            matrix = make_matrix(w, sigma=sigma, seed=4)
            errors.append(np.abs(matrix.read_matrix() - w).mean())
        assert errors[0] < errors[1] < errors[2]

    def test_tiling_large_matrix(self):
        w = RNG.normal(size=(500, 150)).astype(np.float32)  # > 384x128
        matrix = make_matrix(w, sigma=0.0, rows=384, cols=128)
        # 2 row tiles x 2 col tiles x 8 slices
        assert matrix.n_subarrays == 2 * 2 * 8
        x = RNG.normal(size=500).astype(np.float32)
        out = matrix.matvec(x, quantize_output=False)
        np.testing.assert_allclose(out, x @ w, rtol=1e-3, atol=5e-3)

    def test_binary_device_uses_16_slices(self):
        w = RNG.normal(size=(8, 3)).astype(np.float32)
        matrix = make_matrix(w, device="NVM-1")
        assert matrix.n_slices == 16

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            make_matrix(np.zeros(5))

    def test_input_length_checked(self):
        matrix = make_matrix(np.zeros((8, 3), dtype=np.float32))
        with pytest.raises(ValueError):
            matrix.matvec(np.ones(9))

    def test_deterministic_for_seed(self):
        w = RNG.normal(size=(16, 4)).astype(np.float32)
        a = make_matrix(w, sigma=0.1, seed=9).read_matrix()
        b = make_matrix(w, sigma=0.1, seed=9).read_matrix()
        np.testing.assert_allclose(a, b)

    def test_aggregate_stats(self):
        matrix = make_matrix(RNG.normal(size=(16, 4)).astype(np.float32))
        matrix.matvec(np.ones(16))
        stats = matrix.aggregate_stats()
        assert stats.cells_programmed == 384 * 128 * 8
        assert stats.mvm_ops == 8  # one per slice


class TestRetrievalCost:
    def test_cim_beats_cpu_at_scale(self):
        """Fig. 5's headline: orders-of-magnitude latency/energy advantage."""
        n = 100_000
        cpu = retrieval_cost("CPU", n)
        rram = retrieval_cost("RRAM", n)
        fefet = retrieval_cost("FeFET", n)
        assert 30 < cpu.latency_ns / rram.latency_ns < 1000
        assert 10 < cpu.energy_pj / rram.energy_pj < 500
        assert fefet.energy_pj < rram.energy_pj

    def test_costs_grow_with_n(self):
        for backend in ("RRAM", "FeFET", "CPU"):
            small = retrieval_cost(backend, 1000)
            large = retrieval_cost(backend, 100_000)
            assert large.latency_ns > small.latency_ns
            assert large.energy_pj > small.energy_pj

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            retrieval_cost("TPU", 10)

    def test_nonpositive_n(self):
        with pytest.raises(ValueError):
            retrieval_cost("CPU", 0)

    def test_unit_conversions(self):
        report = retrieval_cost("RRAM", 100)
        assert report.latency_s == pytest.approx(report.latency_ns * 1e-9)
        assert report.energy_j == pytest.approx(report.energy_pj * 1e-12)

    def test_batched_cost_scales_linearly(self):
        for backend in ("RRAM", "CPU"):
            one = retrieval_cost(backend, 1000)
            batch = retrieval_cost(backend, 1000, n_queries=8)
            assert batch.n_queries == 8
            assert batch.latency_ns == pytest.approx(8 * one.latency_ns)
            assert batch.energy_pj == pytest.approx(8 * one.energy_pj)
            per = batch.per_query()
            assert per.n_queries == 1
            assert per.latency_ns == pytest.approx(one.latency_ns)
            assert per.energy_pj == pytest.approx(one.energy_pj)

    def test_batched_cost_validation(self):
        with pytest.raises(ValueError):
            retrieval_cost("RRAM", 100, n_queries=0)

    def test_tech_table_has_both_nvms(self):
        assert set(CIM_TECH) == {"RRAM", "FeFET"}
        assert CPU_JETSON_ORIN.name == "JetsonOrinCPU"


class TestStorageModel:
    def test_memory_linear_in_count(self):
        model = OVTStorageModel()
        assert model.memory_mb(200) == pytest.approx(2 * model.memory_mb(100))

    def test_paper_scale_magnitudes(self):
        """Fig. 2a: thousands of OVTs reach hundreds of MB."""
        mb = PAPER_SCALE_STORAGE.memory_mb(9000)
        assert 500 < mb < 2000

    def test_transfer_time_fig2b_magnitude(self):
        """Fig. 2b: 1e5 OVTs take tens of seconds over an edge SSD."""
        seconds = PAPER_SCALE_STORAGE.transfer_time_s(100_000)
        assert 10 < seconds < 120

    def test_dram_fraction_exceeds_one_at_scale(self):
        assert PAPER_SCALE_STORAGE.dram_fraction(1_000_000) > 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OVTStorageModel(n_virtual_tokens=0)
        with pytest.raises(ValueError):
            OVTStorageModel().memory_bytes(-1)
