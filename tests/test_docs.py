"""Docs stay true: executable snippets, generated catalog, live links.

Three freshness guarantees over ``README.md`` and ``docs/*.md``:

- every fenced ``python`` code block actually runs.  Blocks are
  concatenated per file and executed in ONE subprocess, so later blocks
  may build on names defined by earlier ones (the files read top to
  bottom).  A fence whose info string carries extra words — e.g.
  ``python fragment`` — is illustrative and skipped;
- ``docs/analysis.md`` is byte-identical to what the rule zoo renders
  (``python -m repro.analysis --catalog``), so the catalog cannot drift
  from the registered rules;
- every relative markdown link resolves to a file or directory that
  exists in the repo.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"

_FENCE = re.compile(r"^(`{3,})(.*)$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def markdown_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted(DOCS_DIR.glob("*.md")))
    return files


def fenced_blocks(text: str) -> list[tuple[str, str]]:
    """``(info_string, body)`` for every fenced code block, in order."""
    blocks: list[tuple[str, str]] = []
    fence: str | None = None
    info = ""
    body: list[str] = []
    for line in text.splitlines():
        match = _FENCE.match(line)
        if fence is None:
            if match:
                fence, info, body = match.group(1), match.group(2).strip(), []
        elif match and match.group(1).startswith(fence) and not match.group(2):
            blocks.append((info, "\n".join(body)))
            fence = None
        else:
            body.append(line)
    assert fence is None, "unterminated code fence"
    return blocks


def python_blocks(path: Path) -> list[str]:
    """Executable python blocks: info string exactly ``python``."""
    return [body for info, body in fenced_blocks(path.read_text())
            if info.split() == ["python"]]


@pytest.mark.parametrize("path", markdown_files(),
                         ids=lambda p: p.relative_to(REPO_ROOT).as_posix())
class TestDocsSnippets:
    def test_python_blocks_execute(self, path: Path, tmp_path: Path) -> None:
        blocks = python_blocks(path)
        if not blocks:
            pytest.skip(f"{path.name} has no executable python blocks")
        script = tmp_path / f"snippets_{path.stem}.py"
        script.write_text("\n\n".join(blocks) + "\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src")]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run([sys.executable, str(script)],
                              cwd=REPO_ROOT, env=env, timeout=600,
                              capture_output=True, text=True)
        assert proc.returncode == 0, (
            f"python blocks of {path.name} failed "
            f"(concatenated into {script.name}):\n"
            f"--- stdout ---\n{proc.stdout}\n--- stderr ---\n{proc.stderr}")

    def test_relative_links_resolve(self, path: Path) -> None:
        # Strip code blocks first: a ``[x](y)`` inside a snippet is code,
        # not a link.
        text = path.read_text()
        prose = []
        fence: str | None = None
        for line in text.splitlines():
            match = _FENCE.match(line)
            if fence is None:
                if match:
                    fence = match.group(1)
                else:
                    prose.append(line)
            elif (match and match.group(1).startswith(fence)
                  and not match.group(2)):
                fence = None
        broken = []
        for target in _LINK.findall("\n".join(prose)):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"broken relative links in {path.name}: {broken}"


class TestAnalysisCatalog:
    def test_catalog_matches_rule_zoo(self) -> None:
        from repro.analysis.catalog import render_catalog

        committed = (DOCS_DIR / "analysis.md").read_text()
        rendered = render_catalog()
        assert committed == rendered, (
            "docs/analysis.md is stale — regenerate it with:\n"
            "  PYTHONPATH=src python -m repro.analysis --catalog "
            "> docs/analysis.md")

    def test_catalog_covers_every_registered_rule(self) -> None:
        from repro.analysis.base import RULES

        committed = (DOCS_DIR / "analysis.md").read_text()
        missing = [name for name in RULES.names()
                   if f"## {name}" not in committed]
        assert not missing, f"rules missing from docs/analysis.md: {missing}"
