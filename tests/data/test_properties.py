"""Property-based tests over the synthetic LaMP population."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import available_datasets, build_tokenizer, make_dataset, make_user
from repro.data import vocabulary as V

TOKENIZER = build_tokenizer()
DATASET_NAMES = st.sampled_from(available_datasets())
USER_IDS = st.integers(0, 150)


@settings(max_examples=40, deadline=None)
@given(DATASET_NAMES, USER_IDS, st.integers(0, 50))
def test_all_sample_text_tokenizes_without_unk(name, user_id, seed):
    """Every generated word is in the closed vocabulary."""
    dataset = make_dataset(name)
    user = make_user(user_id, seed=0)
    for sample in dataset.generate(user, 4, seed=seed):
        for ids in (TOKENIZER.encode(sample.input_text),
                    TOKENIZER.encode(sample.target_text)):
            assert TOKENIZER.unk_id not in ids
            assert ids.size > 0


@settings(max_examples=40, deadline=None)
@given(DATASET_NAMES, USER_IDS)
def test_samples_stay_in_declared_domains(name, user_id):
    dataset = make_dataset(name)
    user = make_user(user_id, seed=0)
    domains = set(dataset.user_domains(user))
    for sample in dataset.generate(user, 6, seed=1):
        assert sample.domain in domains
        assert sample.user_id == user.user_id


@settings(max_examples=30, deadline=None)
@given(USER_IDS, st.integers(0, 20))
def test_lamp2_same_description_different_users_may_disagree(user_id, seed):
    """Labels are user-conditional: always a preferred topic of *that* user."""
    dataset = make_dataset("LaMP-2")
    user = make_user(user_id, seed=0)
    for sample in dataset.generate(user, 5, seed=seed):
        assert sample.target_text in user.preferred_topics
        # The distractor topic's words appear but never win.
        words = sample.input_text.split()
        topics_present = {V.topic_of_content_word(w) for w in words
                          if V.topic_of_content_word(w)}
        assert sample.target_text in topics_present


@settings(max_examples=30, deadline=None)
@given(USER_IDS, st.integers(0, 20))
def test_lamp3_ratings_consistent_with_bias(user_id, seed):
    dataset = make_dataset("LaMP-3")
    user = make_user(user_id, seed=0)
    for sample in dataset.generate(user, 6, seed=seed):
        rating = int(sample.target_text)
        topic, _, valence = sample.domain.partition("+")
        expected = int(np.clip(3 + int(valence) + user.rating_bias, 1, 5))
        assert rating == expected


@settings(max_examples=25, deadline=None)
@given(USER_IDS)
def test_population_statistics(user_id):
    """Profiles are valid across the whole simulated population."""
    user = make_user(user_id, seed=0)
    assert len(set(user.preferred_topics)) == 3
    assert all(t in V.TOPICS for t in user.preferred_topics)
    assert all(w in V.STYLE_WORDS for w in user.style_words)


@settings(max_examples=25, deadline=None)
@given(DATASET_NAMES, st.integers(0, 30), st.integers(1, 12))
def test_generate_returns_requested_count(name, user_id, count):
    dataset = make_dataset(name)
    samples = dataset.generate(make_user(user_id, seed=0), count, seed=0)
    assert len(samples) == count
