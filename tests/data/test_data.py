"""Tests for vocabulary, users, corpus, LaMP generators and the buffer."""

import numpy as np
import pytest

from repro.data import (
    DataBuffer,
    LaMP3,
    Sample,
    available_datasets,
    build_corpus,
    build_tokenizer,
    make_dataset,
    make_user,
    make_users,
)
from repro.data import vocabulary as V
from repro.data.users import UserProfile


class TestVocabulary:
    def test_unique_words(self):
        words = V.build_vocabulary()
        assert len(words) == len(set(words))

    def test_fifteen_topics_with_content(self):
        assert len(V.TOPICS) == 15
        for topic in V.TOPICS:
            assert len(V.CONTENT_WORDS[topic]) == 4

    def test_topic_of_content_word(self):
        assert V.topic_of_content_word("robot") == "scifi"
        assert V.topic_of_content_word("the") is None

    def test_tokenizer_covers_vocabulary(self):
        tok = build_tokenizer()
        for word in V.build_vocabulary():
            assert word in tok


class TestUsers:
    def test_deterministic_profiles(self):
        assert make_user(3, seed=1) == make_user(3, seed=1)

    def test_distinct_users_distinct_profiles(self):
        users = make_users(30, seed=0)
        assert len({u.preferred_topics for u in users}) > 10

    def test_profile_fields_valid(self):
        for user in make_users(50, seed=2):
            assert user.rating_bias in (-1, 0, 1)
            assert len(user.preferred_topics) == 3
            assert len(user.style_words) == 2

    def test_preference_rank(self):
        user = make_user(0, seed=0)
        first = user.preferred_topics[0]
        assert user.preference_rank(first) == 0
        assert user.preference_rank("nonexistent") == 3

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            UserProfile(0, (), 0, ("wow", "hmm"))
        with pytest.raises(ValueError):
            UserProfile(0, ("scifi",), 5, ("wow", "hmm"))

    def test_n_topics_bounds(self):
        with pytest.raises(ValueError):
            make_user(0, n_topics=0)


class TestCorpus:
    def test_stream_tokens_in_vocab(self):
        tok = build_tokenizer()
        stream = build_corpus(tok, n_sentences=50, seed=0)
        assert stream.min() >= 0 and stream.max() < tok.vocab_size
        assert tok.unk_id not in stream

    def test_sentences_separated_by_eos(self):
        tok = build_tokenizer()
        stream = build_corpus(tok, n_sentences=40, seed=0)
        assert (stream == tok.eos_id).sum() == 40

    def test_deterministic(self):
        tok = build_tokenizer()
        a = build_corpus(tok, n_sentences=20, seed=5)
        b = build_corpus(tok, n_sentences=20, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            build_corpus(build_tokenizer(), n_sentences=0)


class TestLaMPDatasets:
    def test_registry_names(self):
        assert available_datasets() == ["LaMP-1", "LaMP-2", "LaMP-3",
                                        "LaMP-5", "LaMP-7"]

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("LaMP-9")

    def test_metrics_assignment(self):
        assert make_dataset("LaMP-1").metric == "accuracy"
        assert make_dataset("LaMP-5").metric == "rouge1"

    @pytest.mark.parametrize("name", available_datasets())
    def test_generation_deterministic(self, name):
        ds = make_dataset(name)
        user = make_user(1, seed=0)
        a = ds.generate(user, 10, seed=3)
        b = ds.generate(user, 10, seed=3)
        assert a == b

    @pytest.mark.parametrize("name", available_datasets())
    def test_inputs_end_with_cue(self, name):
        cues = {"LaMP-1": V.CUE_CITE, "LaMP-2": V.CUE_TAG,
                "LaMP-3": V.CUE_RATING, "LaMP-5": V.CUE_TITLE,
                "LaMP-7": V.CUE_PARAPHRASE}
        ds = make_dataset(name)
        user = make_user(2, seed=0)
        for sample in ds.generate(user, 6, seed=0):
            assert sample.input_text.split()[-1] == cues[name]
            assert sample.target_text

    def test_lamp1_label_stable_within_domain(self):
        ds = make_dataset("LaMP-1")
        user = make_user(4, seed=0)
        domain = ds.user_domains(user)[0]
        samples = ds.generate(user, 12, seed=1, domains=[domain])
        assert len({s.target_text for s in samples}) == 1

    def test_lamp2_label_is_preferred_topic(self):
        ds = make_dataset("LaMP-2")
        user = make_user(5, seed=0)
        for sample in ds.generate(user, 9, seed=0):
            assert sample.target_text in user.preferred_topics

    def test_lamp3_rating_respects_bias_and_range(self):
        ds = LaMP3()
        user = make_user(6, seed=0)
        for sample in ds.generate(user, 9, seed=0):
            rating = int(sample.target_text)
            assert 1 <= rating <= 5

    def test_lamp5_target_contains_topic_and_style(self):
        ds = make_dataset("LaMP-5")
        user = make_user(7, seed=0)
        sample = ds.generate(user, 1, seed=0)[0]
        assert sample.domain in sample.target_text
        assert user.style_words[0] in sample.target_text

    def test_lamp7_target_wraps_body_in_style(self):
        ds = make_dataset("LaMP-7")
        user = make_user(8, seed=0)
        sample = ds.generate(user, 1, seed=0)[0]
        words = sample.target_text.split()
        assert words[0] == user.style_words[0]
        assert words[-1] == user.style_words[1]

    def test_full_text_concatenation(self):
        s = Sample("LaMP-2", 0, "movie about x tag", "drama", "d")
        assert s.full_text() == "movie about x tag drama"

    def test_generate_count_validation(self):
        with pytest.raises(ValueError):
            make_dataset("LaMP-2").generate(make_user(0), 0)

    def test_domain_restriction_respected(self):
        ds = make_dataset("LaMP-2")
        user = make_user(9, seed=0)
        domain = ds.user_domains(user)[1]
        samples = ds.generate(user, 8, seed=0, domains=[domain])
        assert all(s.domain == domain for s in samples)


class TestDataBuffer:
    def test_fills_to_capacity(self):
        buffer = DataBuffer(3)
        sample = Sample("t", 0, "a b", "c", "d")
        for i in range(3):
            assert not buffer.is_full
            buffer.add(sample, np.ones(4) * i)
        assert buffer.is_full and len(buffer) == 3

    def test_fifo_eviction(self):
        buffer = DataBuffer(2)
        for i in range(3):
            buffer.add(Sample("t", i, "a", "b", "d"), np.full(2, float(i)))
        assert buffer.samples[0].user_id == 1
        np.testing.assert_allclose(buffer.embedding_matrix()[:, 0], [1.0, 2.0])

    def test_take_all_drains(self):
        buffer = DataBuffer(2)
        buffer.add(Sample("t", 0, "a", "b", "d"), np.zeros(2))
        buffer.add(Sample("t", 1, "a", "b", "d"), np.ones(2))
        samples, embeddings = buffer.take_all()
        assert len(samples) == 2 and embeddings.shape == (2, 2)
        assert len(buffer) == 0

    def test_embedding_dim_checked(self):
        buffer = DataBuffer(3)
        buffer.add(Sample("t", 0, "a", "b", "d"), np.zeros(4))
        with pytest.raises(ValueError):
            buffer.add(Sample("t", 1, "a", "b", "d"), np.zeros(5))

    def test_empty_matrix_raises(self):
        with pytest.raises(ValueError):
            DataBuffer(2).embedding_matrix()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            DataBuffer(0)
