"""Batched padded training forwards must match the per-sample reference.

The matrix: {vanilla soft prompt, noise-aware} x {uniform, ragged lengths}
x {with/without prefix-KV}, checking both loss values and prompt-parameter
gradients, plus the padding-mask semantics the equivalence rests on
(padded keys get zero attention weight; padded positions contribute no
loss or gradient).
"""

import numpy as np
import pytest

from repro.ag import Parameter, Tensor, softmax
from repro.core.noise_training import NoiseInjectionConfig, NoiseInjector
from repro.data import build_tokenizer, make_dataset, make_user
from repro.llm import build_model
from repro.llm.attention import MultiHeadSelfAttention
from repro.tuning import (
    DEPTTuner,
    IGNORE_INDEX,
    TuningConfig,
    VanillaPromptTuner,
    build_training_batch,
    build_training_ids,
    freeze_model,
    initial_prompt_matrix,
    make_target_vector,
    prefix_loss_for_batch,
    prompt_loss_for_batch,
)

LOSS_TOL = 1e-5
GRAD_TOL = 1e-5


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    model = build_model("phi-2-sim", tok.vocab_size)
    user = make_user(0, seed=0)
    uniform = make_dataset("LaMP-2").generate(user, 6, seed=1)
    ragged = []
    for name in ("LaMP-1", "LaMP-2", "LaMP-3", "LaMP-5"):
        ragged.extend(make_dataset(name).generate(user, 2, seed=1))
    lengths = {build_training_ids(s, tok)[0].size for s in ragged}
    assert len(lengths) > 1, "ragged fixture must mix sequence lengths"
    return model, tok, uniform, ragged


def _prompt_init(model, tok, samples):
    return initial_prompt_matrix(model, tok, samples, 8,
                                 np.random.default_rng(0))


def _prefixes(model, n_tokens=4, seed=3):
    cfg = model.config
    d_head = cfg.d_model // cfg.n_heads
    rng = np.random.default_rng(seed)
    return [
        (Parameter(rng.normal(0.0, 0.2, (1, cfg.n_heads, n_tokens, d_head))),
         Parameter(rng.normal(0.0, 0.2, (1, cfg.n_heads, n_tokens, d_head))))
        for _ in range(cfg.n_layers)
    ]


class TestLossAndGradientEquivalence:
    @pytest.mark.parametrize("lengths", ["uniform", "ragged"])
    @pytest.mark.parametrize("noise_seed", [None, 11],
                             ids=["vanilla", "noise-aware"])
    def test_soft_prompt(self, setup, lengths, noise_seed):
        model, tok, uniform, ragged = setup
        samples = uniform if lengths == "uniform" else ragged
        init = _prompt_init(model, tok, samples)
        results = []
        with freeze_model(model):
            for batched in (False, True):
                prompt = Parameter(init.copy())
                effective = prompt
                if noise_seed is not None:
                    effective = NoiseInjector(
                        NoiseInjectionConfig(seed=noise_seed))(prompt)
                loss = prompt_loss_for_batch(model, effective, samples, tok,
                                             batched=batched)
                loss.backward()
                results.append((float(loss.data), prompt.grad.copy()))
        (loss_ref, grad_ref), (loss_bat, grad_bat) = results
        assert abs(loss_ref - loss_bat) <= LOSS_TOL
        np.testing.assert_allclose(grad_bat, grad_ref, atol=GRAD_TOL)

    @pytest.mark.parametrize("lengths", ["uniform", "ragged"])
    def test_with_prefix_kv(self, setup, lengths):
        model, tok, uniform, ragged = setup
        samples = uniform if lengths == "uniform" else ragged
        results = []
        with freeze_model(model):
            for batched in (False, True):
                prefixes = _prefixes(model)
                loss = prefix_loss_for_batch(model, prefixes, samples, tok,
                                             batched=batched)
                loss.backward()
                results.append((float(loss.data),
                                [p.grad.copy() for kv in prefixes
                                 for p in kv]))
        (loss_ref, grads_ref), (loss_bat, grads_bat) = results
        assert abs(loss_ref - loss_bat) <= LOSS_TOL
        for ref, bat in zip(grads_ref, grads_bat):
            np.testing.assert_allclose(bat, ref, atol=GRAD_TOL)

    def test_full_training_run_equivalence(self, setup):
        """End to end: batched and reference training walk the same
        optimisation trajectory and land on the same prompt."""
        model, tok, _, ragged = setup
        artifacts = {}
        for batched in (False, True):
            config = TuningConfig(steps=5, lr=0.05, seed=0, batched=batched)
            artifacts[batched] = VanillaPromptTuner(model, tok, config).fit(
                ragged)
        np.testing.assert_allclose(artifacts[True].soft_prompt.matrix,
                                   artifacts[False].soft_prompt.matrix,
                                   atol=1e-4)

    def test_dept_training_run_equivalence(self, setup):
        """DEPT's batched loss (delta-table gather + broadcast prompt) must
        walk the same trajectory as its per-sample reference."""
        model, tok, _, ragged = setup
        artifacts = {}
        for batched in (False, True):
            config = TuningConfig(steps=3, lr=0.05, seed=0, batched=batched)
            artifacts[batched] = DEPTTuner(model, tok, config).fit(ragged)
        np.testing.assert_allclose(artifacts[True].soft_prompt.matrix,
                                   artifacts[False].soft_prompt.matrix,
                                   atol=1e-4)
        np.testing.assert_allclose(artifacts[True].embedding_delta,
                                   artifacts[False].embedding_delta,
                                   atol=1e-4)


class TestPaddingMaskSemantics:
    def test_padded_keys_get_zero_attention_weight(self):
        attn = MultiHeadSelfAttention(16, 2, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).normal(size=(2, 6, 16)))
        mask = np.zeros((2, 6), dtype=bool)
        mask[0, 4:] = True
        mask[1, 3:] = True
        # Recompute the attention weights exactly as forward() does.
        batch, length, _ = x.shape
        q = attn._split_heads(attn.q_proj(x), batch, length)
        k = attn._split_heads(attn.k_proj(x), batch, length)
        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(attn.d_head))
        full = (attn._causal_mask(length, 0)[None, None]
                | mask[:, None, None, :])
        weights = softmax(scores.masked_fill(full, -1e9), axis=-1).data
        assert np.all(weights[0, :, :, 4:] == 0.0)
        assert np.all(weights[1, :, :, 3:] == 0.0)
        sums = weights.sum(axis=-1)
        np.testing.assert_allclose(sums, np.ones_like(sums), rtol=1e-5)

    def test_real_positions_unaffected_by_padding(self, setup):
        """Logits of real positions in a padded batched forward equal the
        per-sample unpadded forward, regardless of the pad filler id."""
        model, tok, _, ragged = setup
        batch = build_training_batch(ragged, tok)
        logits = model(batch.input_ids,
                       key_padding_mask=batch.key_padding_mask).data
        for i, sample in enumerate(ragged):
            t = int(batch.lengths[i])
            alone = model(batch.input_ids[i, :t][None, :]).data[0]
            np.testing.assert_allclose(logits[i, :t], alone, atol=1e-5)

    def test_loss_invariant_to_pad_filler_id(self, setup):
        model, tok, _, ragged = setup
        init = _prompt_init(model, tok, ragged)
        losses, grads = [], []
        with freeze_model(model):
            for filler in (tok.pad_id, 7):
                batch = build_training_batch(ragged, tok, prompt_len=8)
                ids = np.where(batch.key_padding_mask, filler,
                               batch.input_ids)
                prompt = Parameter(init.copy())
                size, n_tokens = batch.batch_size, 8
                emb = model.embed(ids)
                rows = prompt.reshape(1, n_tokens, model.config.d_model)
                from repro.ag import cat, sequence_cross_entropy
                full = cat([rows.broadcast_to(
                    (size, n_tokens, model.config.d_model)), emb], axis=1)
                mask = np.concatenate(
                    [np.zeros((size, n_tokens), dtype=bool),
                     batch.key_padding_mask], axis=1)
                loss = sequence_cross_entropy(
                    model(embeddings=full, key_padding_mask=mask),
                    batch.targets, ignore_index=IGNORE_INDEX)
                loss.backward()
                losses.append(float(loss.data))
                grads.append(prompt.grad.copy())
        assert losses[0] == pytest.approx(losses[1], abs=1e-6)
        np.testing.assert_allclose(grads[0], grads[1], atol=1e-6)

    def test_padded_positions_carry_ignore_index_targets(self, setup):
        _, tok, _, ragged = setup
        batch = build_training_batch(ragged, tok, prompt_len=3)
        for i in range(batch.batch_size):
            t = int(batch.lengths[i])
            assert np.all(batch.targets[i, 3 + t:] == IGNORE_INDEX)
            assert np.all(batch.targets[i, :3] == IGNORE_INDEX)
            assert np.any(batch.targets[i] != IGNORE_INDEX)

    def test_mask_shape_validated(self, setup):
        model, tok, _, ragged = setup
        batch = build_training_batch(ragged, tok)
        with pytest.raises(ValueError):
            model(batch.input_ids,
                  key_padding_mask=batch.key_padding_mask[:, :-1])


class TestBuildTrainingBatch:
    def test_matches_per_sample_plumbing(self, setup):
        _, tok, _, ragged = setup
        prompt_len = 5
        batch = build_training_batch(ragged, tok, prompt_len=prompt_len)
        for i, sample in enumerate(ragged):
            full_ids, loss_positions = build_training_ids(sample, tok)
            t = full_ids.size - 1
            assert int(batch.lengths[i]) == t
            np.testing.assert_array_equal(batch.input_ids[i, :t],
                                          full_ids[:-1])
            assert not batch.key_padding_mask[i, :t].any()
            assert batch.key_padding_mask[i, t:].all()
            expected = make_target_vector(full_ids, loss_positions,
                                          prompt_len)
            np.testing.assert_array_equal(batch.targets[i, :expected.size],
                                          expected)

    def test_empty_batch_rejected(self, setup):
        _, tok, _, _ = setup
        with pytest.raises(ValueError):
            build_training_batch([], tok)
