"""freeze_model must be re-entrant: the serving engine runs concurrent
tune calls on threads sharing one base model, and the first tune to exit
must not re-enable base-model gradients while another is mid-backward.

Mirrors the thread-isolation style of tests/ag/test_grad_mode.py.
"""

import threading

import numpy as np

from repro.data import build_tokenizer, make_dataset, make_user
from repro.llm import build_model
from repro.tuning import TuningConfig, VanillaPromptTuner, freeze_model


def _tiny_model():
    tok = build_tokenizer()
    return build_model("phi-2-sim", tok.vocab_size), tok


class TestReentrantFreeze:
    def test_nested_freeze_single_thread(self):
        model, _ = _tiny_model()
        flags = [p.requires_grad for p in model.parameters()]
        with freeze_model(model):
            assert not any(p.requires_grad for p in model.parameters())
            with freeze_model(model):
                assert not any(p.requires_grad for p in model.parameters())
            # Inner exit must NOT restore while the outer context is live.
            assert not any(p.requires_grad for p in model.parameters())
        assert [p.requires_grad for p in model.parameters()] == flags

    def test_overlapping_freezes_across_threads(self):
        """First thread exits while the second still trains: the model must
        stay frozen until the last freeze releases."""
        model, _ = _tiny_model()
        a_inside = threading.Event()
        a_release = threading.Event()
        a_exited = threading.Event()
        observed = {}

        def first_tune():
            with freeze_model(model):
                a_inside.set()
                a_release.wait(timeout=5)
            a_exited.set()

        worker = threading.Thread(target=first_tune)
        worker.start()
        assert a_inside.wait(timeout=5)
        with freeze_model(model):            # second, overlapping tune
            a_release.set()                  # let the first one exit...
            assert a_exited.wait(timeout=5)
            # ...and the base model must still be frozen for us.
            observed["still_frozen"] = not any(
                p.requires_grad for p in model.parameters())
        worker.join(timeout=5)
        assert observed["still_frozen"]
        assert all(p.requires_grad for p in model.parameters())

    def test_concurrent_tunes_record_no_base_model_grads(self):
        """Two full prompt-tuning runs in parallel on one shared model:
        neither run may leave gradients on (or update) base parameters."""
        model, tok = _tiny_model()
        user = make_user(0, seed=0)
        samples_a = make_dataset("LaMP-2").generate(user, 3, seed=1)
        samples_b = make_dataset("LaMP-1").generate(user, 3, seed=2)
        before = model.state_dict()
        config = TuningConfig(steps=4, lr=0.05, seed=0)
        errors = []

        def tune(samples):
            try:
                VanillaPromptTuner(model, tok, config).fit(samples)
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=tune, args=(s,))
                   for s in (samples_a, samples_b)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        assert all(p.grad is None for p in model.parameters())
        assert all(p.requires_grad for p in model.parameters())
        after = model.state_dict()
        for name, value in before.items():
            np.testing.assert_array_equal(after[name], value)
