"""Tests for the prompt tuning methods on a tiny pretrained model."""

import numpy as np
import pytest

from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.tuning import (
    DEPTTuner,
    IGNORE_INDEX,
    PTuningV2Tuner,
    PrefixTuner,
    TuningConfig,
    VanillaPromptTuner,
    VirtualTokens,
    apply_embedding_delta,
    build_training_ids,
    generate_with_artifact,
    make_target_vector,
)

CFG = TuningConfig(steps=12, lr=0.05, seed=0)


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    user = make_user(0, seed=0)
    samples = make_dataset("LaMP-2").generate(user, 6, seed=1)
    return model, tok, samples


class TestSequencePlumbing:
    def test_build_training_ids(self, setup):
        _, tok, samples = setup
        full, mask = build_training_ids(samples[0], tok)
        input_len = tok.encode(samples[0].input_text).size
        assert full[-1] == tok.eos_id
        assert not mask[:input_len].any()
        assert mask[input_len:].all()

    def test_make_target_vector_alignment(self):
        full = np.array([10, 11, 12, 13])
        mask = np.array([False, False, True, True])
        targets = make_target_vector(full, mask, prompt_len=2)
        # length = 2 + 4 - 1 = 5; position p predicts full[p - 2 + 1]
        assert targets.tolist() == [IGNORE_INDEX, IGNORE_INDEX, IGNORE_INDEX,
                                    12, 13]

    def test_virtual_tokens_validation(self):
        with pytest.raises(ValueError):
            VirtualTokens(np.zeros(5))
        vt = VirtualTokens(np.zeros((4, 8)))
        assert vt.n_tokens == 4 and vt.d_model == 8
        copy = vt.copy()
        copy.matrix[0, 0] = 1.0
        assert vt.matrix[0, 0] == 0.0

    def test_tuning_config_validation(self):
        with pytest.raises(ValueError):
            TuningConfig(n_virtual_tokens=0)
        with pytest.raises(ValueError):
            TuningConfig(steps=0)
        with pytest.raises(ValueError):
            TuningConfig(anchor_weight=-1.0)


class TestVanillaPromptTuner:
    def test_produces_soft_prompt_artifact(self, setup):
        model, tok, samples = setup
        artifact = VanillaPromptTuner(model, tok, CFG).fit(samples[:1])
        assert artifact.soft_prompt is not None
        assert artifact.soft_prompt.matrix.shape == (8, model.config.d_model)
        assert artifact.method == "vanilla-pt"

    def test_single_sample_records_domain(self, setup):
        model, tok, samples = setup
        artifact = VanillaPromptTuner(model, tok, CFG).fit(samples[:1])
        assert artifact.soft_prompt.domain == samples[0].domain
        assert artifact.soft_prompt.source == samples[0]

    def test_training_reduces_loss(self, setup):
        model, tok, samples = setup
        from repro.ag import Tensor
        from repro.tuning import prompt_loss_for_sample
        artifact = VanillaPromptTuner(model, tok, CFG).fit(samples[:1])
        from repro.tuning.vanilla import initial_prompt_matrix
        init = initial_prompt_matrix(model, tok, samples[:1], 8,
                                     np.random.default_rng(0))
        before = prompt_loss_for_sample(model, Tensor(init), samples[0], tok)
        after = prompt_loss_for_sample(model, Tensor(artifact.soft_prompt.matrix),
                                       samples[0], tok)
        assert float(after.data) < float(before.data)

    def test_base_model_unchanged(self, setup):
        model, tok, samples = setup
        before = model.lm_head.weight.data.copy()
        emb_before = model.token_embedding.weight.data.copy()
        VanillaPromptTuner(model, tok, CFG).fit(samples[:2])
        np.testing.assert_array_equal(model.lm_head.weight.data, before)
        np.testing.assert_array_equal(model.token_embedding.weight.data,
                                      emb_before)

    def test_anchor_limits_drift(self, setup):
        model, tok, samples = setup
        from repro.tuning.vanilla import initial_prompt_matrix
        init = initial_prompt_matrix(model, tok, samples[:1], 8,
                                     np.random.default_rng(0))
        loose = VanillaPromptTuner(
            model, tok, TuningConfig(steps=12, lr=0.05, anchor_weight=0.0)
        ).fit(samples[:1]).soft_prompt.matrix
        tight = VanillaPromptTuner(
            model, tok, TuningConfig(steps=12, lr=0.05, anchor_weight=50.0)
        ).fit(samples[:1]).soft_prompt.matrix
        assert (np.linalg.norm(tight - init)
                < np.linalg.norm(loose - init))

    def test_transform_hook_called(self, setup):
        model, tok, samples = setup
        calls = []

        def spy(prompt):
            calls.append(1)
            return prompt

        VanillaPromptTuner(model, tok, CFG).fit(samples[:1], transform=spy)
        assert len(calls) == CFG.steps

    def test_empty_samples_rejected(self, setup):
        model, tok, _ = setup
        with pytest.raises(ValueError):
            VanillaPromptTuner(model, tok, CFG).fit([])


class TestOtherTuners:
    def test_prefix_tuner_shapes(self, setup):
        model, tok, samples = setup
        artifact = PrefixTuner(model, tok, CFG).fit(samples[:2])
        assert artifact.soft_prompt is None
        assert len(artifact.prefix_kv) == model.config.n_layers
        keys, values = artifact.prefix_kv[0]
        heads = model.config.n_heads
        d_head = model.config.d_model // heads
        assert keys.shape == (1, heads, 8, d_head)
        assert values.shape == (1, heads, 8, d_head)

    def test_ptuning_v2_shapes(self, setup):
        model, tok, samples = setup
        artifact = PTuningV2Tuner(model, tok, CFG).fit(samples[:2])
        assert len(artifact.prefix_kv) == model.config.n_layers
        assert artifact.method == "p-tuning-v2"

    def test_dept_produces_prompt_and_delta(self, setup):
        model, tok, samples = setup
        artifact = DEPTTuner(model, tok, CFG).fit(samples[:2])
        assert artifact.soft_prompt.n_tokens == 4  # half of 8
        assert artifact.embedding_delta.shape == (
            model.config.vocab_size, model.config.d_model)

    def test_dept_rank_validation(self, setup):
        model, tok, _ = setup
        with pytest.raises(ValueError):
            DEPTTuner(model, tok, CFG, rank=0)


class TestArtifactApplication:
    def test_generate_with_none_is_zero_shot(self, setup):
        model, tok, samples = setup
        text = generate_with_artifact(model, tok, None, samples[0].input_text,
                                      GenerationConfig(max_new_tokens=3,
                                                       temperature=0.0))
        assert isinstance(text, str)

    def test_soft_prompt_affects_next_token_distribution(self, setup):
        from repro.ag import Tensor, cat, no_grad
        model, tok, samples = setup
        ids = tok.encode(samples[0].input_text)
        with no_grad():
            base = model(ids[None, :]).data[0, -1]
            prompt = Tensor(np.random.default_rng(0).normal(
                0, 3.0, (1, 8, model.config.d_model)))
            full = cat([prompt, model.embed(ids[None, :])], axis=1)
            prompted = model(embeddings=full).data[0, -1]
        assert not np.allclose(base, prompted, atol=1e-3)

    def test_embedding_delta_restored_after_context(self, setup):
        model, tok, _ = setup
        before = model.token_embedding.weight.data.copy()
        delta = np.ones_like(before)
        with apply_embedding_delta(model, delta):
            assert not np.allclose(model.token_embedding.weight.data, before)
        np.testing.assert_allclose(model.token_embedding.weight.data, before)

    def test_embedding_delta_shape_checked(self, setup):
        model, tok, _ = setup
        with pytest.raises(ValueError):
            with apply_embedding_delta(model, np.ones((2, 2))):
                pass

    def test_prefix_artifact_generation_runs(self, setup):
        model, tok, samples = setup
        artifact = PrefixTuner(model, tok, CFG).fit(samples[:1])
        text = generate_with_artifact(model, tok, artifact,
                                      samples[0].input_text,
                                      GenerationConfig(max_new_tokens=3))
        assert isinstance(text, str)
