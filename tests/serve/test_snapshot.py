"""Session snapshots: codec, capture/restore, and the golden fixture.

Run this module directly to regenerate the golden fixture after an
intentional schema bump::

    PYTHONPATH=src python tests/serve/test_snapshot.py
"""

import pathlib
import struct

import numpy as np
import pytest

from repro.compression import OVTAutoencoder
from repro.core import FrameworkConfig, OVTTrainingPipeline
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    SessionSnapshot,
    SnapshotError,
    TuneRequest,
)
from repro.serve.codec import CodecError, decode_value, encode_value
from repro.serve.snapshot import MAGIC, SCHEMA_VERSION

GOLDEN_PATH = pathlib.Path(__file__).parent / "data" / "golden_session_v1.nvpt"
GOLDEN_USER = 7


def build_stack():
    """The deterministic model every snapshot in this module targets."""
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def golden_engine(model, tok):
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"))
    engine.submit(TuneRequest(user_id=GOLDEN_USER,
                              samples=tuple(stream_for(GOLDEN_USER, 10))))
    return engine


@pytest.fixture(scope="module")
def setup():
    return build_stack()


@pytest.fixture(scope="module")
def trained_session(setup):
    """User 0's session, trained and warmed with one served query."""
    model, tok = setup
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"))
    engine.submit(TuneRequest(user_id=0,
                              samples=tuple(stream_for(0, 10))))
    generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                  eos_id=tok.eos_id)
    query = stream_for(0, 12)[11].input_text
    answer = engine.query(QueryRequest(user_id=0, text=query,
                                       generation=generation)).answer
    return engine.session(0), query, generation, answer


class TestCodec:
    def test_scalar_roundtrip(self):
        values = [None, True, False, 0, -1, 7, 1.5, -0.0, "héllo", b"\x00raw",
                  [1, [2, "x"], None], {"a": 1, "b": [True]}]
        for value in values:
            assert decode_value(encode_value(value)) == value

    def test_bool_is_not_int(self):
        assert decode_value(encode_value(True)) is True
        assert decode_value(encode_value(1)) == 1
        assert encode_value(True) != encode_value(1)

    def test_tuples_decode_as_lists(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_big_ints_roundtrip(self):
        # PCG64 generator states are 128-bit integers.
        for value in (1 << 127, -(1 << 200), (1 << 128) - 1):
            assert decode_value(encode_value(value)) == value

    def test_array_roundtrip_preserves_dtype_and_shape(self):
        arrays = [np.arange(6, dtype=np.int64).reshape(2, 3),
                  np.float32([[1.5, -2.5]]),
                  np.array([], dtype=np.float64),
                  np.array(True),
                  np.zeros((2, 0, 3), dtype=np.uint8)]
        for array in arrays:
            out = decode_value(encode_value(array))
            assert out.dtype == array.dtype
            assert out.shape == array.shape
            assert np.array_equal(out, array)

    def test_non_contiguous_array_roundtrip(self):
        array = np.arange(12, dtype=np.float32).reshape(3, 4).T
        out = decode_value(encode_value(array))
        assert np.array_equal(out, array)

    def test_canonical_dict_key_order(self):
        assert encode_value({"b": 1, "a": 2}) == encode_value({"a": 2, "b": 1})

    def test_rejects_object_arrays(self):
        with pytest.raises(CodecError, match="dtype"):
            encode_value(np.array([object()]))
        with pytest.raises(CodecError, match="dtype"):
            encode_value(np.array(["strings"]))

    def test_rejects_unsupported_types(self):
        with pytest.raises(CodecError, match="type"):
            encode_value({1, 2})
        with pytest.raises(CodecError, match="keys"):
            encode_value({1: "non-str key"})

    def test_rejects_trailing_garbage(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_value(encode_value(1) + b"x")

    def test_rejects_truncation_and_unknown_tags(self):
        blob = encode_value({"k": [1, 2.5]})
        with pytest.raises(CodecError):
            decode_value(blob[:-1])
        with pytest.raises(CodecError, match="tag"):
            decode_value(b"Z")


class TestSessionRoundTrip:
    @pytest.mark.parametrize("mode", ["raw", "recipe"])
    def test_restored_session_answers_byte_identically(
            self, setup, trained_session, mode, monkeypatch):
        model, tok = setup
        session, query, generation, answer = trained_session
        blob = SessionSnapshot.capture(session, mode=mode).to_bytes()

        # Restoring must never re-run a tuner step: trip on any attempt.
        def boom(*args, **kwargs):
            raise AssertionError("tuner ran during restore")
        monkeypatch.setattr(OVTTrainingPipeline, "_run_epoch", boom)
        monkeypatch.setattr(OVTAutoencoder, "fit", boom)
        monkeypatch.setattr(OVTAutoencoder, "update", boom)

        restored = SessionSnapshot.from_bytes(blob).build_session(model, tok)
        assert restored.answer(query, generation) == answer
        assert restored.queries_served == session.queries_served + 1
        assert restored.epochs_completed == session.epochs_completed
        assert len(restored.library) == len(session.library)
        for mine, theirs in zip(restored.library.ovts, session.library.ovts):
            assert np.array_equal(mine.matrix, theirs.matrix)

    def test_raw_restore_reprograms_nothing(self, setup, trained_session):
        model, tok = setup
        session, query, generation, _ = trained_session
        snap = SessionSnapshot.capture(session, mode="raw")
        restored = snap.build_session(model, tok)
        # Counters land exactly where the original's were — including the
        # write pulses the original spent — with no fresh programming, and
        # the whole deployment (conductances, counters, generator states)
        # is bit-identical: re-snapshotting yields the same bytes.
        assert restored.cim_stats() == session.cim_stats()
        assert encode_value(restored._deployment.snapshot()) == \
            encode_value(session._deployment.snapshot())

    def test_recipe_restore_rebuilds_identical_conductances(
            self, setup, trained_session):
        model, tok = setup
        session, *_ = trained_session
        snap = SessionSnapshot.capture(session, mode="recipe")
        # Recipe form carries counters only: no conductances, no rng.
        assert "rng" not in snap.deployment["engine"]
        for store in snap.deployment["engine"]["stores"].values():
            assert "ints" not in store
        restored = snap.build_session(model, tok)
        restored.deployment()  # recipe defers nothing further here
        assert restored.cim_stats() == session.cim_stats()

    def test_raw_blob_is_larger_than_recipe(self, trained_session):
        session, *_ = trained_session
        raw = SessionSnapshot.capture(session, mode="raw").to_bytes()
        recipe = SessionSnapshot.capture(session, mode="recipe").to_bytes()
        assert len(raw) > len(recipe)

    def test_buffer_and_prefill_metadata_travel(self, setup,
                                                trained_session):
        model, tok = setup
        session, query, _, _ = trained_session
        snap = SessionSnapshot.capture(session)
        assert [key[0] for key in snap.prefill_keys].count(query) == 1
        restored = snap.build_session(model, tok)
        original = session.pipeline.buffer.samples
        rebuilt = restored.pipeline.buffer.samples
        assert list(rebuilt) == list(original)
        # The KV cache itself stays behind; only its keys are metadata.
        assert len(restored._prefill_states) == 0


class TestSnapshotValidation:
    def test_rejects_bad_magic(self):
        with pytest.raises(SnapshotError, match="magic"):
            SessionSnapshot.from_bytes(b"NOTASNAP" + b"\x00" * 16)

    def test_rejects_short_blob(self):
        with pytest.raises(SnapshotError, match="short"):
            SessionSnapshot.from_bytes(MAGIC)

    def test_rejects_future_schema_version(self, trained_session):
        session, *_ = trained_session
        blob = SessionSnapshot.capture(session, mode="recipe").to_bytes()
        future = MAGIC + struct.pack("<H", SCHEMA_VERSION + 1) \
            + blob[len(MAGIC) + 2:]
        with pytest.raises(SnapshotError, match="version"):
            SessionSnapshot.from_bytes(future)

    def test_rejects_corrupt_body(self, trained_session):
        session, *_ = trained_session
        blob = SessionSnapshot.capture(session, mode="recipe").to_bytes()
        with pytest.raises(SnapshotError, match="corrupt"):
            SessionSnapshot.from_bytes(blob[:-3])

    def test_rejects_model_fingerprint_mismatch(self, setup,
                                                trained_session):
        model, tok = setup
        session, *_ = trained_session
        snap = SessionSnapshot.capture(session, mode="recipe")
        snap.model_fingerprint = dict(snap.model_fingerprint,
                                      d_model=9999)
        with pytest.raises(SnapshotError, match="captured against"):
            snap.build_session(model, tok)

    def test_capture_rejects_unknown_mode(self, trained_session):
        session, *_ = trained_session
        with pytest.raises(ValueError, match="mode"):
            SessionSnapshot.capture(session, mode="zip")


class TestGoldenFixture:
    """Pin the on-disk format: schema v1 blobs must stay readable.

    If these fail after an *intentional* format change, bump
    ``SCHEMA_VERSION`` and regenerate via ``python tests/serve/test_snapshot.py``.
    """

    def test_golden_decodes_and_restores(self, setup):
        model, tok = setup
        blob = GOLDEN_PATH.read_bytes()
        snap = SessionSnapshot.from_bytes(blob)
        assert snap.user_id == GOLDEN_USER
        assert snap.mode == "recipe"
        assert snap.library["ovts"]
        restored = snap.build_session(model, tok)
        engine = golden_engine(model, tok)
        generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                      eos_id=tok.eos_id)
        query = stream_for(GOLDEN_USER, 10)[9].input_text
        assert restored.answer(query, generation) == \
            engine.session(GOLDEN_USER).answer(query, generation)

    def test_golden_reencodes_byte_identically(self):
        blob = GOLDEN_PATH.read_bytes()
        assert SessionSnapshot.from_bytes(blob).to_bytes() == blob

    def test_golden_header_pins_schema_v1(self):
        blob = GOLDEN_PATH.read_bytes()
        assert blob[:len(MAGIC)] == MAGIC
        assert struct.unpack_from("<H", blob, len(MAGIC))[0] == 1


def regenerate_golden():
    model, tok = build_stack()
    engine = golden_engine(model, tok)
    blob = SessionSnapshot.capture(engine.session(GOLDEN_USER),
                                   mode="recipe").to_bytes()
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN_PATH.write_bytes(blob)
    print(f"wrote {GOLDEN_PATH} ({len(blob)} bytes, "
          f"schema v{SCHEMA_VERSION})")


if __name__ == "__main__":
    regenerate_golden()
