"""Tests for the multi-user serving layer."""

import numpy as np
import pytest

from repro.core import FrameworkConfig, NVCiMPT
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    TuneRequest,
    UserSession,
)
from repro.tuning import TuningConfig


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def fast_config(**overrides):
    return FrameworkConfig.preset("fast", **overrides)


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def fast_generation(tok, n=3):
    return GenerationConfig(max_new_tokens=n, temperature=0.0,
                            eos_id=tok.eos_id)


@pytest.fixture(scope="module")
def trained_engine(setup):
    """An engine with three users' libraries trained (10 samples each)."""
    model, tok = setup
    engine = PromptServeEngine(model, tok, fast_config(), max_sessions=4)
    for user_id in (0, 1, 2):
        engine.submit(TuneRequest(user_id=user_id,
                                  samples=tuple(stream_for(user_id, 10,
                                                           seed=user_id))))
    return engine


class TestRequestObjects:
    def test_tune_request_needs_samples(self):
        with pytest.raises(ValueError):
            TuneRequest(user_id=0, samples=())

    def test_tune_request_coerces_lists(self):
        request = TuneRequest(user_id=0, samples=stream_for(0, 2))
        assert isinstance(request.samples, tuple)

    def test_query_request_needs_text(self):
        with pytest.raises(ValueError):
            QueryRequest(user_id=0, text="")


class TestMultiUserServing:
    def test_three_users_share_one_model(self, trained_engine, setup):
        model, _ = setup
        assert len(trained_engine.active_users()) == 3
        for user_id in (0, 1, 2):
            session = trained_engine.session(user_id)
            assert session.model is model          # one shared base model
            assert len(session.library) >= 1       # personal OVT library

    def test_libraries_are_isolated(self, trained_engine):
        libraries = [trained_engine.session(uid).library for uid in (0, 1, 2)]
        assert len({id(lib) for lib in libraries}) == 3
        for a in range(3):
            for b in range(a + 1, 3):
                for ovt_a in libraries[a].ovts:
                    for ovt_b in libraries[b].ovts:
                        assert ovt_a is not ovt_b

    def test_answers_come_from_own_library(self, trained_engine, setup):
        """User A's response must be served from A's OVTs: same query text,
        different users, different retrieval stores."""
        model, tok = setup
        text = stream_for(0, 1)[0].input_text
        generation = fast_generation(tok)
        responses = {
            uid: trained_engine.query(QueryRequest(user_id=uid, text=text,
                                                   generation=generation))
            for uid in (0, 1, 2)
        }
        for uid, response in responses.items():
            session = trained_engine.session(uid)
            assert response.n_ovts == len(session.library)
            assert 0 <= response.ovt_index < response.n_ovts
            assert len(response.scores) == response.n_ovts
            # The reported index is the argmax of the reported scores.
            assert response.ovt_index == int(np.argmax(response.scores))

    def test_matches_single_user_facade(self, setup):
        """The engine must answer exactly like the single-user NVCiMPT
        facade trained on the same stream (no cross-user leakage)."""
        model, tok = setup
        stream = stream_for(5, 10, seed=5)
        query = stream_for(5, 1, seed=123)[0].input_text
        generation = fast_generation(tok)

        facade = NVCiMPT(model, tok, fast_config())
        for sample in stream:
            facade.observe(sample)

        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=4)
        # Another user's data lives alongside and must not interfere.
        engine.submit(TuneRequest(user_id=9,
                                  samples=tuple(stream_for(9, 10, seed=9))))
        engine.submit(TuneRequest(user_id=5, samples=tuple(stream)))
        assert engine.answer(5, query, generation) == \
            facade.answer(query, generation)


class TestLRUEviction:
    def test_capacity_bound_and_lru_order(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.session(0)
        engine.session(1)
        engine.session(0)              # touch 0: now 1 is least-recent
        engine.session(2)              # evicts 1
        assert engine.active_users() == [0, 2]
        assert not engine.has_session(1)
        assert engine.has_session(0)
        assert engine.evicted_sessions == 1

    def test_evicted_user_restarts_empty(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=1)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        assert len(engine.session(0).library) >= 1
        engine.session(1)              # evicts user 0's library
        assert len(engine.session(0).library) == 0   # fresh session
        assert engine.evicted_sessions == 2          # 0 then 1 were evicted

    def test_invalid_capacity_rejected(self, setup):
        model, tok = setup
        with pytest.raises(ValueError):
            PromptServeEngine(model, tok, fast_config(), max_sessions=0)

    def test_stray_query_cannot_evict_resident_library(self, setup):
        """Inference never creates sessions: a query for an unknown user
        fails cleanly instead of LRU-evicting a trained library."""
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=1)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        with pytest.raises(KeyError, match="no session for user 99"):
            engine.query(QueryRequest(user_id=99, text="movie about tag",
                                      generation=fast_generation(tok)))
        assert engine.active_users() == [0]
        assert engine.evicted_sessions == 0
        assert len(engine.session(0).library) >= 1   # library survived


class TestBatching:
    def test_batch_matches_sequential(self, trained_engine, setup):
        _, tok = setup
        generation = fast_generation(tok)
        requests = []
        for uid in (0, 1, 2):
            for i, sample in enumerate(stream_for(uid, 3, seed=42)):
                requests.append(QueryRequest(
                    user_id=uid, text=sample.input_text,
                    generation=generation, request_id=f"u{uid}-q{i}"))
        requests = requests[::2] + requests[1::2]    # interleave users

        sequential = [trained_engine.query(r) for r in requests]
        # Clear the prefill LRUs the sequential pass populated, so the
        # batched pass prefills independently instead of decoding from the
        # very states the sequential answers came from.
        for uid in (0, 1, 2):
            trained_engine.session(uid)._prefill_states.clear()
        batched = trained_engine.answer_batch(requests)
        assert [r.answer for r in batched] == [r.answer for r in sequential]
        assert [r.ovt_index for r in batched] == \
            [r.ovt_index for r in sequential]
        # Input order and request ids are preserved.
        assert [r.request_id for r in batched] == \
            [r.request_id for r in requests]

    def test_submit_batch_groups_by_user(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=4)
        chunks = {uid: stream_for(uid, 5, seed=uid) for uid in (3, 4)}
        # Interleaved half-buffers: grouping by user means each user's 10
        # samples land contiguously and fire exactly one epoch.
        requests = [
            TuneRequest(user_id=3, samples=tuple(chunks[3])),
            TuneRequest(user_id=4, samples=tuple(chunks[4])),
            TuneRequest(user_id=3, samples=tuple(stream_for(3, 5, seed=30))),
            TuneRequest(user_id=4, samples=tuple(stream_for(4, 5, seed=40))),
        ]
        responses = engine.submit_batch(requests)
        assert [r.user_id for r in responses] == [3, 4, 3, 4]
        assert responses[2].epochs_fired == 1
        assert responses[3].epochs_fired == 1
        assert len(engine.session(3).library) >= 1
        assert len(engine.session(4).library) >= 1

    def test_telemetry_populated(self, trained_engine, setup):
        _, tok = setup
        text = stream_for(0, 1)[0].input_text
        response = trained_engine.query(QueryRequest(
            user_id=0, text=text, generation=fast_generation(tok)))
        assert response.backend == "FeFET"           # NVM-3 is FeFET3
        assert response.latency_ns > 0
        assert response.energy_pj > 0
        assert response.latency_us == pytest.approx(response.latency_ns / 1e3)
        assert response.text == text

    def test_digital_mode_reports_cpu_backend(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(on_cim=False),
                                   max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        response = engine.query(QueryRequest(
            user_id=0, text=stream_for(0, 1)[0].input_text,
            generation=fast_generation(tok)))
        assert response.backend == "CPU"


class TestPrefillSharing:
    def test_repeated_query_hits_prefill_cache(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        text = stream_for(0, 1)[0].input_text
        generation = fast_generation(tok)
        request = QueryRequest(user_id=0, text=text, generation=generation)
        first = engine.query(request)
        assert engine.stats()["prefill_hits"] == 0
        second = engine.query(request)
        assert engine.stats()["prefill_hits"] == 1
        assert second.answer == first.answer
        assert engine.stats()["prefill_cache_bytes"] > 0

    def test_batch_shares_prefill_and_matches_sequential(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        text = stream_for(0, 1)[0].input_text
        generation = fast_generation(tok)
        requests = [QueryRequest(user_id=0, text=text, generation=generation,
                                 request_id=f"q{i}") for i in range(4)]
        batched = engine.answer_batch(requests)
        # 4 identical prompts -> one prefill, three cache hits.
        assert engine.stats()["prefill_hits"] == 3
        # Sequential reference on an independently trained engine (same
        # seeds -> same library/deployment), so the comparison does not
        # just read back the cache the batch populated.
        fresh = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        fresh.submit(TuneRequest(user_id=0,
                                 samples=tuple(stream_for(0, 10))))
        sequential = [fresh.query(r) for r in requests]
        assert [r.answer for r in batched] == [r.answer for r in sequential]

    def test_cache_hit_skips_prompt_restore(self, setup):
        """On a prefill hit the NVM read-back is skipped entirely — the
        restore callable must not be invoked."""
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        session = engine.session(0)
        deployment = session.deployment()
        calls = {"n": 0}

        def restore():
            calls["n"] += 1
            return deployment.restored_prompt(0)

        first = session.prefill_state("movie about robot tag", 0, restore)
        second = session.prefill_state("movie about robot tag", 0, restore)
        assert second is first
        assert calls["n"] == 1

    def test_prefill_hits_survive_eviction(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=1)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        request = QueryRequest(user_id=0,
                               text=stream_for(0, 1)[0].input_text,
                               generation=fast_generation(tok))
        engine.query(request)
        engine.query(request)
        assert engine.stats()["prefill_hits"] == 1
        engine.session(1)              # evicts user 0
        assert engine.stats()["prefill_hits"] == 1   # monotonic counter

    def test_training_invalidates_prefill_cache(self, setup):
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        text = stream_for(0, 1)[0].input_text
        engine.query(QueryRequest(user_id=0, text=text,
                                  generation=fast_generation(tok)))
        session = engine.session(0)
        assert len(session._prefill_states) == 1
        # Another epoch restores different prompts: cached states are stale.
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10, seed=1))))
        assert len(session._prefill_states) == 0

    def test_adopt_library_invalidates_prefill_cache(self, setup):
        model, tok = setup
        donor = UserSession(1, model, tok, fast_config())
        donor.extend(stream_for(1, 10, seed=1))
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        text = stream_for(0, 1)[0].input_text
        engine.query(QueryRequest(user_id=0, text=text,
                                  generation=fast_generation(tok)))
        assert len(engine.session(0)._prefill_states) == 1
        engine.load_session(0, donor.library)
        assert len(engine.session(0)._prefill_states) == 0


class TestUserSession:
    def test_deployment_invalidated_by_new_epoch(self, setup):
        model, tok = setup
        session = UserSession(7, model, tok, fast_config())
        assert session.extend(stream_for(7, 10, seed=7)) == 1
        first = session.deployment()
        assert session.is_deployed
        session.extend(stream_for(7, 10, seed=8))
        assert not session.is_deployed               # stale after training
        assert session.deployment() is not first

    def test_answer_without_library_raises(self, setup):
        model, tok = setup
        session = UserSession(7, model, tok, fast_config())
        with pytest.raises(RuntimeError):
            session.answer("movie about robot space tag")

    def test_adopt_library(self, setup):
        model, tok = setup
        donor = UserSession(1, model, tok, fast_config())
        donor.extend(stream_for(1, 10, seed=1))
        session = UserSession(2, model, tok, fast_config())
        session.adopt_library(donor.library)
        assert session.library is donor.library
        assert session.deployment().engine.n_stored == len(donor.library)


class TestConfigSurface:
    def test_round_trip_default(self):
        config = FrameworkConfig()
        assert FrameworkConfig.from_dict(config.to_dict()) == config

    def test_round_trip_customised(self):
        from repro.retrieval import SearchConfig
        config = FrameworkConfig(
            buffer_capacity=12, device_name="NVM-5", sigma=0.05,
            retrieval="mips", mitigation="swv", noise_aware=False,
            code_dim=32, tuning=TuningConfig(steps=7, lr=0.01),
            noise_factors=(1.0, 2.0, 2.0, 1.0),
            search=SearchConfig(scales=(1, 2), weights=(1.0, 0.5)),
            on_cim=False, seed=3)
        assert FrameworkConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_compatible(self):
        import json
        dumped = json.dumps(FrameworkConfig().to_dict())
        assert FrameworkConfig.from_dict(json.loads(dumped)) == \
            FrameworkConfig()

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            FrameworkConfig.from_dict({"buffer_size": 10})

    def test_every_preset_builds_and_round_trips(self):
        names = FrameworkConfig.available_presets()
        assert "table1" in names
        for name in names:
            config = FrameworkConfig.preset(name)
            assert FrameworkConfig.from_dict(config.to_dict()) == config

    def test_preset_overrides(self):
        config = FrameworkConfig.preset("table1", device_name="NVM-5",
                                        sigma=0.025)
        assert config.device_name == "NVM-5"
        assert config.sigma == 0.025

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            FrameworkConfig.preset("table99")


class TestRegistries:
    def test_retrieval_plugs_into_config(self):
        from repro.retrieval import (
            RETRIEVAL_REGISTRY,
            SearchConfig,
            register_retrieval,
        )
        register_retrieval("ssa-coarse",
                           SearchConfig(scales=(1, 4), weights=(1.0, 0.6)))
        try:
            config = FrameworkConfig(retrieval="ssa-coarse")
            assert config.search_config().scales == (1, 4)
        finally:
            RETRIEVAL_REGISTRY.unregister("ssa-coarse")
        with pytest.raises(ValueError):
            FrameworkConfig(retrieval="ssa-coarse")

    def test_device_registration(self):
        from repro.nvm import NVM_DEVICES, get_device, register_device
        from repro.nvm.device_models import NVMDevice
        device = NVMDevice("NVM-T", "TestRAM", "RRAM", (0.01, 0.01))
        register_device(device)
        try:
            assert get_device("NVM-T") is device
        finally:
            NVM_DEVICES.unregister("NVM-T")

    def test_duplicate_registration_rejected(self):
        from repro.mitigation import register_mitigation

        class Fake:
            name = "none"

        with pytest.raises(ValueError):
            register_mitigation("none", Fake)

    def test_registry_lists_available_on_miss(self):
        from repro.mitigation import MITIGATION_REGISTRY
        with pytest.raises(KeyError, match="correctnet"):
            MITIGATION_REGISTRY["nope"]


class TestCiMTelemetry:
    def test_stats_expose_crossbar_counters(self, trained_engine, setup):
        """The serve dashboard aggregates each deployment's operation
        counters (vectorially summed from the tile banks)."""
        _, tok = setup
        text = stream_for(0, 1)[0].input_text
        trained_engine.query(QueryRequest(
            user_id=0, text=text, generation=fast_generation(tok)))
        stats = trained_engine.stats()
        assert stats["cim_mvm_ops"] > 0
        assert stats["cim_adc_conversions"] > 0
        assert stats["cim_write_pulses"] > 0
        before = stats["cim_mvm_ops"]
        trained_engine.query(QueryRequest(
            user_id=0, text=text + " again",
            generation=fast_generation(tok)))
        assert trained_engine.stats()["cim_mvm_ops"] > before

    def test_cim_counters_monotonic_across_retrain_and_drop(self, setup):
        """Crossbar counters are cumulative: retraining reprograms fresh
        matrices and dropping evicts the session, but the engine banks the
        retired deployments' counters instead of forgetting them."""
        model, tok = setup
        engine = PromptServeEngine(model, tok, fast_config(), max_sessions=2)
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10))))
        text = stream_for(0, 1)[0].input_text
        engine.query(QueryRequest(user_id=0, text=text,
                                  generation=fast_generation(tok)))
        first = engine.stats()["cim_mvm_ops"]
        assert first > 0
        # Retrain: the old deployment retires, its counters are banked.
        engine.submit(TuneRequest(user_id=0,
                                  samples=tuple(stream_for(0, 10, seed=7))))
        engine.query(QueryRequest(user_id=0, text=text,
                                  generation=fast_generation(tok)))
        after_retrain = engine.stats()["cim_mvm_ops"]
        assert after_retrain > first
        # Drop: the session leaves, the totals must not run backwards.
        engine.drop_session(0)
        assert engine.stats()["cim_mvm_ops"] >= after_retrain

    def test_batched_retrieval_bills_like_sequential(self, setup):
        """Duplicate texts in a batch bill one search each, exactly as
        the sequential reference path would."""
        model, tok = setup
        deltas = []
        for batched in (False, True):
            engine = PromptServeEngine(model, tok, fast_config(),
                                       max_sessions=2)
            engine.submit(TuneRequest(user_id=0,
                                      samples=tuple(stream_for(0, 10))))
            text = stream_for(0, 1)[0].input_text
            requests = [QueryRequest(user_id=0, text=text,
                                     generation=fast_generation(tok))] * 3
            engine.session(0).deployment()   # program outside measurement
            before = engine.stats()["cim_mvm_ops"]
            engine.answer_batch(requests, batched=batched)
            deltas.append(engine.stats()["cim_mvm_ops"] - before)
        assert deltas[0] == deltas[1] > 0

    def test_restore_reads_stay_bounded(self, trained_engine, setup):
        """Restores bill only the covering column, so cell reads stay far
        below one full store read per query."""
        _, tok = setup
        session = trained_engine.session(0)
        deployment = session.deployment()
        engine = deployment.engine
        scale1 = engine._scale_matrices[1]
        before = engine.aggregate_stats().cell_reads
        engine.restore(0)
        delta = engine.aggregate_stats().cell_reads - before
        assert 0 < delta < scale1.n_subarrays * 384 * 128 / 100
