"""SessionStore backends and the engine's spill/restore integration."""

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    SessionStore,
    TuneRequest,
)

CIM_KEYS = ("cim_mvm_ops", "cim_adc_conversions", "cim_cell_reads",
            "cim_write_pulses")


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "disk":
        return SessionStore(tmp_path / "spool")
    return SessionStore()


class TestSessionStoreBackends:
    def test_put_get_roundtrip(self, store):
        store.put(7, b"blob-7")
        assert store.get(7) == b"blob-7"
        assert 7 in store
        assert store.get(8) is None
        assert 8 not in store

    def test_overwrite_replaces(self, store):
        store.put(1, b"old")
        store.put(1, b"new")
        assert store.get(1) == b"new"
        assert len(store) == 1

    def test_delete(self, store):
        store.put(1, b"x")
        assert store.delete(1)
        assert not store.delete(1)
        assert store.get(1) is None

    def test_user_ids_sorted(self, store):
        for user_id in (5, 1, 9):
            store.put(user_id, b"x")
        assert store.user_ids() == [1, 5, 9]
        store.clear()
        assert store.user_ids() == []
        assert len(store) == 0

    def test_stats(self, store):
        store.put(1, b"abc")
        store.put(2, b"defgh")
        stats = store.stats()
        assert stats["sessions"] == 2
        assert stats["bytes"] == 8
        assert stats["backend"] == store.backend


class TestDiskBackend:
    def test_one_file_per_user_no_temp_residue(self, tmp_path):
        store = SessionStore(tmp_path)
        store.put(3, b"payload")
        assert (tmp_path / "session_3.nvpt").read_bytes() == b"payload"
        assert list(tmp_path.glob("*.tmp")) == []

    def test_reopened_directory_keeps_blobs(self, tmp_path):
        SessionStore(tmp_path).put(4, b"durable")
        assert SessionStore(tmp_path).get(4) == b"durable"

    def test_foreign_files_are_ignored(self, tmp_path):
        (tmp_path / "session_notanid.nvpt").write_bytes(b"?")
        (tmp_path / "README").write_bytes(b"?")
        store = SessionStore(tmp_path)
        store.put(2, b"x")
        assert store.user_ids() == [2]


# ----------------------------------------------------------------------
# Engine integration: eviction spills, lookups restore.
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def make_engine(model, tok, *, max_sessions=2, session_store=None,
                snapshot_mode="raw"):
    return PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                             max_sessions=max_sessions,
                             session_store=session_store,
                             snapshot_mode=snapshot_mode)


def train(engine, user_id, count=10):
    engine.submit(TuneRequest(user_id=user_id,
                              samples=tuple(stream_for(user_id, count,
                                                       seed=user_id))))


def greedy(tok, n=4):
    return GenerationConfig(max_new_tokens=n, temperature=0.0,
                            eos_id=tok.eos_id)


class TestEngineSpillRestore:
    def test_eviction_spills_to_store(self, setup):
        model, tok = setup
        store = SessionStore()
        engine = make_engine(model, tok, session_store=store)
        for user_id in (0, 1, 2):
            train(engine, user_id)
        assert len(engine.active_users()) == 2
        assert 0 in store                      # LRU victim was spilled
        stats = engine.stats()
        assert stats["sessions_spilled"] == 1
        assert stats["evicted_sessions"] == 1
        assert stats["session_store"]["sessions"] == 1

    @pytest.mark.parametrize("snapshot_mode", ["raw", "recipe"])
    def test_restored_session_answers_byte_identically(self, setup,
                                                       snapshot_mode):
        """The acceptance criterion: evict to disk, restore, same bytes."""
        model, tok = setup
        generation = greedy(tok)
        query = stream_for(0, 12)[11].input_text

        reference = make_engine(model, tok, max_sessions=8)
        for user_id in (0, 1, 2):
            train(reference, user_id)
        expected = reference.query(QueryRequest(user_id=0, text=query,
                                                generation=generation))

        engine = make_engine(model, tok, session_store=SessionStore(),
                             snapshot_mode=snapshot_mode)
        for user_id in (0, 1, 2):
            train(engine, user_id)          # user 0 spills to the store
        assert not engine.has_session(0)
        response = engine.query(QueryRequest(user_id=0, text=query,
                                             generation=generation))
        assert response.answer == expected.answer
        assert response.ovt_index == expected.ovt_index
        stats = engine.stats()
        assert stats["sessions_restored"] == 1
        # Restoring re-ran zero tuner epochs: only the original three
        # trainings ever created a session from scratch.
        assert stats["sessions_created"] == 3
        assert engine.session(0).epochs_completed == \
            reference.session(0).epochs_completed

    def test_disk_backed_engine_round_trip(self, setup, tmp_path):
        model, tok = setup
        store = SessionStore(tmp_path / "spool")
        engine = make_engine(model, tok, session_store=store)
        for user_id in (0, 1, 2):
            train(engine, user_id)
        assert (tmp_path / "spool" / "session_0.nvpt").exists()
        answer = engine.answer(0, stream_for(0, 12)[11].input_text,
                               greedy(tok))
        assert isinstance(answer, str) and answer

    def test_another_engine_adopts_spilled_session(self, setup):
        """Blobs are engine-independent: a new worker restores them."""
        model, tok = setup
        store = SessionStore()
        first = make_engine(model, tok, session_store=store)
        train(first, 0)
        first.drop_session(0)                      # spill=True default
        assert 0 in store

        second = make_engine(model, tok, session_store=store)
        query = stream_for(0, 12)[11].input_text
        assert second.answer(0, query, greedy(tok)) == \
            first.answer(0, query, greedy(tok))
        assert second.stats()["sessions_restored"] == 1
        assert second.stats()["sessions_created"] == 0

    def test_drop_without_spill_deletes_blob(self, setup):
        model, tok = setup
        store = SessionStore()
        engine = make_engine(model, tok, session_store=store)
        train(engine, 0)
        engine.drop_session(0)
        assert 0 in store
        engine.session(0)                          # restore it
        engine.drop_session(0, spill=False)
        assert 0 not in store

    def test_rejects_unknown_snapshot_mode(self, setup):
        model, tok = setup
        with pytest.raises(ValueError, match="snapshot_mode"):
            make_engine(model, tok, snapshot_mode="zip")


class TestCounterMonotonicity:
    """Cumulative counters never decrease and never double-count across
    the evict -> restore cycle (regression for the spill-baseline
    accounting alongside the eviction banking of PR 5)."""

    def test_totals_unchanged_by_evict_then_restore(self, setup):
        model, tok = setup
        engine = make_engine(model, tok, max_sessions=1,
                             session_store=SessionStore())
        train(engine, 0)
        train(engine, 1)                     # evicts + spills user 0
        before = engine.stats()
        engine.session(0)                    # restores 0, spills 1
        after = engine.stats()
        # Nothing was served in between: restoring must neither lose nor
        # double-count one op.  Exact equality, not just monotonicity.
        for key in CIM_KEYS + ("prefill_hits",):
            assert after[key] == before[key], key

    def test_counters_monotonic_across_churn(self, setup):
        model, tok = setup
        engine = make_engine(model, tok, max_sessions=1,
                             session_store=SessionStore())
        generation = greedy(tok, 2)
        previous = None
        for user_id in (0, 1, 0, 1, 0):
            if not engine.has_session(user_id) and \
                    engine.session_store.get(user_id) is None:
                train(engine, user_id)
            engine.answer(user_id, stream_for(user_id, 12)[11].input_text,
                          generation)
            current = engine.stats()
            if previous is not None:
                for key in CIM_KEYS + ("prefill_hits", "requests_served"):
                    assert current[key] >= previous[key], key
            previous = current
        assert engine.stats()["sessions_restored"] >= 2

    def test_spill_without_store_still_banks(self, setup):
        """No store configured: eviction loses the session but not its
        contribution to the engine totals (the PR 5 behavior)."""
        model, tok = setup
        engine = make_engine(model, tok, max_sessions=1)
        train(engine, 0)
        before = engine.stats()
        train(engine, 1)                     # evicts 0 with nowhere to go
        after = engine.stats()
        for key in CIM_KEYS:
            assert after[key] >= before[key], key
        assert after["sessions_spilled"] == 0
        assert after["session_store"] is None
