"""Thread-safety tests for the serving engine's decode hot path.

The gateway drives ``begin_query``/``run_decode_round`` from a worker
thread while HTTP handlers call ``submit``/``stats``/``drop_session``
from others, so the engine's lock must make arbitrary interleavings of
its entry points equivalent to *some* sequential order — admissions land
in batch slots exactly once, eviction mid-round cannot corrupt another
user's answer, and the admission bound holds under racing producers.
"""

import threading

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, QueryRequest, QueueFull, TuneRequest


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def fast_config(**overrides):
    return FrameworkConfig.preset("fast", **overrides)


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(setup, user_ids=(0, 1, 2), **engine_kwargs):
    model, tok = setup
    engine = PromptServeEngine(model, tok, fast_config(),
                               max_sessions=engine_kwargs.pop(
                                   "max_sessions", 4),
                               **engine_kwargs)
    for user_id in user_ids:
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    return engine


def requests_for(tok, user_ids=(0, 1, 2), per_user=2):
    generation = GenerationConfig(max_new_tokens=6, temperature=0.1,
                                  seed=3, eos_id=tok.eos_id)
    return [QueryRequest(user_id=user_id, text=sample.input_text,
                         generation=generation,
                         request_id=f"u{user_id}-q{i}")
            for user_id in user_ids
            for i, sample in enumerate(stream_for(user_id, per_user,
                                                  seed=42))]


def drive_until_done(engine, handles, max_rounds=2000):
    rounds = 0
    while not all(p.done for p in handles):
        engine.run_decode_round()
        rounds += 1
        assert rounds < max_rounds, "decode did not converge"


class TestConcurrentAdmissionAndRounds:
    def test_threaded_begin_query_matches_sequential(self, setup):
        _, tok = setup
        engine = build_engine(setup)
        requests = requests_for(tok)
        reference = [engine.query(request) for request in requests]

        handles = [None] * len(requests)
        start = threading.Barrier(4)
        stop = threading.Event()

        def submitter(user_id):
            start.wait()
            for index, request in enumerate(requests):
                if request.user_id == user_id:
                    handles[index] = engine.begin_query(request)

        def driver():
            start.wait()
            while not stop.is_set():
                engine.run_decode_round()

        submitters = [threading.Thread(target=submitter, args=(uid,))
                      for uid in (0, 1, 2)]
        rounds = threading.Thread(target=driver)
        for thread in (*submitters, rounds):
            thread.start()
        for thread in submitters:
            thread.join(timeout=60)
        try:
            drive_until_done(engine, [h for h in handles if h is not None])
        finally:
            stop.set()
            rounds.join(timeout=60)
        assert all(handle is not None for handle in handles)
        assert [handle.response for handle in handles] == reference

    def test_eviction_mid_round_under_load(self, setup):
        _, tok = setup
        engine = build_engine(setup)
        requests = requests_for(tok)
        survivors = [r for r in requests if r.user_id != 1]
        reference = {r.request_id: engine.query(r) for r in survivors}

        handles = [engine.begin_query(r) for r in requests]
        engine.run_decode_round()          # everyone produces a token
        start = threading.Barrier(2)
        evicted = []

        def evictor():
            start.wait()
            evicted.append(engine.drop_session(1, cancel_pending=True))

        thread = threading.Thread(target=evictor)
        thread.start()
        start.wait()
        drive_until_done(engine, handles)
        thread.join(timeout=60)
        assert evicted == [True]
        for request, handle in zip(requests, handles):
            if request.user_id == 1:
                assert handle.done      # cancelled or completed, never lost
            else:
                assert not handle.cancelled
                assert handle.response == reference[request.request_id]

    def test_concurrent_stats_and_observes_during_rounds(self, setup):
        _, tok = setup
        engine = build_engine(setup)
        handles = [engine.begin_query(r) for r in requests_for(tok)]
        errors = []
        stop = threading.Event()
        # A few extra observations (not enough to fire a retraining
        # epoch) racing the decode rounds, plus a stats poll per lap.
        extras = iter(stream_for(0, 5, seed=77))

        def poker():
            try:
                while not stop.is_set():
                    stats = engine.stats()
                    assert stats["queue_depth"] >= 0
                    sample = next(extras, None)
                    if sample is not None:
                        engine.observe(0, sample)
            except Exception as error:      # pragma: no cover
                errors.append(error)

        thread = threading.Thread(target=poker)
        thread.start()
        try:
            drive_until_done(engine, handles)
        finally:
            stop.set()
            thread.join(timeout=60)
        assert not errors
        assert all(handle.response.answer is not None
                   for handle in handles)


class TestAdmissionBound:
    def test_begin_query_rejects_beyond_max_pending(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,), max_pending=2)
        requests = requests_for(tok, user_ids=(0,), per_user=3)
        first = engine.begin_query(requests[0])
        second = engine.begin_query(requests[1])
        with pytest.raises(QueueFull) as info:
            engine.begin_query(requests[2])
        assert "2" in str(info.value)
        stats = engine.stats()
        assert stats["rejected"] == 1
        assert stats["admitted"] == 2
        assert stats["max_pending"] == 2
        drive_until_done(engine, [first, second])
        # Slots freed: the rejected request is admissible now.
        third = engine.begin_query(requests[2])
        drive_until_done(engine, [third])
        assert engine.stats()["admitted"] == 3

    def test_racing_producers_never_exceed_the_bound(self, setup):
        _, tok = setup
        engine = build_engine(setup, max_pending=4)
        requests = requests_for(tok, per_user=4)
        admitted = []
        rejected = []
        lock = threading.Lock()
        start = threading.Barrier(3)

        def producer(user_id):
            start.wait()
            for request in requests:
                if request.user_id != user_id:
                    continue
                try:
                    handle = engine.begin_query(request)
                except QueueFull as error:
                    with lock:
                        rejected.append(error)
                else:
                    with lock:
                        admitted.append(handle)

        threads = [threading.Thread(target=producer, args=(uid,))
                   for uid in (0, 1, 2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        # Nothing drains the queue while the producers race, so exactly
        # max_pending admissions can land no matter the interleaving.
        assert len(admitted) == 4
        assert len(rejected) == 8
        stats = engine.stats()
        assert stats["queue_depth"] == 4
        assert stats["admitted"] == 4
        assert stats["rejected"] == 8
        drive_until_done(engine, admitted)


class TestCancellation:
    def test_cancel_query_retires_with_prefix(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,))
        # No EOS and a long budget: the generation must still be in
        # flight after two rounds so the cancel lands mid-decode.
        generation = GenerationConfig(max_new_tokens=16, temperature=0.1,
                                      seed=3, eos_id=None)
        sample = next(iter(stream_for(0, 1, seed=42)))
        request = QueryRequest(user_id=0, text=sample.input_text,
                               generation=generation, request_id="cancel-0")
        full = engine.query(request)
        pending = engine.begin_query(request)
        engine.run_decode_round()
        engine.run_decode_round()
        assert engine.cancel_query(pending) is True
        assert pending.done
        assert pending.cancelled
        assert full.answer.startswith(pending.response.answer)
        # Cancelling a finished query is a no-op.
        assert engine.cancel_query(pending) is False

    def test_latency_histogram_records_served_queries(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,))
        for request in requests_for(tok, user_ids=(0,), per_user=3):
            engine.query(request)
        latency = engine.stats()["latency_ms"]
        assert latency["count"] == 3
        assert 0.0 < latency["p50_ms"] <= latency["p99_ms"] <= \
            latency["max_ms"]
