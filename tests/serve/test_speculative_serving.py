"""Speculative decoding behind the serving stack.

An engine (or sharded fleet) given a ``speculative`` decoder must serve
byte-identical responses to one without it — speculation is invisible
above the scheduler — while the new telemetry keys surface acceptance
rate and tokens-per-forward through ``stats()`` and aggregate correctly
across shards.
"""

import numpy as np
import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import (
    GenerationConfig,
    PretrainConfig,
    SpeculativeDecoder,
    build_draft_model,
    build_model,
    distill_draft,
    pretrain_lm,
)
from repro.serve import PromptServeEngine, QueryRequest, TuneRequest
from repro.serve.sharded import ShardedPromptEngine
from repro.serve.stats_manifest import STATS_MANIFEST

SPEC_KEYS = ("decode_forwards", "spec_rounds", "draft_forwards",
             "draft_proposed_tokens", "draft_accepted_tokens",
             "tokens_per_forward", "draft_acceptance_rate")


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=400, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=60, seed=0))
    draft = build_draft_model("phi-2-sim", tok.vocab_size)
    prompts = [np.asarray(tok.encode(text), dtype=np.int64)
               for text in ("the movie was", "a quiet morning",
                            "breaking news today")]
    distill_draft(draft, model, prompts, max_new_tokens=24,
                  pretrain=PretrainConfig(steps=150, seed=1))
    return model, tok, draft


def stream_for(user_id, count, seed=0):
    dataset = make_dataset("LaMP-2")
    return dataset.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(setup, speculative=None, *, sharded=False):
    model, tok, _ = setup
    cls_kwargs = {"max_sessions": 4, "speculative": speculative}
    if sharded:
        engine = ShardedPromptEngine(model, tok,
                                     FrameworkConfig.preset("fast"),
                                     n_workers=2, **cls_kwargs)
    else:
        engine = PromptServeEngine(model, tok,
                                   FrameworkConfig.preset("fast"),
                                   **cls_kwargs)
    for user_id in (0, 1, 2):
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    return engine


def greedy_requests(tok, *, max_new_tokens=8, use_eos=True):
    generation = GenerationConfig(max_new_tokens=max_new_tokens,
                                  temperature=0.0,
                                  eos_id=tok.eos_id if use_eos else None)
    return [QueryRequest(user_id=user_id,
                         text=stream_for(user_id, 1, seed=9)[0].input_text,
                         generation=generation,
                         request_id=f"u{user_id}")
            for user_id in (0, 1, 2)]


def make_spec(setup, **kwargs):
    _, _, draft = setup
    kwargs.setdefault("max_draft", 4)
    kwargs.setdefault("threshold", 0.1)
    return SpeculativeDecoder(draft, **kwargs)


class TestServingEquivalence:
    def test_speculative_responses_identical(self, setup):
        _, tok, _ = setup
        requests = greedy_requests(tok)
        plain = build_engine(setup).answer_batch(requests)
        speculative = build_engine(setup, make_spec(setup)) \
            .answer_batch(requests)
        assert speculative == plain            # every response field

    def test_sampled_requests_fall_back_identically(self, setup):
        """temperature > 0 disables drafting but not serving."""
        _, tok, _ = setup
        generation = GenerationConfig(max_new_tokens=6, temperature=0.7,
                                      seed=3)
        requests = [QueryRequest(user_id=0, text="the weather is",
                                 generation=generation, request_id="q")]
        plain = build_engine(setup).answer_batch(requests)
        engine = build_engine(setup, make_spec(setup))
        assert engine.answer_batch(requests) == plain
        assert engine.stats()["draft_proposed_tokens"] == 0

    def test_sharded_speculative_identical(self, setup):
        _, tok, _ = setup
        requests = greedy_requests(tok)
        plain = build_engine(setup).answer_batch(requests)
        fleet = build_engine(setup, make_spec(setup), sharded=True)
        assert fleet.answer_batch(requests) == plain


class TestSpeculativeStats:
    def test_stats_keys_present_and_consistent(self, setup):
        _, tok, _ = setup
        engine = build_engine(setup, make_spec(setup))
        engine.answer_batch(greedy_requests(tok, use_eos=False))
        stats = engine.stats()
        for key in SPEC_KEYS:
            assert key in stats, key
        assert stats["draft_proposed_tokens"] > 0
        # Served answers are conditioned on each user's trained prefix,
        # which the draft never saw — acceptance may be low, but the
        # accounting invariants must hold regardless.
        assert 0 <= stats["draft_accepted_tokens"] \
            <= stats["draft_proposed_tokens"]
        assert stats["draft_acceptance_rate"] == pytest.approx(
            stats["draft_accepted_tokens"] / stats["draft_proposed_tokens"])
        assert stats["tokens_per_forward"] == pytest.approx(
            stats["decode_tokens"] / stats["decode_forwards"])
        # Speculation's whole point: more than one token per forward.
        assert stats["tokens_per_forward"] > 1.0
        assert stats["spec_rounds"] <= stats["decode_rounds"]

    def test_plain_engine_emits_spec_keys_as_zeros(self, setup):
        """The keys exist (zeroed) without a decoder, so dashboards and
        the sharded merge never branch on configuration."""
        _, tok, _ = setup
        engine = build_engine(setup)
        engine.answer_batch(greedy_requests(tok, use_eos=False))
        stats = engine.stats()
        assert stats["spec_rounds"] == 0
        assert stats["draft_proposed_tokens"] == 0
        assert stats["decode_forwards"] == stats["decode_rounds"]

    def test_manifest_declares_every_spec_key(self):
        for key in SPEC_KEYS:
            assert key in STATS_MANIFEST, key
        assert STATS_MANIFEST["draft_acceptance_rate"] == (
            "ratio", "draft_accepted_tokens", "draft_proposed_tokens")
        assert STATS_MANIFEST["tokens_per_forward"] == (
            "ratio", "decode_tokens", "decode_forwards")

    def test_sharded_aggregation_recomputes_ratios(self, setup):
        _, tok, _ = setup
        fleet = build_engine(setup, make_spec(setup), sharded=True)
        fleet.answer_batch(greedy_requests(tok, use_eos=False))
        stats = fleet.stats()
        workers = stats["workers"]
        for key in ("draft_proposed_tokens", "draft_accepted_tokens",
                    "decode_forwards", "spec_rounds"):
            assert stats[key] == sum(worker[key] for worker in workers)
        assert stats["draft_proposed_tokens"] > 0
        assert stats["draft_acceptance_rate"] == pytest.approx(
            stats["draft_accepted_tokens"] / stats["draft_proposed_tokens"])
