"""Serving on a weight-quantized base model: determinism, stats, config."""

import copy

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import (
    GenerationConfig,
    PretrainConfig,
    SpeculativeDecoder,
    build_draft_model,
    build_model,
    pretrain_lm,
)
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    ShardedPromptEngine,
    TuneRequest,
)
from repro.serve.stats_manifest import STATS_MANIFEST

USERS = (0, 1, 2)
QUANT_KEYS = ("quantized_layers", "weight_bytes", "weight_bytes_saved")


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def quant_config():
    return FrameworkConfig.preset("fast").replace(base_quantization="int8")


def trace(tok):
    generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                  eos_id=tok.eos_id)
    ds = make_dataset("LaMP-2")
    tunes, queries = [], []
    for uid in USERS:
        samples = ds.generate(make_user(uid, seed=0), 10, seed=uid)
        tunes.append(TuneRequest(user_id=uid, samples=tuple(samples)))
        text = ds.generate(make_user(uid, seed=0), 12, seed=42)[-1].input_text
        queries.append(QueryRequest(user_id=uid, text=text,
                                    generation=generation))
    return tunes, queries


def serve_trace(engine, tok):
    tunes, queries = trace(tok)
    for request in tunes:
        engine.submit(request)
    return [r.answer for r in engine.answer_batch(queries)]


class TestQuantizedServing:
    def test_restart_byte_identity(self, setup):
        model, tok = setup
        first = serve_trace(
            PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                              max_sessions=4), tok)
        second = serve_trace(
            PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                              max_sessions=4), tok)
        assert first == second

    def test_sharded_matches_single_engine(self, setup):
        model, tok = setup
        single = serve_trace(
            PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                              max_sessions=8), tok)
        sharded = serve_trace(
            ShardedPromptEngine(copy.deepcopy(model), tok, quant_config(),
                                n_workers=3, max_sessions=4), tok)
        assert sharded == single

    def test_stats_keys_emitted_and_declared(self, setup):
        model, tok = setup
        engine = PromptServeEngine(copy.deepcopy(model), tok, quant_config())
        stats = engine.stats()
        for key in QUANT_KEYS:
            assert key in STATS_MANIFEST
            assert STATS_MANIFEST[key] == "structural"
        assert stats["quantized_layers"] > 0
        assert stats["weight_bytes"] > 0
        assert stats["weight_bytes_saved"] > 0

    def test_float_engine_reports_zero_footprint(self, setup):
        model, tok = setup
        stats = PromptServeEngine(copy.deepcopy(model), tok,
                                  FrameworkConfig.preset("fast")).stats()
        assert all(stats[key] == 0 for key in QUANT_KEYS)

    def test_sharded_reports_shared_model_once(self, setup):
        model, tok = setup
        sharded = ShardedPromptEngine(copy.deepcopy(model), tok,
                                      quant_config(), n_workers=3)
        stats = sharded.stats()
        # structural, from worker 0 — NOT summed across the fleet
        assert stats["weight_bytes"] == stats["workers"][0]["weight_bytes"]
        assert all(worker["weight_bytes"] == stats["weight_bytes"]
                   for worker in stats["workers"])

    def test_shared_model_converts_once_across_workers(self, setup):
        model, tok = setup
        shared = copy.deepcopy(model)
        sharded = ShardedPromptEngine(shared, tok, quant_config(),
                                      n_workers=4)
        single = PromptServeEngine(shared, tok, quant_config())
        assert (single.stats()["quantized_layers"]
                == sharded.stats()["quantized_layers"])


class TestQuantizedSpeculative:
    def test_speculative_answers_match_plain_quantized(self, setup):
        model, tok = setup
        draft = build_draft_model("phi-2-sim", tok.vocab_size)
        plain = serve_trace(
            PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                              max_sessions=4), tok)
        spec = SpeculativeDecoder(copy.deepcopy(draft), max_draft=3,
                                  threshold=0.1)
        speculative = serve_trace(
            PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                              max_sessions=4, speculative=spec), tok)
        assert speculative == plain

    def test_draft_model_is_quantized_alongside_base(self, setup):
        model, tok = setup
        from repro.llm import quantization_stats
        draft = build_draft_model("phi-2-sim", tok.vocab_size)
        spec = SpeculativeDecoder(draft, max_draft=3)
        PromptServeEngine(copy.deepcopy(model), tok, quant_config(),
                          speculative=spec)
        assert quantization_stats(spec.draft_model)["quantized_layers"] > 0


class TestConfigPlumbing:
    def test_round_trip_and_back_compat(self):
        config = quant_config()
        assert FrameworkConfig.from_dict(config.to_dict()) == config
        legacy = {key: value
                  for key, value in FrameworkConfig().to_dict().items()
                  if key not in ("base_quantization",
                                 "quantization_group_size")}
        restored = FrameworkConfig.from_dict(legacy)
        assert restored.base_quantization is None
        assert restored.quantization_group_size == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(base_quantization="int2")
        with pytest.raises(ValueError):
            FrameworkConfig(quantization_group_size=0)
