"""Property tests: snapshot round-trips across the configuration space.

Hypothesis drives device model x sigma x adc_bits x layout through the
NVM-layer codecs; plain parametrization covers the session round-trip
across tuner types (training is too slow per example for hypothesis).
"""

import dataclasses

import numpy as np
import pytest

from repro.cim import CiMMatrix
from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.nvm import available_devices, get_device
from repro.retrieval import SSA_CONFIG, CiMSearchEngine
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    SessionSnapshot,
    TuneRequest,
)
from repro.serve.codec import decode_value, encode_value

hypothesis = pytest.importorskip("hypothesis")
st = pytest.importorskip("hypothesis.strategies")
given, settings = hypothesis.given, hypothesis.settings

DEVICES = st.sampled_from(available_devices())
SIGMAS = st.sampled_from([0.0, 0.05, 0.1, 0.2, 0.3])
ADC_BITS = st.integers(min_value=4, max_value=10)


def codec_roundtrip(snap):
    return decode_value(encode_value(snap))


class TestCiMMatrixProperties:
    @settings(max_examples=25, deadline=None)
    @given(device_name=DEVICES, sigma=SIGMAS, adc_bits=ADC_BITS,
           vectorized=st.booleans(), seed=st.integers(0, 2**32 - 1))
    def test_snapshot_roundtrip_is_bit_identical(self, device_name, sigma,
                                                 adc_bits, vectorized, seed):
        device = get_device(device_name)
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(12, 5)).astype(np.float32)
        matrix = CiMMatrix(values, device, sigma=sigma, rows=8, cols=4,
                           adc_bits=adc_bits, vectorized=vectorized,
                           rng=np.random.default_rng(seed + 1))
        query = rng.normal(size=12).astype(np.float32)
        matrix.matvec(query)

        rebuilt = CiMMatrix.from_snapshot(codec_roundtrip(matrix.snapshot()),
                                          device)
        assert rebuilt.aggregate_stats() == matrix.aggregate_stats()
        assert np.array_equal(rebuilt.matvec(query), matrix.matvec(query))
        assert np.array_equal(rebuilt.read_matrix(), matrix.read_matrix())

    @settings(max_examples=15, deadline=None)
    @given(device_name=DEVICES, sigma=SIGMAS,
           seed=st.integers(0, 2**32 - 1))
    def test_restored_rng_diverges_never(self, device_name, sigma, seed):
        """After restore, future noise draws match the original's."""
        device = get_device(device_name)
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(10, 4)).astype(np.float32)
        matrix = CiMMatrix(values, device, sigma=sigma, rows=8, cols=4,
                           rng=np.random.default_rng(seed + 1))
        rebuilt = CiMMatrix.from_snapshot(matrix.snapshot(), device)
        masks = np.ones((matrix.bank.n_tiles, 8, 4), dtype=bool)
        matrix.bank.reprogram_cells(masks)    # fresh noise draws
        rebuilt.bank.reprogram_cells(masks)
        assert np.array_equal(rebuilt.bank.conductance,
                              matrix.bank.conductance)


class TestSearchEngineProperties:
    @settings(max_examples=15, deadline=None)
    @given(device_name=DEVICES, sigma=SIGMAS, adc_bits=ADC_BITS,
           vectorized=st.booleans(), n_ovts=st.integers(1, 4),
           seed=st.integers(0, 2**32 - 1))
    def test_store_roundtrip_scores_identically(self, device_name, sigma,
                                                adc_bits, vectorized,
                                                n_ovts, seed):
        device = get_device(device_name)
        config = dataclasses.replace(SSA_CONFIG, adc_bits=adc_bits)
        rng = np.random.default_rng(seed)
        engine = CiMSearchEngine(device, sigma=sigma, config=config,
                                 vectorized=vectorized,
                                 rng=np.random.default_rng(seed + 1))
        engine.build([rng.normal(size=(rng.integers(2, 6), 8))
                      .astype(np.float32) for _ in range(n_ovts)])
        query = rng.normal(size=(3, 8)).astype(np.float32)
        engine.query(query)

        rebuilt = CiMSearchEngine.from_snapshot(
            codec_roundtrip(engine.snapshot()), device, config=config)
        assert rebuilt.aggregate_stats() == engine.aggregate_stats()
        assert np.array_equal(rebuilt.query(query), engine.query(query))

    @settings(max_examples=10, deadline=None)
    @given(sigma=SIGMAS, n_ovts=st.integers(1, 3),
           seed=st.integers(0, 2**32 - 1))
    def test_digital_store_roundtrip(self, sigma, n_ovts, seed):
        device = get_device("NVM-1")
        rng = np.random.default_rng(seed)
        engine = CiMSearchEngine(device, sigma=sigma, on_cim=False,
                                 rng=np.random.default_rng(seed + 1))
        engine.build([rng.normal(size=(3, 8)).astype(np.float32)
                      for _ in range(n_ovts)])
        query = rng.normal(size=(3, 8)).astype(np.float32)
        rebuilt = CiMSearchEngine.from_snapshot(
            codec_roundtrip(engine.snapshot()), device)
        assert np.array_equal(rebuilt.query(query), engine.query(query))


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


class TestSessionRoundTripAcrossTuners:
    """The full session round-trip for each tuner configuration.

    Hypothesis would retrain a pipeline per example; a straight grid over
    the tuner axis (noise-aware vs plain) x capture mode keeps the same
    coverage at a fraction of the cost.
    """

    @pytest.mark.parametrize("noise_aware", [True, False])
    @pytest.mark.parametrize("mode", ["raw", "recipe"])
    def test_roundtrip_answers_byte_identically(self, setup, noise_aware,
                                                mode):
        model, tok = setup
        config = FrameworkConfig.preset("fast", noise_aware=noise_aware)
        engine = PromptServeEngine(model, tok, config)
        samples = make_dataset("LaMP-2").generate(make_user(3, seed=0), 10,
                                                  seed=3)
        engine.submit(TuneRequest(user_id=3, samples=tuple(samples)))
        generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                      eos_id=tok.eos_id)
        query = samples[-1].input_text
        answer = engine.query(QueryRequest(user_id=3, text=query,
                                           generation=generation)).answer
        session = engine.session(3)
        assert session.library.noise_aware is noise_aware

        blob = SessionSnapshot.capture(session, mode=mode).to_bytes()
        restored = SessionSnapshot.from_bytes(blob).build_session(model, tok)
        assert restored.library.noise_aware is noise_aware
        assert restored.cim_stats() == session.cim_stats()
        assert restored.answer(query, generation) == answer
