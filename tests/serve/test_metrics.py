"""Unit tests for the log-bucketed latency histogram."""

import pytest

from repro.serve import LatencyHistogram


class TestRecording:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.count == 0
        assert histogram.percentile(0.5) == 0.0
        assert histogram.mean_s == 0.0
        assert histogram.summary() == {"count": 0, "p50_ms": 0.0,
                                       "p99_ms": 0.0, "mean_ms": 0.0,
                                       "max_ms": 0.0}

    def test_single_sample_is_exact(self):
        histogram = LatencyHistogram()
        histogram.record(0.123)
        # Min/max clamping makes one-sample percentiles exact, not
        # bucket-approximated.
        assert histogram.percentile(0.5) == pytest.approx(0.123)
        assert histogram.percentile(0.99) == pytest.approx(0.123)
        assert histogram.mean_s == pytest.approx(0.123)

    def test_exact_aggregates(self):
        histogram = LatencyHistogram()
        for value in (0.010, 0.020, 0.030):
            histogram.record(value)
        assert histogram.count == 3
        assert histogram.min_s == pytest.approx(0.010)
        assert histogram.max_s == pytest.approx(0.030)
        assert histogram.mean_s == pytest.approx(0.020)

    def test_negative_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-1.0)
        assert histogram.min_s == 0.0


class TestPercentiles:
    def test_bucket_resolution(self):
        # 1000 samples spread over 1..100 ms: the log buckets are ~20%
        # wide, so estimates must land within that relative error.
        histogram = LatencyHistogram()
        values = [0.001 + 0.099 * i / 999 for i in range(1000)]
        for value in values:
            histogram.record(value)
        for q in (0.10, 0.50, 0.90, 0.99):
            exact = values[int(q * 999)]
            assert histogram.percentile(q) == pytest.approx(exact, rel=0.25)

    def test_monotone_in_q(self):
        histogram = LatencyHistogram()
        for i in range(100):
            histogram.record(0.0005 * (i + 1))
        quantiles = [histogram.percentile(q)
                     for q in (0.0, 0.25, 0.5, 0.75, 0.99, 1.0)]
        assert quantiles == sorted(quantiles)

    def test_clamped_to_observed_range(self):
        histogram = LatencyHistogram()
        histogram.record(0.005)
        histogram.record(0.006)
        assert histogram.percentile(0.0) >= 0.005
        assert histogram.percentile(1.0) <= 0.006

    def test_out_of_range_quantile(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_out_of_span_values_clamp_to_edge_buckets(self):
        histogram = LatencyHistogram()
        histogram.record(1e-9)     # below the 1 µs floor
        histogram.record(3600.0)   # above the ~17 min ceiling
        assert histogram.count == 2
        assert histogram.percentile(0.99) <= 3600.0


class TestMerge:
    def test_merge_folds_samples(self):
        left, right = LatencyHistogram(), LatencyHistogram()
        left.record(0.010)
        right.record(0.030)
        right.record(0.050)
        merged = left.merge(right)
        assert merged is left
        assert left.count == 3
        assert left.min_s == pytest.approx(0.010)
        assert left.max_s == pytest.approx(0.050)
        assert left.mean_s == pytest.approx(0.030)

    def test_summary_units_are_milliseconds(self):
        histogram = LatencyHistogram()
        histogram.record(0.200)
        summary = histogram.summary()
        assert summary["p50_ms"] == pytest.approx(200.0)
        assert summary["max_ms"] == pytest.approx(200.0)
        assert summary["count"] == 1
