"""ShardedPromptEngine: routing, trace equivalence, aggregate stats."""

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.gateway import GatewayClient, GatewayConfig, PromptGateway
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    SessionStore,
    ShardedPromptEngine,
    TuneRequest,
)
from repro.serve.sharded import _SUMMED_KEYS

USERS = (0, 1, 2, 3)


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def fast_generation(tok, n=3):
    return GenerationConfig(max_new_tokens=n, temperature=0.0,
                            eos_id=tok.eos_id)


def trace(tok):
    """A mixed-user trace: tunes first, then interleaved queries."""
    generation = fast_generation(tok)
    tunes = [TuneRequest(user_id=uid,
                         samples=tuple(stream_for(uid, 10, seed=uid)))
             for uid in USERS]
    queries = []
    for i in range(2):
        for uid in USERS:
            text = stream_for(uid, 12 + i, seed=42)[-1].input_text
            queries.append(QueryRequest(user_id=uid, text=text,
                                        generation=generation,
                                        request_id=f"u{uid}-q{i}"))
    return tunes, queries


@pytest.fixture(scope="module")
def engines(setup):
    """A 4-worker sharded engine and a single engine, same trace."""
    model, tok = setup
    sharded = ShardedPromptEngine(model, tok, FrameworkConfig.preset("fast"),
                                  n_workers=4, max_sessions=4)
    single = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                               max_sessions=16)
    tunes, queries = trace(tok)
    for request in tunes:
        sharded.submit(request)
        single.submit(request)
    sharded_responses = sharded.answer_batch(queries)
    single_responses = single.answer_batch(queries)
    return sharded, single, sharded_responses, single_responses


class TestRouting:
    def test_shard_assignment_is_stable_and_total(self, engines):
        sharded, *_ = engines
        for uid in range(50):
            shard = sharded.shard_of(uid)
            assert 0 <= shard < sharded.n_workers
            assert shard == sharded.shard_of(uid)
            assert sharded.worker_for(uid) is sharded.workers[shard]

    def test_sessions_live_on_their_shard_only(self, engines):
        sharded, *_ = engines
        for uid in USERS:
            owner = sharded.shard_of(uid)
            for index, worker in enumerate(sharded.workers):
                assert worker.has_session(uid) == (index == owner)
        assert sorted(sharded.active_users()) == sorted(USERS)
        assert sharded.has_session(USERS[0])

    def test_rejects_nonpositive_worker_count(self, setup):
        model, tok = setup
        with pytest.raises(ValueError, match="n_workers"):
            ShardedPromptEngine(model, tok, n_workers=0)


class TestTraceEquivalence:
    def test_answers_byte_identical_to_single_engine(self, engines):
        """The acceptance criterion: sharding changes no byte of output."""
        _, _, sharded_responses, single_responses = engines
        assert len(sharded_responses) == len(single_responses) == 8
        for mine, theirs in zip(sharded_responses, single_responses):
            assert mine.answer == theirs.answer
            assert mine.ovt_index == theirs.ovt_index
            assert mine.user_id == theirs.user_id
            assert list(mine.scores) == list(theirs.scores)

    def test_sequential_api_matches_too(self, engines, setup):
        _, tok = setup
        sharded, single, *_ = engines
        generation = fast_generation(tok)
        text = stream_for(2, 20, seed=9)[-1].input_text
        assert sharded.answer(2, text, generation) == \
            single.answer(2, text, generation)

    def test_decode_round_loop_matches_batch_path(self, engines, setup):
        sharded, _, sharded_responses, _ = engines
        _, tok = setup
        query = QueryRequest(user_id=1,
                             text=stream_for(1, 12, seed=42)[-1].input_text,
                             generation=fast_generation(tok))
        expected = sharded.query(query)
        pending = sharded.begin_query(query)
        rounds = 0
        while not pending.done:
            sharded.run_decode_round()
            rounds += 1
            assert rounds < 100, "decode loop did not converge"
        assert pending.response.answer == expected.answer

    def test_cancel_query_reaches_owning_worker(self, engines, setup):
        sharded, *_ = engines
        _, tok = setup
        request = QueryRequest(user_id=3,
                               text=stream_for(3, 12)[-1].input_text,
                               generation=fast_generation(tok))
        pending = sharded.begin_query(request)
        assert sharded.cancel_query(pending)
        assert sharded.stats()["pending_generations"] == 0


class TestAggregateStats:
    def test_summed_keys_equal_sum_of_workers(self, engines):
        sharded, *_ = engines
        stats = sharded.stats()
        assert stats["n_workers"] == 4
        assert len(stats["workers"]) == 4
        for key in _SUMMED_KEYS:
            assert stats[key] == sum(worker[key]
                                     for worker in stats["workers"]), key

    def test_ratios_recomputed_not_averaged(self, engines):
        sharded, *_ = engines
        stats = sharded.stats()
        rounds = stats["decode_rounds"]
        if rounds:
            assert stats["tokens_per_round"] == pytest.approx(
                stats["decode_tokens"] / rounds)

    def test_registered_counter_aggregates_across_workers(self, engines):
        """A counter declared via register_stat() sums fleet-wide."""
        from repro.serve.stats_manifest import STATS_MANIFEST, register_stat

        sharded, *_ = engines
        originals = {w: w.stats for w in sharded.workers}
        try:
            for i, worker in enumerate(sharded.workers):
                base = originals[worker]
                worker.stats = (lambda b=base, v=i + 1:
                                {**b(), "my_counter": v})
            # emitted but undeclared: the merge must drop it, not guess
            assert "my_counter" not in sharded.stats()
            register_stat("my_counter", "additive")
            expected = sum(range(1, sharded.n_workers + 1))
            assert sharded.stats()["my_counter"] == expected
        finally:
            for worker, base in originals.items():
                worker.stats = base
            STATS_MANIFEST.pop("my_counter", None)

    def test_register_stat_validates_kinds(self):
        from repro.serve.stats_manifest import STATS_MANIFEST, register_stat

        with pytest.raises(ValueError):
            register_stat("bogus", "averaged")
        with pytest.raises(ValueError):
            register_stat("bogus", ("ratio", "only_one"))
        with pytest.raises(ValueError):
            register_stat("requests_served", "capacity")  # redeclaration
        assert "bogus" not in STATS_MANIFEST

    def test_latency_histogram_merges_all_samples(self, engines):
        sharded, *_ = engines
        stats = sharded.stats()
        total = sum(worker["latency_ms"]["count"]
                    for worker in stats["workers"])
        assert stats["latency_ms"]["count"] == total

    def test_shared_store_reported_once(self, setup):
        model, tok = setup
        store = SessionStore()
        sharded = ShardedPromptEngine(model, tok,
                                      FrameworkConfig.preset("fast"),
                                      n_workers=2, max_sessions=1,
                                      session_store=store)
        for uid in USERS:
            sharded.submit(TuneRequest(
                user_id=uid, samples=tuple(stream_for(uid, 10, seed=uid))))
        stats = sharded.stats()
        assert stats["session_store"] == store.stats()
        assert stats["sessions_spilled"] >= 1
        # Spilled users restore transparently on their owning worker.
        victim = next(uid for uid in USERS if not sharded.has_session(uid))
        sharded.answer(victim, stream_for(victim, 12)[-1].input_text,
                       fast_generation(tok))
        assert sharded.stats()["sessions_restored"] >= 1


class TestGatewayOverShardedEngine:
    def test_gateway_serves_sharded_engine_unchanged(self, setup):
        """The gateway drives a sharded fleet exactly like one engine."""
        model, tok = setup
        sharded = ShardedPromptEngine(model, tok,
                                      FrameworkConfig.preset("fast"),
                                      n_workers=2, max_sessions=4)
        generation = fast_generation(tok)
        with PromptGateway(sharded, GatewayConfig(port=0, max_batch=4)) as gw:
            host, port = gw.address
            with GatewayClient(host, port) as client:
                tuned = client.tune(0, list(stream_for(0, 10)))
                assert tuned.epochs_fired >= 1
                text = stream_for(0, 12)[-1].input_text
                over_http = client.query(0, text, generation=generation)
                direct = sharded.query(QueryRequest(user_id=0, text=text,
                                                    generation=generation))
                assert over_http.answer == direct.answer
                stats = client.stats()
                assert stats["engine"]["n_workers"] == 2
