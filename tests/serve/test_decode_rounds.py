"""Tests for cross-user continuous batching in the serving engine.

The serving contract: ``answer_batch`` with the batched decoder produces
responses *equal* (every field) to the sequential reference path, while
advancing all users' answers one token per round over the shared model —
and session eviction mid-round can neither corrupt another user's batch
slot nor lose a pending answer.
"""

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, QueryRequest, TuneRequest


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def fast_config(**overrides):
    return FrameworkConfig.preset("fast", **overrides)


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(setup, user_ids=(0, 1, 2), max_sessions=4):
    model, tok = setup
    engine = PromptServeEngine(model, tok, fast_config(),
                               max_sessions=max_sessions)
    for user_id in user_ids:
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    return engine


def interleaved_requests(tok, user_ids=(0, 1, 2), per_user=3, *,
                         temperature=0.1, max_new_tokens=8, use_eos=True):
    generation = GenerationConfig(max_new_tokens=max_new_tokens,
                                  temperature=temperature, seed=3,
                                  eos_id=tok.eos_id if use_eos else None)
    requests = []
    for user_id in user_ids:
        for i, sample in enumerate(stream_for(user_id, per_user, seed=42)):
            requests.append(QueryRequest(
                user_id=user_id, text=sample.input_text,
                generation=generation, request_id=f"u{user_id}-q{i}"))
    return requests[::2] + requests[1::2]      # interleave users


class TestBatchedEquivalence:
    @pytest.mark.parametrize("temperature", [0.0, 0.7])
    def test_batched_equals_sequential_reference(self, setup, temperature):
        _, tok = setup
        requests = interleaved_requests(tok, temperature=temperature)
        sequential = build_engine(setup).answer_batch(requests,
                                                      batched=False)
        batched = build_engine(setup).answer_batch(requests)
        assert batched == sequential           # every response field
        assert [r.request_id for r in batched] == \
            [r.request_id for r in requests]

    def test_batched_equals_query_loop(self, setup):
        _, tok = setup
        requests = interleaved_requests(tok, per_user=2)
        reference_engine = build_engine(setup)
        reference = [reference_engine.query(r) for r in requests]
        batched = build_engine(setup).answer_batch(requests)
        assert batched == reference

    def test_batched_shares_prefills_within_batch(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,))
        text = stream_for(0, 1)[0].input_text
        generation = GenerationConfig(max_new_tokens=5, temperature=0.0,
                                      eos_id=tok.eos_id)
        requests = [QueryRequest(user_id=0, text=text, generation=generation,
                                 request_id=f"q{i}") for i in range(4)]
        batched = engine.answer_batch(requests)
        assert engine.stats()["prefill_hits"] == 3
        assert len({r.answer for r in batched}) == 1

    def test_empty_batch(self, setup):
        assert build_engine(setup, user_ids=()).answer_batch([]) == []

    def test_admission_failure_drains_admitted_queries(self, setup):
        """An unknown user mid-batch raises, but queries admitted before
        the failure still complete — matching the sequential path, which
        serves earlier users before raising."""
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,))
        generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                      eos_id=tok.eos_id)
        good = QueryRequest(user_id=0, text=stream_for(0, 1)[0].input_text,
                            generation=generation)
        stray = QueryRequest(user_id=99, text="movie about tag",
                             generation=generation)
        with pytest.raises(KeyError, match="no session for user 99"):
            engine.answer_batch([good, stray])
        stats = engine.stats()
        assert stats["pending_generations"] == 0
        assert stats["requests_served"] == 1


class TestDecodeRounds:
    def test_begin_query_and_manual_rounds(self, setup):
        _, tok = setup
        engine = build_engine(setup)
        requests = interleaved_requests(tok, per_user=1)
        pendings = [engine.begin_query(r) for r in requests]
        assert engine.stats()["pending_generations"] == \
            sum(not p.done for p in pendings)
        rounds = 0
        while not all(p.done for p in pendings):
            report = engine.run_decode_round()
            rounds += 1
            assert report.n_active >= report.n_retired
        assert rounds > 0
        reference = build_engine(setup).answer_batch(requests,
                                                     batched=False)
        assert [p.response for p in pendings] == reference
        assert engine.stats()["pending_generations"] == 0

    def test_round_telemetry_in_stats(self, setup):
        _, tok = setup
        engine = build_engine(setup)
        engine.answer_batch(interleaved_requests(tok))
        stats = engine.stats()
        assert stats["decode_rounds"] > 0
        assert stats["decode_tokens"] > 0
        assert 1.0 <= stats["batch_occupancy"] <= len(
            interleaved_requests(tok))
        assert stats["tokens_per_round"] <= stats["batch_occupancy"]
        assert stats["requests_served"] == 9

    def test_stats_readable_mid_round(self, setup):
        """Counters only advance at retirement: a half-decoded batch shows
        pending generations, not phantom served requests."""
        _, tok = setup
        engine = build_engine(setup, user_ids=(0, 1))
        requests = interleaved_requests(tok, user_ids=(0, 1), per_user=1,
                                        temperature=0.0, max_new_tokens=6)
        pendings = [engine.begin_query(r) for r in requests]
        engine.run_decode_round()
        stats = engine.stats()
        assert stats["requests_served"] == sum(p.done for p in pendings)
        assert stats["pending_generations"] == \
            sum(not p.done for p in pendings)
        while not all(p.done for p in pendings):
            engine.run_decode_round()
        assert engine.stats()["requests_served"] == len(requests)

    def test_empty_round_is_noop(self, setup):
        engine = build_engine(setup, user_ids=())
        report = engine.run_decode_round()
        assert report.n_active == 0
        assert engine.stats()["decode_rounds"] == 0


class TestEvictionDuringRounds:
    def test_lru_eviction_mid_round_finishes_cleanly(self, setup):
        """Regression: evicting a session whose generation is in flight
        must neither corrupt another session's slot nor lose the answer —
        both users' responses stay token-identical to the sequential
        reference."""
        _, tok = setup
        engine = build_engine(setup, user_ids=(0, 1), max_sessions=2)
        requests = interleaved_requests(tok, user_ids=(0, 1), per_user=1,
                                        temperature=0.0, max_new_tokens=8,
                                        use_eos=False)
        pendings = [engine.begin_query(r) for r in requests]
        engine.run_decode_round()
        assert not all(p.done for p in pendings)   # genuinely mid-flight
        engine.session(9)              # LRU-evicts user 0 mid-flight
        assert not engine.has_session(0)
        while not all(p.done for p in pendings):
            engine.run_decode_round()
        reference = build_engine(setup, user_ids=(0, 1)) \
            .answer_batch(requests, batched=False)
        assert [p.response for p in pendings] == reference
        assert engine.stats()["pending_generations"] == 0
        assert not any(p.cancelled for p in pendings)

    def test_drop_session_default_lets_generation_finish(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0, 1))
        requests = interleaved_requests(tok, user_ids=(0, 1), per_user=1,
                                        temperature=0.0, max_new_tokens=8,
                                        use_eos=False)
        pendings = [engine.begin_query(r) for r in requests]
        engine.run_decode_round()
        assert engine.drop_session(0)
        while not all(p.done for p in pendings):
            engine.run_decode_round()
        reference = build_engine(setup, user_ids=(0, 1)) \
            .answer_batch(requests, batched=False)
        assert [p.response for p in pendings] == reference

    def test_drop_session_cancel_pending_truncates_cleanly(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0, 1))
        # No EOS: every answer runs its full 8-token budget, so user 0's
        # generation is guaranteed to still be in flight when dropped.
        requests = interleaved_requests(tok, user_ids=(0, 1), per_user=1,
                                        temperature=0.0, max_new_tokens=8,
                                        use_eos=False)
        pendings = {r.user_id: engine.begin_query(r) for r in requests}
        engine.run_decode_round()
        assert engine.drop_session(0, cancel_pending=True)
        cancelled = pendings[0]
        assert cancelled.done and cancelled.cancelled
        while not all(p.done for p in pendings.values()):
            engine.run_decode_round()
        reference = {r.user_id: response for r, response in zip(
            requests,
            build_engine(setup, user_ids=(0, 1)).answer_batch(
                requests, batched=False))}
        # The cancelled answer is a clean prefix of the full one; the
        # survivor's batch slot was untouched by the cancellation.
        assert reference[0].answer.startswith(cancelled.response.answer)
        assert pendings[1].response == reference[1]
        assert not pendings[1].cancelled
        assert engine.stats()["pending_generations"] == 0

    def test_in_flight_counter_tracks_admissions(self, setup):
        _, tok = setup
        engine = build_engine(setup, user_ids=(0,))
        request = QueryRequest(
            user_id=0, text=stream_for(0, 1)[0].input_text,
            generation=GenerationConfig(max_new_tokens=4, temperature=0.0,
                                        eos_id=tok.eos_id))
        session = engine.session(0)
        pending = engine.begin_query(request)
        assert session.generations_in_flight == (0 if pending.done else 1)
        while not pending.done:
            engine.run_decode_round()
        assert session.generations_in_flight == 0
        assert session.queries_served == 1
