"""Tests for the noise-mitigation baselines (SWV, CxDNN, CorrectNet)."""

import numpy as np
import pytest

from repro.cim import CiMMatrix, NullMitigation
from repro.mitigation import (
    CorrectNetMitigation,
    CxDNNCompensation,
    SelectiveWriteVerify,
    available_mitigations,
    make_mitigation,
)
from repro.nvm import get_device

RNG = np.random.default_rng(41)


def stored(values, mitigation, sigma=0.15, seed=0):
    return CiMMatrix(values, get_device("NVM-3"), sigma=sigma,
                     mitigation=mitigation, rng=np.random.default_rng(seed))


def read_error(matrix, reference):
    return float(np.abs(matrix.read_matrix() - reference).mean())


class TestFactory:
    def test_available(self):
        assert available_mitigations() == ["correctnet", "cxdnn", "none", "swv"]

    def test_make_each(self):
        for name in available_mitigations():
            assert make_mitigation(name).name == name

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_mitigation("magic")


class TestSelectiveWriteVerify:
    def test_reduces_read_error(self):
        w = RNG.normal(size=(32, 8)).astype(np.float32)
        raw_err = np.mean([read_error(stored(w, None, seed=s), w)
                           for s in range(4)])
        swv_err = np.mean([read_error(stored(w, SelectiveWriteVerify(),
                                             seed=s), w)
                           for s in range(4)])
        assert swv_err < raw_err

    def test_extra_write_pulses_counted(self):
        w = RNG.normal(size=(32, 8)).astype(np.float32)
        plain = stored(w, None)
        verified = stored(w, SelectiveWriteVerify())
        assert (verified.aggregate_stats().write_pulses
                > plain.aggregate_stats().write_pulses)

    def test_only_msb_slices_touched(self):
        w = RNG.normal(size=(16, 4)).astype(np.float32)
        matrix = stored(w, SelectiveWriteVerify(verify_slices=2))
        for slice_index, tile in matrix.iter_tiles_with_slice():
            if slice_index < 6:  # LSB slices: initial program pulses only
                assert tile.stats.write_pulses == 384 * 128

    def test_validation(self):
        with pytest.raises(ValueError):
            SelectiveWriteVerify(verify_slices=0)
        with pytest.raises(ValueError):
            SelectiveWriteVerify(tolerance_levels=0)
        with pytest.raises(ValueError):
            SelectiveWriteVerify(max_iterations=0)


class TestCxDNN:
    def test_gain_near_unity_for_unbiased_noise(self):
        """With purely stochastic noise there is no systematic gain error,
        so the estimated gains scatter around 1 (no Wiener-style shrink)."""
        w = RNG.normal(size=(64, 6)).astype(np.float32)
        gains = np.concatenate([
            stored(w, CxDNNCompensation(), seed=s).calibration["column_gain"]
            for s in range(4)])
        assert abs(float(gains.mean()) - 1.0) < 0.15
        assert np.all(gains > 0.4) and np.all(gains < 2.5)

    def test_does_not_destroy_signal(self):
        """Regression test: LS-fit-on-noisy-read shrinkage must not occur."""
        w = RNG.normal(size=(64, 6)).astype(np.float32)
        matrix = stored(w, CxDNNCompensation())
        restored = matrix.read_matrix()
        # Column norms preserved within noise, not shrunk by 2-3x.
        ratio = np.linalg.norm(restored, axis=0) / np.linalg.norm(w, axis=0)
        assert np.all(ratio > 0.7)

    def test_requires_calibration(self):
        mitigation = CxDNNCompensation()
        with pytest.raises(RuntimeError):
            mitigation.correct_output(
                type("M", (), {"calibration": {}})(), np.ones(3))


class TestCorrectNet:
    def test_clipping_bounds_dynamic_range(self):
        mitigation = CorrectNetMitigation(clip_sigmas=2.0)
        values = RNG.normal(size=(100, 4)).astype(np.float32)
        values[0, 0] = 50.0  # outlier
        clipped = mitigation.prepare_values(values)
        assert clipped.max() < 50.0

    def test_improves_read_error_with_outliers(self):
        w = RNG.normal(size=(48, 6)).astype(np.float32)
        w[0, 0] = 25.0  # outlier inflates the quantization scale
        raw = np.mean([read_error(stored(w, None, seed=s),
                                  np.clip(w, -30, 30)) for s in range(3)])
        corrected = np.mean([read_error(stored(w, CorrectNetMitigation(),
                                               seed=s),
                                        np.clip(w, -30, 30))
                             for s in range(3)])
        assert corrected < raw

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrectNetMitigation(clip_sigmas=0)

    def test_requires_calibration(self):
        with pytest.raises(RuntimeError):
            CorrectNetMitigation().correct_output(
                type("M", (), {"calibration": {}})(), np.ones(3))


class TestNullMitigation:
    def test_identity_everywhere(self):
        null = NullMitigation()
        values = RNG.normal(size=(4, 4))
        np.testing.assert_array_equal(null.prepare_values(values), values)
        np.testing.assert_array_equal(null.correct_output(None, values), values)
        np.testing.assert_array_equal(null.correct_read(None, values), values)
        assert null.post_program(None) is None
