"""Engine behaviour: suppressions, baseline burn-down, CLI contract."""

import json
import os
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import (
    Finding,
    load_baseline,
    run_analysis,
    save_baseline,
)
from repro.analysis.__main__ import main

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_ROOT = REPO_ROOT / "src"


def write_tree(tmp_path, files):
    root = tmp_path / "repro"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    return root


BAD_RNG = """\
    import numpy as np
    r = np.random.default_rng()
"""


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------
def test_suppression_without_reason_is_sup_001(tmp_path):
    root = write_tree(tmp_path, {"llm/bad.py": """\
        import numpy as np
        r = np.random.default_rng()  # repro: noqa[RNG-001]
    """})
    report = run_analysis(root)
    assert [f.rule for f in report.findings] == ["SUP-001"]
    # the RNG finding itself is waived, but the naked waiver fails the run
    assert len(report.suppressed) == 1
    assert not report.ok


def test_unused_suppression_is_sup_002(tmp_path):
    root = write_tree(tmp_path, {"llm/fine.py": """\
        x = 1  # repro: noqa[RNG-001] nothing here anymore
    """})
    report = run_analysis(root)
    assert [f.rule for f in report.findings] == ["SUP-002"]
    assert not report.ok


def test_suppression_inside_string_literal_is_ignored(tmp_path):
    root = write_tree(tmp_path, {"llm/docs.py": '''\
        SYNTAX = "# repro: noqa[RNG-001] not a real comment"
    '''})
    report = run_analysis(root)
    assert report.findings == []
    assert report.ok


def test_suppression_only_matches_its_rule(tmp_path):
    root = write_tree(tmp_path, {"llm/bad.py": """\
        import numpy as np
        r = np.random.default_rng()  # repro: noqa[SEC-001] wrong rule
    """})
    report = run_analysis(root)
    rules = sorted(f.rule for f in report.findings)
    assert rules == ["RNG-001", "SUP-002"]


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def test_baseline_absorbs_known_findings(tmp_path):
    root = write_tree(tmp_path, {"llm/bad.py": BAD_RNG})
    first = run_analysis(root)
    assert len(first.findings) == 1 and not first.ok
    second = run_analysis(root, baseline=first.findings)
    assert second.findings == []
    assert len(second.baselined) == 1
    assert second.ok


def test_baseline_round_trip(tmp_path):
    path = tmp_path / "baseline.json"
    findings = [Finding(file="repro/a.py", line=3, rule="RNG-001",
                        message="m", hint="h")]
    save_baseline(path, findings)
    assert load_baseline(path) == findings


def test_stale_baseline_entry_fails_the_run(tmp_path):
    root = write_tree(tmp_path, {"llm/short.py": "x = 1\n"})
    stale_file = Finding(file="repro/llm/gone.py", line=1,
                         rule="RNG-001", message="")
    stale_line = Finding(file="repro/llm/short.py", line=99,
                         rule="RNG-001", message="")
    report = run_analysis(root, baseline=[stale_file, stale_line])
    assert len(report.stale_baseline) == 2
    assert not report.ok


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_json_format_and_exit_codes(tmp_path, capsys):
    root = write_tree(tmp_path, {"llm/bad.py": BAD_RNG})
    code = main(["--root", str(root), "--format", "json",
                 "--baseline-file", str(tmp_path / "baseline.json")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["findings"][0]["rule"] == "RNG-001"


def test_cli_baseline_update_then_clean(tmp_path, capsys):
    root = write_tree(tmp_path, {"llm/bad.py": BAD_RNG})
    baseline = tmp_path / "baseline.json"
    assert main(["--root", str(root), "--baseline", "update",
                 "--baseline-file", str(baseline)]) == 0
    capsys.readouterr()
    assert main(["--root", str(root),
                 "--baseline-file", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out


def test_cli_output_file(tmp_path, capsys):
    root = write_tree(tmp_path, {"llm/fine.py": "x = 1\n"})
    out_path = tmp_path / "findings.json"
    code = main(["--root", str(root), "--output", str(out_path),
                 "--baseline-file", str(tmp_path / "baseline.json")])
    capsys.readouterr()
    assert code == 0
    assert json.loads(out_path.read_text())["ok"] is True


# ----------------------------------------------------------------------
# The shipped tree
# ----------------------------------------------------------------------
def test_shipped_tree_is_clean():
    """`python -m repro.analysis` exits 0 on the repository as shipped."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_ROOT)
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--format", "json"],
        capture_output=True, text=True, env=env, cwd=REPO_ROOT)
    assert result.returncode == 0, result.stdout + result.stderr
    payload = json.loads(result.stdout)
    assert payload["ok"] is True
    # every suppression in the tree carries a reason (SUP-001 is a
    # finding, so ok=True already implies it — assert explicitly anyway)
    assert all(entry["reason"] for entry in payload["suppressed"])


def test_reintroducing_bare_random_in_gateway_client_fails(tmp_path):
    """The PR-8 satellite bug, resurrected in a copy, must be caught."""
    copy_root = tmp_path / "repro"
    shutil.copytree(SRC_ROOT / "repro", copy_root,
                    ignore=shutil.ignore_patterns("__pycache__"))
    client = copy_root / "gateway" / "client.py"
    client.write_text(client.read_text() + textwrap.dedent("""\

        import random

        def _legacy_jitter():
            return random.random()
    """))
    report = run_analysis(copy_root)
    assert not report.ok
    hits = [f for f in report.findings
            if f.rule == "RNG-002" and f.file == "repro/gateway/client.py"]
    assert len(hits) == 2  # the import and the draw
