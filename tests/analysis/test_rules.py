"""Fixture matrix for every lint rule: true positive, true negative,
and suppressed case, each run against a tiny on-disk tree."""

import textwrap

import pytest

from repro.analysis import RULES, run_analysis


def run_tree(tmp_path, files, rule_ids=None):
    """Write ``{relpath: source}`` under ``tmp_path/repro`` and analyze it."""
    root = tmp_path / "repro"
    for rel, content in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(content))
    rules = ({rid: RULES[rid] for rid in rule_ids}
             if rule_ids is not None else None)
    return run_analysis(root, rules=rules)


def rules_of(report):
    return [f.rule for f in report.findings]


# ----------------------------------------------------------------------
# RNG-001: np.random outside utils
# ----------------------------------------------------------------------
class TestRng001:
    def test_true_positive_seedless_seeded_and_legacy(self, tmp_path):
        report = run_tree(tmp_path, {"llm/bad.py": """\
            import numpy as np
            a = np.random.default_rng()
            b = np.random.default_rng(0)
            c = np.random.normal(0.0, 1.0)
        """}, ["RNG-001"])
        assert rules_of(report) == ["RNG-001"] * 3
        assert [f.line for f in report.findings] == [2, 3, 4]

    def test_true_negative_utils_and_injected(self, tmp_path):
        report = run_tree(tmp_path, {
            # utils itself is the one place default_rng may live
            "utils/rng.py": """\
                import numpy as np
                def rng_from_seed(seed):
                    return np.random.default_rng(int(seed))
            """,
            "llm/good.py": """\
                from ..utils import rng_from_seed
                def init(rng=None):
                    rng = rng or rng_from_seed(0)
                    return rng.normal(size=3)
            """,
        }, ["RNG-001"])
        assert report.findings == []

    def test_suppressed_with_reason(self, tmp_path):
        report = run_tree(tmp_path, {"cim/ok.py": """\
            import numpy as np
            r = np.random.default_rng(0)  # repro: noqa[RNG-001] never drawn
        """}, ["RNG-001"])
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0][1] == "never drawn"


# ----------------------------------------------------------------------
# RNG-002: stdlib random / wall clock in deterministic paths
# ----------------------------------------------------------------------
class TestRng002:
    def test_true_positive_in_serve(self, tmp_path):
        report = run_tree(tmp_path, {"serve/bad.py": """\
            import random
            import time
            import datetime
            def jitter():
                return random.random() + time.time()
            def stamp():
                return datetime.datetime.now()
        """}, ["RNG-002"])
        found = rules_of(report)
        assert found == ["RNG-002"] * 4  # import, call, time.time, now
        messages = " ".join(f.message for f in report.findings)
        assert "wall clock" in messages

    def test_true_negative_outside_and_monotonic(self, tmp_path):
        report = run_tree(tmp_path, {
            # eval/ is not a deterministic path: wall clocks allowed
            "eval/ok.py": "import time\nt = time.time()\n",
            # perf_counter feeds telemetry, never token streams
            "serve/ok.py": "import time\nt = time.perf_counter()\n",
        }, ["RNG-002"])
        assert report.findings == []

    def test_suppressed_in_gateway_with_reason(self, tmp_path):
        report = run_tree(tmp_path, {"gateway/ok.py": """\
            import time
            def deadline():
                return time.time() + 1.0  # repro: noqa[RNG-002] wire deadline
        """}, ["RNG-002"])
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# LOCK-001: public mutations under self._lock
# ----------------------------------------------------------------------
class TestLock001:
    def test_true_positive_unlocked_public_mutation(self, tmp_path):
        report = run_tree(tmp_path, {"serve/bad.py": """\
            import threading
            class Engine:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.count = 0
                def bump(self):
                    self.count += 1
        """}, ["LOCK-001"])
        assert rules_of(report) == ["LOCK-001"]
        assert "bump" in report.findings[0].message

    def test_true_negative_locked_private_and_helper(self, tmp_path):
        report = run_tree(tmp_path, {"serve/good.py": """\
            import threading
            class Engine:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.count = 0
                def bump(self):
                    with self._lock:
                        self.count += 1
                def bump_via_helper(self):
                    self._bump_locked()
                def _internal(self):
                    self.count += 1  # private: caller holds the lock
                def _bump_locked(self):
                    self.count += 1
        """}, ["LOCK-001"])
        assert report.findings == []

    def test_named_classes_checked_even_without_lock(self, tmp_path):
        report = run_tree(tmp_path, {"serve/facade.py": """\
            class ShardedPromptEngine:
                def reset(self):
                    self.count = 0
        """}, ["LOCK-001"])
        assert rules_of(report) == ["LOCK-001"]

    def test_suppressed(self, tmp_path):
        report = run_tree(tmp_path, {"serve/ok.py": """\
            import threading
            class Engine:
                def __init__(self):
                    self._lock = threading.RLock()
                    self.count = 0
                def bump(self):
                    self.count += 1  # repro: noqa[LOCK-001] single-threaded
        """}, ["LOCK-001"])
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# SNAP-001: snapshot completeness
# ----------------------------------------------------------------------
class TestSnap001:
    def test_true_positive_missing_attribute(self, tmp_path):
        report = run_tree(tmp_path, {"nvm/bad.py": """\
            class Bank:
                def __init__(self):
                    self.levels = []
                    self.new_counter = 0
                def snapshot(self):
                    return {"levels": self.levels}
                def restore(self, snap):
                    self.levels = snap["levels"]
        """}, ["SNAP-001"])
        assert rules_of(report) == ["SNAP-001"]
        assert "new_counter" in report.findings[0].message

    def test_true_negative_covered_string_key_and_excluded(self, tmp_path):
        report = run_tree(tmp_path, {"nvm/good.py": """\
            class Bank:
                _SNAPSHOT_EXCLUDED = ("device",)
                def __init__(self, device):
                    self.device = device
                    self.levels = []
                    self.count = 0
                def snapshot(self):
                    return {"levels": self.levels, "count": self.count}
                def restore(self, snap):
                    for name in ("levels", "count"):
                        setattr(self, name, snap[name])
        """}, ["SNAP-001"])
        assert report.findings == []

    def test_no_snapshot_method_means_no_contract(self, tmp_path):
        report = run_tree(tmp_path, {"nvm/plain.py": """\
            class Plain:
                def __init__(self):
                    self.anything = 1
        """}, ["SNAP-001"])
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run_tree(tmp_path, {"nvm/ok.py": """\
            class Bank:
                def __init__(self):
                    self.levels = []
                    self.scratch = None  # repro: noqa[SNAP-001] rebuilt lazily
                def snapshot(self):
                    return {"levels": self.levels}
        """}, ["SNAP-001"])
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# SEC-001: no pickle / eval / exec
# ----------------------------------------------------------------------
class TestSec001:
    def test_true_positive_pickle_eval_np_load(self, tmp_path):
        report = run_tree(tmp_path, {"serve/bad.py": """\
            import pickle
            import numpy as np
            def load(blob, path):
                a = pickle.loads(blob)
                b = eval("1 + 1")
                c = np.load(path, allow_pickle=True)
                return a, b, c
        """}, ["SEC-001"])
        assert rules_of(report) == ["SEC-001"] * 4

    def test_true_negative_typed_codec(self, tmp_path):
        report = run_tree(tmp_path, {"serve/good.py": """\
            import json
            import numpy as np
            def load(blob, path):
                return json.loads(blob), np.load(path, allow_pickle=False)
        """}, ["SEC-001"])
        assert report.findings == []

    def test_suppressed(self, tmp_path):
        report = run_tree(tmp_path, {"eval/ok.py": """\
            import marshal  # repro: noqa[SEC-001] compat shim, never loads
        """}, ["SEC-001"])
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# STATS-001: stats() keys declared in the manifest
# ----------------------------------------------------------------------
MANIFEST = """\
    STATS_MANIFEST = {
        "requests": "additive",
        "cap": "capacity",
        "rate": ("ratio", "requests", "cap"),
    }
"""


class TestStats001:
    def test_true_positive_undeclared_key(self, tmp_path):
        report = run_tree(tmp_path, {
            "serve/stats_manifest.py": MANIFEST,
            "serve/engine.py": """\
                class PromptServeEngine:
                    def stats(self):
                        out = {"requests": 1}
                        out["mystery"] = 2
                        return out
            """,
        }, ["STATS-001"])
        assert rules_of(report) == ["STATS-001"]
        assert "mystery" in report.findings[0].message

    def test_true_negative_all_declared(self, tmp_path):
        report = run_tree(tmp_path, {
            "serve/stats_manifest.py": MANIFEST,
            "serve/engine.py": """\
                class ShardedPromptEngine:
                    def stats(self):
                        return {"requests": 1, "cap": None, "rate": 0.0}
            """,
        }, ["STATS-001"])
        assert report.findings == []

    def test_missing_manifest_is_a_finding(self, tmp_path):
        report = run_tree(tmp_path, {"serve/engine.py": """\
            class PromptServeEngine:
                def stats(self):
                    return {"requests": 1}
        """}, ["STATS-001"])
        assert rules_of(report) == ["STATS-001"]
        assert "missing" in report.findings[0].message

    def test_non_literal_manifest_is_a_finding(self, tmp_path):
        report = run_tree(tmp_path, {
            "serve/stats_manifest.py":
                "STATS_MANIFEST = dict(requests='additive')\n",
        }, ["STATS-001"])
        assert rules_of(report) == ["STATS-001"]

    def test_bad_ratio_reference_is_a_finding(self, tmp_path):
        report = run_tree(tmp_path, {
            "serve/stats_manifest.py": """\
                STATS_MANIFEST = {
                    "rate": ("ratio", "requests", "missing_den"),
                }
            """,
        }, ["STATS-001"])
        assert rules_of(report) == ["STATS-001"]

    def test_suppressed(self, tmp_path):
        report = run_tree(tmp_path, {
            "serve/stats_manifest.py": MANIFEST,
            "serve/engine.py": """\
                class PromptServeEngine:
                    def stats(self):
                        return {"debug": 1}  # repro: noqa[STATS-001] local
            """,
        }, ["STATS-001"])
        assert report.findings == []
        assert len(report.suppressed) == 1


# ----------------------------------------------------------------------
# Registry plumbing
# ----------------------------------------------------------------------
def test_all_shipped_rules_registered():
    assert set(RULES.names()) >= {"RNG-001", "RNG-002", "LOCK-001",
                                  "SNAP-001", "SEC-001", "STATS-001"}


def test_registry_rejects_mismatched_rule_id():
    from repro.analysis import Rule

    class Bogus(Rule):
        rule_id = "XXX-999"

    with pytest.raises(ValueError):
        RULES.register("YYY-111", Bogus)
