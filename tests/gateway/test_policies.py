"""Unit tests for the gateway's round-admission policies."""

import pytest

from repro.gateway.scheduler import (
    DeadlineFairPolicy,
    FIFOPolicy,
    QueuedQuery,
    available_policies,
    build_policy,
    register_policy,
)
from repro.gateway.scheduler import POLICIES
from repro.serve import QueryRequest


def queued(sequence, user_id=0, deadline=None):
    return QueuedQuery(
        request=QueryRequest(user_id=user_id, text=f"q{sequence}"),
        sequence=sequence, enqueued_at=0.0, deadline=deadline)


class TestFIFO:
    def test_arrival_order(self):
        queue = [queued(i, user_id=i) for i in range(5)]
        picks = FIFOPolicy().select(queue, 3, now=0.0, in_flight={})
        assert [q.sequence for q in picks] == [0, 1, 2]

    def test_more_slots_than_work(self):
        queue = [queued(0), queued(1)]
        picks = FIFOPolicy().select(queue, 8, now=0.0, in_flight={})
        assert len(picks) == 2

    def test_zero_slots(self):
        assert FIFOPolicy().select([queued(0)], 0, 0.0, {}) == []


class TestDeadlineFair:
    def test_earliest_deadline_first(self):
        queue = [queued(0, user_id=0, deadline=9.0),
                 queued(1, user_id=1, deadline=1.0),
                 queued(2, user_id=2, deadline=5.0)]
        picks = DeadlineFairPolicy().select(queue, 2, now=0.0, in_flight={})
        assert [q.sequence for q in picks] == [1, 2]

    def test_deadline_free_requests_fall_back_to_fifo(self):
        queue = [queued(0, user_id=0), queued(1, user_id=1),
                 queued(2, user_id=2, deadline=1.0)]
        picks = DeadlineFairPolicy().select(queue, 3, now=0.0, in_flight={})
        # The one with an SLO jumps the line; the rest keep arrival order.
        assert [q.sequence for q in picks] == [2, 0, 1]

    def test_fair_share_defers_the_chatty_user(self):
        # User 0 floods the queue with tight deadlines; user 1 arrives
        # later with none.  The per-user cap (2) still lets user 1 in.
        queue = [queued(0, user_id=0, deadline=1.0),
                 queued(1, user_id=0, deadline=2.0),
                 queued(2, user_id=0, deadline=3.0),
                 queued(3, user_id=1)]
        picks = DeadlineFairPolicy(fair_share=2).select(
            queue, 3, now=0.0, in_flight={})
        assert [q.sequence for q in picks] == [0, 1, 3]

    def test_in_flight_counts_toward_the_cap(self):
        queue = [queued(0, user_id=0, deadline=1.0), queued(1, user_id=1)]
        picks = DeadlineFairPolicy(fair_share=2).select(
            queue, 2, now=0.0, in_flight={0: 2})
        # User 0 already holds two decode slots: user 1 goes first.
        assert [q.sequence for q in picks] == [1, 0]

    def test_capped_entries_still_fill_idle_slots(self):
        # Only one user queued: the cap must not leave slots empty.
        queue = [queued(i, user_id=0, deadline=float(i)) for i in range(4)]
        picks = DeadlineFairPolicy(fair_share=1).select(
            queue, 4, now=0.0, in_flight={})
        assert len(picks) == 4

    def test_invalid_fair_share(self):
        with pytest.raises(ValueError):
            DeadlineFairPolicy(fair_share=0)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(available_policies()) >= {"fifo", "deadline"}

    def test_build_by_name(self):
        assert isinstance(build_policy("fifo"), FIFOPolicy)
        policy = build_policy("deadline", fair_share=3)
        assert isinstance(policy, DeadlineFairPolicy)
        assert policy.fair_share == 3

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError):
            build_policy("round-robin")

    def test_register_custom(self):
        class Reversed(FIFOPolicy):
            name = "reversed"

            def select(self, queue, slots, now, in_flight):
                return list(queue)[::-1][:slots]

        register_policy("test-reversed", Reversed)
        try:
            picks = build_policy("test-reversed").select(
                [queued(0), queued(1)], 1, 0.0, {})
            assert [q.sequence for q in picks] == [1]
        finally:
            POLICIES.unregister("test-reversed")
