"""Unit tests for the gateway client's retry/backoff machinery."""

import random

import pytest

from repro.gateway import DeadlineExceeded, GatewayError, RetryPolicy


class TestRetryPolicy:
    def test_exponential_growth(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(a, None, rng) for a in range(4)]
        assert delays == [pytest.approx(0.1), pytest.approx(0.2),
                          pytest.approx(0.4), pytest.approx(0.8)]

    def test_backoff_cap(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=2.0,
                             jitter=0.0)
        assert policy.delay(10, None, random.Random(0)) == pytest.approx(2.0)

    def test_retry_after_is_a_floor(self):
        policy = RetryPolicy(backoff_base_s=0.05, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(0, 1.5, rng) == pytest.approx(1.5)
        # ... but a larger computed backoff wins over a small hint.
        policy = RetryPolicy(backoff_base_s=4.0, backoff_cap_s=8.0,
                             jitter=0.0)
        assert policy.delay(0, 1.5, rng) == pytest.approx(4.0)

    def test_jitter_bounds(self):
        policy = RetryPolicy(backoff_base_s=1.0, backoff_cap_s=1.0,
                             jitter=0.5)
        rng = random.Random(7)
        for attempt in range(20):
            delay = policy.delay(0, None, rng)
            assert 1.0 <= delay <= 1.5

    def test_default_retry_statuses_are_backpressure(self):
        assert RetryPolicy().retry_statuses == (429, 503)


class TestErrorTypes:
    def test_gateway_error_carries_payload(self):
        error = GatewayError(400, {"error": "bad", "status": 400,
                                   "field": "user_id"})
        assert error.status == 400
        assert error.field == "user_id"
        assert "bad" in str(error)

    def test_gateway_error_without_payload(self):
        error = GatewayError(503)
        assert error.field is None
        assert "503" in str(error)

    def test_deadline_exceeded_partial_answer(self):
        error = DeadlineExceeded({"error": "deadline exceeded",
                                  "status": 504,
                                  "partial_answer": "the answer so f"})
        assert error.status == 504
        assert error.partial_answer == "the answer so f"
        assert isinstance(error, GatewayError)
