"""Unit tests for the minimal HTTP/1.1 wire layer.

The server and the client share this parser, so the contract under test
is the round-trip: whatever ``render_request``/``render_response`` emit,
``read_request``/``read_response`` must parse back exactly — and every
malformed input must surface as an :class:`HTTPError` with the right
status, never a raw exception.
"""

import asyncio

import pytest

from repro.gateway.http import (
    MAX_BODY_BYTES,
    HTTPError,
    HTTPRequest,
    read_request,
    read_response,
    render_request,
    render_response,
)


def run_parser(parser, data: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await parser(reader)
    return asyncio.run(go())


def parse_request(data: bytes):
    return run_parser(read_request, data)


def parse_response(data: bytes):
    return run_parser(read_response, data)


class TestRequestRoundTrip:
    def test_json_body(self):
        wire = render_request("post", "/v1/query",
                              {"user_id": 3, "text": "hello"})
        request = parse_request(wire)
        assert request.method == "POST"
        assert request.path == "/v1/query"
        assert request.json() == {"user_id": 3, "text": "hello"}
        assert request.keep_alive

    def test_bodyless_get(self):
        request = parse_request(render_request("GET", "/healthz"))
        assert request.method == "GET"
        assert request.body == b""

    def test_connection_close(self):
        wire = render_request("GET", "/healthz", keep_alive=False)
        assert not parse_request(wire).keep_alive

    def test_query_string_split(self):
        request = parse_request(render_request("GET", "/v1/stats?full=1"))
        assert request.path == "/v1/stats"
        assert request.query == "full=1"

    def test_eof_between_requests_is_none(self):
        assert parse_request(b"") is None


class TestMalformedRequests:
    def test_bad_request_line(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"NONSENSE\r\n\r\n")
        assert info.value.status == 400

    def test_bad_protocol(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"GET / SPDY/9\r\n\r\n")
        assert info.value.status == 400

    def test_bad_header_line(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")
        assert info.value.status == 400

    def test_bad_content_length(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"GET / HTTP/1.1\r\nContent-Length: two\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_body_is_413(self):
        wire = (f"POST / HTTP/1.1\r\nContent-Length: "
                f"{MAX_BODY_BYTES + 1}\r\n\r\n").encode()
        with pytest.raises(HTTPError) as info:
            parse_request(wire)
        assert info.value.status == 413

    def test_truncated_body(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nab")
        assert info.value.status == 400

    def test_truncated_head(self):
        with pytest.raises(HTTPError) as info:
            parse_request(b"GET / HTT")
        assert info.value.status == 400


class TestJSONBody:
    def test_missing_body_is_400(self):
        request = HTTPRequest(method="POST", path="/v1/query")
        with pytest.raises(HTTPError) as info:
            request.json()
        assert info.value.status == 400
        assert info.value.field == "body"

    def test_malformed_json_is_400(self):
        request = HTTPRequest(method="POST", path="/", body=b"{nope")
        with pytest.raises(HTTPError) as info:
            request.json()
        assert info.value.status == 400

    def test_non_object_json_is_400(self):
        request = HTTPRequest(method="POST", path="/", body=b"[1, 2]")
        with pytest.raises(HTTPError):
            request.json()


class TestResponseRoundTrip:
    def test_json_payload(self):
        wire = render_response(200, {"answer": "ok"})
        response = parse_response(wire)
        assert response.status == 200
        assert response.json() == {"answer": "ok"}
        assert response.keep_alive

    def test_retry_after_header(self):
        wire = render_response(429, {"error": "full"},
                               extra_headers={"Retry-After": "1.50"})
        response = parse_response(wire)
        assert response.status == 429
        assert response.retry_after == pytest.approx(1.5)

    def test_no_retry_after(self):
        assert parse_response(render_response(200, {})).retry_after is None

    def test_close_flag(self):
        wire = render_response(400, {"error": "x"}, keep_alive=False)
        assert not parse_response(wire).keep_alive

    def test_error_body_contract(self):
        error = HTTPError(400, "bad field", field="user_id")
        body = error.body()
        assert body == {"error": "bad field", "status": 400,
                        "field": "user_id"}
