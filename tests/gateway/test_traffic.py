"""Unit tests for the trace-driven traffic generator.

Determinism is the load generator's core promise — the same config must
produce the identical trace so benchmark runs are comparable — together
with the statistical shape: Zipf-skewed users and arrivals confined to
the configured window for both processes.
"""

import dataclasses

import numpy as np
import pytest

from repro.gateway import TraceConfig, build_trace, zipf_weights
from repro.gateway.traffic import RequestRecord, TraceReport


class TestZipfWeights:
    def test_normalized_and_decreasing(self):
        weights = zipf_weights(100, alpha=1.1)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(np.diff(weights) < 0)

    def test_higher_alpha_concentrates_mass(self):
        flat = zipf_weights(100, alpha=0.5)
        skewed = zipf_weights(100, alpha=2.0)
        assert skewed[0] > flat[0]


class TestBuildTrace:
    def test_deterministic_under_seed(self):
        config = TraceConfig(n_users=50, rate_rps=100.0, duration_s=2.0,
                             seed=3)
        assert build_trace(config, ["a", "b"]) == \
            build_trace(config, ["a", "b"])

    def test_seed_changes_the_trace(self):
        base = TraceConfig(n_users=50, rate_rps=100.0, duration_s=2.0)
        one = build_trace(dataclasses.replace(base, seed=1), ["a"])
        two = build_trace(dataclasses.replace(base, seed=2), ["a"])
        assert one != two

    @pytest.mark.parametrize("arrival", ["poisson", "bursty"])
    def test_arrivals_sorted_within_window(self, arrival):
        config = TraceConfig(n_users=20, rate_rps=200.0, duration_s=1.0,
                             arrival=arrival, seed=0)
        trace = build_trace(config, ["q"])
        times = [event.at_s for event in trace]
        assert len(trace) > 50          # ~200 expected
        assert times == sorted(times)
        assert all(0.0 <= t < config.duration_s for t in times)

    def test_users_within_population(self):
        config = TraceConfig(n_users=8, rate_rps=300.0, duration_s=1.0)
        trace = build_trace(config, ["q"])
        assert all(0 <= event.user_id < 8 for event in trace)
        # Zipf skew: the most popular user dominates uniform share.
        top_user_share = np.mean([e.user_id == 0 for e in trace])
        assert top_user_share > 1.5 / 8

    def test_callable_text_source_sees_per_user_counter(self):
        seen = []

        def text_for(user_id, k):
            seen.append((user_id, k))
            return f"u{user_id}-q{k}"

        config = TraceConfig(n_users=3, rate_rps=100.0, duration_s=1.0)
        trace = build_trace(config, text_for)
        counters = {}
        for user_id, k in seen:
            assert k == counters.get(user_id, 0)
            counters[user_id] = k + 1
        assert [e.text for e in trace] == [f"u{u}-q{k}" for u, k in seen]

    def test_deadline_attached_to_every_event(self):
        config = TraceConfig(n_users=3, rate_rps=50.0, duration_s=1.0,
                             deadline_ms=250.0)
        assert all(e.deadline_ms == 250.0
                   for e in build_trace(config, ["q"]))

    @pytest.mark.parametrize("overrides", [
        {"n_users": 0},
        {"rate_rps": 0.0},
        {"duration_s": -1.0},
        {"arrival": "lognormal"},
        {"burst_fraction": 1.0},
    ])
    def test_config_validation(self, overrides):
        with pytest.raises(ValueError):
            TraceConfig(**overrides)


class TestTraceReport:
    def record(self, status, latency_s=0.1):
        return RequestRecord(user_id=0, scheduled_at_s=0.0,
                             latency_s=latency_s, status=status)

    def test_outcome_partition(self):
        report = TraceReport(records=[
            self.record(200), self.record(200), self.record(429),
            self.record(504), self.record(0)], wall_s=2.0)
        assert report.n_requests == 5
        assert report.completed == 2
        assert report.rejected == 1
        assert report.deadline_misses == 1
        assert report.transport_errors == 1
        assert report.throughput_rps() == pytest.approx(1.0)

    def test_percentiles_over_completed_only(self):
        report = TraceReport(records=[
            self.record(200, 0.1), self.record(200, 0.2),
            self.record(429, 99.0)], wall_s=1.0)
        assert report.p99_s() < 1.0     # the 429 is excluded

    def test_summary_keys(self):
        report = TraceReport(records=[self.record(200)], wall_s=1.0)
        summary = report.summary()
        assert set(summary) == {
            "requests", "completed", "rejected_429",
            "deadline_misses_504", "transport_errors", "latency_p50_ms",
            "latency_p99_ms", "throughput_rps", "wall_s"}

    def test_empty_report(self):
        report = TraceReport()
        assert report.p50_s() == 0.0
        assert report.throughput_rps() == 0.0
