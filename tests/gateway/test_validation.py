"""Unit tests for typed request validation.

Contract: every malformed payload raises :class:`ValidationError` whose
``field`` names exactly the offending field (the structured-400 wire
shape), and well-formed payloads parse into the same request objects a
direct caller would construct.
"""

import pytest

from repro.gateway.validation import (
    ValidationError,
    generation_to_dict,
    parse_query_request,
    parse_tune_request,
)
from repro.llm import GenerationConfig


def query_payload(**overrides):
    payload = {"user_id": 7, "text": "what genre is this?"}
    payload.update(overrides)
    return payload


def tune_payload(**overrides):
    payload = {"user_id": 7, "samples": [
        {"input_text": "a movie", "target_text": "sci-fi"},
        {"input_text": "b movie", "target_text": "horror"},
    ]}
    payload.update(overrides)
    return payload


class TestQueryParsing:
    def test_minimal(self):
        request = parse_query_request(query_payload())
        assert request.user_id == 7
        assert request.text == "what genre is this?"
        assert request.generation is None
        assert request.request_id == ""

    def test_full_generation(self):
        request = parse_query_request(query_payload(
            generation={"max_new_tokens": 4, "temperature": 0.5,
                        "seed": 9, "eos_id": 2},
            request_id="r-1"))
        assert request.generation == GenerationConfig(
            max_new_tokens=4, temperature=0.5, seed=9, eos_id=2)
        assert request.request_id == "r-1"

    def test_generation_round_trips_through_wire_form(self):
        config = GenerationConfig(max_new_tokens=6, temperature=0.25,
                                  seed=11, eos_id=3)
        parsed = parse_query_request(
            query_payload(generation=generation_to_dict(config)))
        assert parsed.generation == config

    @pytest.mark.parametrize("payload, field", [
        ({"text": "hi"}, "user_id"),
        ({"user_id": 1}, "text"),
        (query_payload(user_id="seven"), "user_id"),
        (query_payload(user_id=True), "user_id"),
        (query_payload(text=123), "text"),
        (query_payload(text=""), "text"),
        (query_payload(request_id=5), "request_id"),
        (query_payload(generation=[1]), "generation"),
        (query_payload(generation={"beam_width": 4}),
         "generation.beam_width"),
        (query_payload(generation={"max_new_tokens": "many"}),
         "generation.max_new_tokens"),
        (query_payload(generation={"temperature": float("nan")}),
         "generation.temperature"),
        (query_payload(generation={"seed": 1.5}), "generation.seed"),
    ])
    def test_malformed_names_the_field(self, payload, field):
        with pytest.raises(ValidationError) as info:
            parse_query_request(payload)
        assert info.value.status == 400
        assert info.value.field == field


class TestTuneParsing:
    def test_minimal(self):
        request = parse_tune_request(tune_payload())
        assert request.user_id == 7
        assert len(request.samples) == 2
        assert request.samples[0].input_text == "a movie"
        assert request.samples[0].target_text == "sci-fi"
        assert request.samples[0].user_id == 7

    def test_task_and_domain_default(self):
        request = parse_tune_request(tune_payload())
        assert request.samples[0].task == "http"
        assert request.samples[0].domain == "http"

    def test_explicit_task_and_domain(self):
        request = parse_tune_request(tune_payload(samples=[
            {"input_text": "x", "target_text": "y",
             "task": "LaMP-2", "domain": "movies"}]))
        assert request.samples[0].task == "LaMP-2"
        assert request.samples[0].domain == "movies"

    @pytest.mark.parametrize("payload, field", [
        ({"samples": []}, "user_id"),
        ({"user_id": 1}, "samples"),
        (tune_payload(samples=[]), "samples"),
        (tune_payload(samples="lots"), "samples"),
        (tune_payload(samples=["not a dict"]), "samples[0]"),
        (tune_payload(samples=[{"target_text": "y"}]),
         "samples[0].input_text"),
        (tune_payload(samples=[{"input_text": "x", "target_text": "y"},
                               {"input_text": "x"}]),
         "samples[1].target_text"),
        (tune_payload(samples=[{"input_text": 3, "target_text": "y"}]),
         "samples[0].input_text"),
    ])
    def test_malformed_names_the_field(self, payload, field):
        with pytest.raises(ValidationError) as info:
            parse_tune_request(payload)
        assert info.value.status == 400
        assert info.value.field == field

    def test_empty_target_text_allowed(self):
        request = parse_tune_request(tune_payload(samples=[
            {"input_text": "x", "target_text": ""}]))
        assert request.samples[0].target_text == ""
