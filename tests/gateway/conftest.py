"""Shared fixtures for the gateway test package.

One pretrained model, one tuned engine, and one running gateway are
shared package-wide: every end-to-end test exercises the same live
server the way concurrent clients would, which is exactly the regime the
gateway exists for.
"""

import pytest

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.gateway import GatewayClient, GatewayConfig, PromptGateway
from repro.llm import PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, TuneRequest


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


@pytest.fixture(scope="package")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


@pytest.fixture(scope="package")
def engine(setup):
    model, tok = setup
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                               max_sessions=4)
    for user_id in (0, 1):
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    return engine


@pytest.fixture(scope="package")
def gateway(engine):
    with PromptGateway(engine, GatewayConfig(port=0, max_batch=4)) as gw:
        yield gw


@pytest.fixture(scope="package")
def client(gateway):
    host, port = gateway.address
    with GatewayClient(host, port) as client:
        yield client
