"""End-to-end tests: live gateway, real sockets, real decode rounds.

The headline contract is byte-identity: a query answered over HTTP must
equal — every field, including simulated latency/energy — the response a
direct ``engine.query`` call returns.  Around that: structured
validation failures, admission control (429 + Retry-After), deadline
misses (504 with the partial answer), client-disconnect cancellation,
and trace replay against the running server.
"""

import threading
import time

import pytest

from repro.gateway import (
    DeadlineExceeded,
    GatewayClient,
    GatewayConfig,
    GatewayError,
    PromptGateway,
    RetryPolicy,
    TraceConfig,
    build_trace,
    replay,
)
from repro.llm import GenerationConfig
from repro.serve import QueryRequest

from .conftest import stream_for


def fast_generation(tok, n=6):
    return GenerationConfig(max_new_tokens=n, temperature=0.1, seed=3,
                            eos_id=tok.eos_id)


def wait_until(predicate, timeout_s=10.0, interval_s=0.01):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestRoundTrips:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0.0

    def test_query_byte_identical_to_direct_engine_call(
            self, engine, client, setup):
        _, tok = setup
        generation = fast_generation(tok)
        for user_id in (0, 1):
            for i, sample in enumerate(stream_for(user_id, 2, seed=42)):
                request = QueryRequest(
                    user_id=user_id, text=sample.input_text,
                    generation=generation, request_id=f"u{user_id}-q{i}")
                over_http = client.query(
                    user_id, sample.input_text, generation=generation,
                    request_id=f"u{user_id}-q{i}")
                direct = engine.query(request)
                assert over_http == direct   # every field, exactly

    def test_tune_then_query_round_trip(self, engine, client, setup):
        _, tok = setup
        samples = list(stream_for(2, 10, seed=2))
        tuned = client.tune(2, samples, request_id="t-2")
        assert tuned.user_id == 2
        assert tuned.accepted == 10
        assert tuned.epochs_fired >= 1
        assert tuned.library_size >= 1
        assert tuned.request_id == "t-2"
        response = client.query(2, samples[0].input_text,
                                generation=fast_generation(tok))
        assert response.user_id == 2
        assert response.answer
        assert response.n_ovts == tuned.library_size

    def test_tune_accepts_plain_dict_samples(self, client):
        # Enough samples to cross an epoch boundary is not required for
        # acceptance; the engine just absorbs them.
        tuned = client.tune(0, [{"input_text": "a movie about mars",
                                 "target_text": "sci-fi"}])
        assert tuned.accepted == 1


class TestErrorPaths:
    def test_validation_error_names_the_field(self, client):
        with pytest.raises(GatewayError) as info:
            client.query("not-an-int", "hello")
        assert info.value.status == 400
        assert info.value.field == "user_id"

    def test_unknown_generation_key(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("POST", "/v1/query",
                            {"user_id": 0, "text": "hi",
                             "generation": {"beam_width": 4}})
        assert info.value.status == 400
        assert info.value.field == "generation.beam_width"

    def test_unknown_user_is_404(self, client):
        with pytest.raises(GatewayError) as info:
            client.query(999, "hello?")
        assert info.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("GET", "/v2/everything")
        assert info.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("PUT", "/v1/query", {"user_id": 0, "text": "x"})
        assert info.value.status == 405

    def test_counters_track_failures(self, gateway, client):
        before = gateway.validation_failures
        with pytest.raises(GatewayError):
            client.query(0, "")
        assert gateway.validation_failures == before + 1


class TestStats:
    def test_two_layer_stats(self, client, setup, gateway):
        _, tok = setup
        client.query(0, "warm the counters",
                     generation=fast_generation(tok, n=2))
        stats = client.stats()
        gw = stats["gateway"]
        assert gw["policy"] == "fifo"
        assert gw["max_queue"] == gateway.config.max_queue
        assert gw["accepted"] >= 1
        assert gw["completed"] >= 1
        assert gw["queue_depth"] >= 0
        engine_stats = stats["engine"]
        assert engine_stats["admitted"] >= 1
        assert engine_stats["latency_ms"]["count"] >= 1
        assert engine_stats["latency_ms"]["p50_ms"] <= \
            engine_stats["latency_ms"]["p99_ms"]


class TestDeadlines:
    def test_impossible_deadline_is_504_with_partial_answer(
            self, client, setup):
        _, tok = setup
        with pytest.raises(DeadlineExceeded) as info:
            client.query(0, "no time for this",
                         generation=fast_generation(tok),
                         deadline_ms=0.01)
        assert info.value.status == 504
        assert isinstance(info.value.partial_answer, str)
        assert info.value.payload["finish_reason"] == "deadline"

    def test_deadline_must_be_positive(self, client):
        with pytest.raises(GatewayError) as info:
            client._request("POST", "/v1/query",
                            {"user_id": 0, "text": "x", "deadline_ms": -5})
        assert info.value.status == 400
        assert info.value.field == "deadline_ms"

    def test_generous_deadline_completes_normally(self, client, setup):
        _, tok = setup
        response = client.query(0, "plenty of time",
                                generation=fast_generation(tok, n=2),
                                deadline_ms=60_000)
        assert response.answer is not None


class TestCancellation:
    def test_disconnect_mid_query_frees_the_slot(self, gateway, client,
                                                 setup):
        import socket

        from repro.gateway.http import render_request

        _, tok = setup
        before = gateway.disconnects
        host, port = gateway.address
        raw = socket.create_connection((host, port))
        raw.sendall(render_request(
            "POST", "/v1/query",
            {"user_id": 0, "text": "a long question to abandon",
             "generation": {"max_new_tokens": 64, "temperature": 0.0}}))
        raw.close()   # vanish while the answer decodes
        assert wait_until(lambda: gateway.disconnects == before + 1)
        # The engine keeps serving everyone else.
        response = client.query(1, "still here",
                                generation=fast_generation(tok, n=2))
        assert response.user_id == 1


class TestBackpressure:
    def test_queue_full_answers_429_with_retry_after(self, engine):
        gateway = PromptGateway(engine, GatewayConfig(
            port=0, max_queue=1, max_batch=2))
        gateway._tick = lambda: False   # stall the worker: nothing admits
        gateway.start()
        try:
            host, port = gateway.address
            with GatewayClient(host, port,
                               retry=RetryPolicy(max_attempts=1)) as client:
                outcome = {}

                def park():
                    try:
                        outcome["response"] = client.query(0, "first in line")
                    except Exception as error:
                        outcome["error"] = error

                waiter = threading.Thread(target=park)
                waiter.start()
                assert wait_until(lambda: gateway.accepted == 1)
                # The queue (depth 1) is now full: next request bounces.
                status, decoded, retry_after = client._once(
                    "POST", "/v1/query", {"user_id": 0, "text": "overflow"})
                assert status == 429
                assert decoded["status"] == 429
                assert retry_after is not None and retry_after > 0
                assert gateway.rejected == 1
                # Un-stall the worker: the parked request completes.
                del gateway.__dict__["_tick"]
                gateway._work.set()
                waiter.join(timeout=30)
                assert not waiter.is_alive()
                assert "response" in outcome, outcome.get("error")
                assert outcome["response"].user_id == 0
        finally:
            gateway.stop()

    def test_client_retries_429_until_admitted(self, engine):
        # A stalled gateway that un-stalls after the first rejection:
        # the client's backoff loop should land the request on attempt 2+.
        gateway = PromptGateway(engine, GatewayConfig(
            port=0, max_queue=1, max_batch=2, retry_after_s=0.05))
        gateway._tick = lambda: False
        gateway.start()
        try:
            host, port = gateway.address
            with GatewayClient(host, port) as blocker, \
                    GatewayClient(host, port) as retrier:
                outcome = {}
                waiter = threading.Thread(
                    target=lambda: outcome.update(
                        first=blocker.query(0, "hold the only seat")))
                waiter.start()
                assert wait_until(lambda: gateway.accepted == 1)

                release = threading.Timer(
                    0.3, lambda: (gateway.__dict__.pop("_tick", None),
                                  gateway._work.set()))
                release.start()
                response = retrier.query(0, "keep knocking")
                assert response.user_id == 0
                assert retrier.retries >= 1
                waiter.join(timeout=30)
                assert "first" in outcome
        finally:
            gateway.stop()


class TestPolicies:
    def test_deadline_policy_serves_end_to_end(self, engine, setup):
        _, tok = setup
        config = GatewayConfig(port=0, max_batch=2, policy="deadline",
                               fair_share=1)
        with PromptGateway(engine, config) as gateway:
            host, port = gateway.address
            with GatewayClient(host, port) as client:
                response = client.query(
                    0, "served under EDF",
                    generation=fast_generation(tok, n=2),
                    deadline_ms=60_000)
                assert response.user_id == 0
                assert client.stats()["gateway"]["policy"] == "deadline"


class TestTraceReplay:
    def test_poisson_replay_completes_against_live_gateway(
            self, client, setup):
        _, tok = setup
        generation = GenerationConfig(max_new_tokens=3, temperature=0.0,
                                      eos_id=tok.eos_id)
        texts = [s.input_text for s in stream_for(0, 4, seed=9)]
        config = TraceConfig(n_users=2, rate_rps=40.0, duration_s=0.5,
                             seed=5)
        trace = build_trace(config, texts)
        report = replay(client, trace, generation=generation,
                        max_workers=4)
        assert report.n_requests == len(trace) > 0
        assert report.completed == report.n_requests
        assert report.transport_errors == 0
        assert report.p99_s() >= report.p50_s() > 0.0
        summary = report.summary()
        assert summary["completed"] == report.completed
