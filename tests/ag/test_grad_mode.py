"""Grad-mode state: no_grad() must be per-thread, not process-global.

The serving engine decodes under no_grad() while training may run with
gradients on another thread; a module-global flag would silently strip
gradients from the training thread.
"""

import threading

import numpy as np

from repro.ag import Tensor, is_grad_enabled, no_grad


class TestThreadLocalGradMode:
    def test_default_enabled(self):
        assert is_grad_enabled()

    def test_no_grad_restores_on_exit(self):
        with no_grad():
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_nested_no_grad(self):
        with no_grad():
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_other_threads_keep_gradients(self):
        """A thread training with gradients is unaffected by no_grad()
        entered on the main thread."""
        entered = threading.Event()
        release = threading.Event()
        results = {}

        def train_thread():
            entered.wait(timeout=5)
            results["enabled"] = is_grad_enabled()
            x = Tensor(np.ones(3), requires_grad=True)
            y = (x * 2.0).sum()
            results["requires_grad"] = y.requires_grad
            y.backward()
            results["grad"] = x.grad.copy()
            release.set()

        worker = threading.Thread(target=train_thread)
        worker.start()
        with no_grad():
            entered.set()
            assert release.wait(timeout=5)
            assert not is_grad_enabled()      # main thread still inference
        worker.join(timeout=5)
        assert results["enabled"]
        assert results["requires_grad"]
        np.testing.assert_allclose(results["grad"], 2.0)

    def test_main_no_grad_invisible_to_worker_tensor(self):
        """Tensors built on a worker thread record graphs even while the
        main thread sits inside no_grad()."""
        built = {}

        def build():
            t = Tensor(np.ones(2), requires_grad=True)
            built["requires_grad"] = (t * 3.0).requires_grad

        with no_grad():
            worker = threading.Thread(target=build)
            worker.start()
            worker.join(timeout=5)
        assert built["requires_grad"]
