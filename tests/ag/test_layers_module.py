"""Tests for Module containers and the standard layers."""

import numpy as np
import pytest

from repro.ag import (
    Dropout, Embedding, LayerNorm, Linear, Module, Parameter, Sequential, Tensor,
)
from tests.ag.gradcheck import check_gradient

RNG = np.random.default_rng(13)


class _Net(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = Linear(8, 2, rng=np.random.default_rng(1))
        self.blocks = [LayerNorm(8), LayerNorm(8)]

    def forward(self, x):
        return self.fc2(self.blocks[0](self.fc1(x)))


class TestModule:
    def test_named_parameters_discovers_nested_and_lists(self):
        names = {name for name, _ in _Net().named_parameters()}
        assert "fc1.weight" in names
        assert "fc2.bias" in names
        assert "blocks.0.weight" in names
        assert "blocks.1.bias" in names

    def test_num_parameters(self):
        net = _Net()
        expected = 4 * 8 + 8 + 8 * 2 + 2 + 4 * 8
        assert net.num_parameters() == expected

    def test_state_dict_roundtrip(self):
        net, other = _Net(), _Net()
        other.fc1.weight.data += 1.0
        other.load_state_dict(net.state_dict())
        np.testing.assert_allclose(other.fc1.weight.data, net.fc1.weight.data)

    def test_load_state_dict_rejects_missing_keys(self):
        net = _Net()
        state = net.state_dict()
        state.pop("fc1.weight")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_rejects_bad_shape(self):
        net = _Net()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((2, 2))
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_train_eval_propagates(self):
        net = _Net()
        net.eval()
        assert not net.blocks[1].training
        net.train()
        assert net.blocks[1].training

    def test_zero_grad(self):
        net = _Net()
        out = net(Tensor(RNG.normal(size=(3, 4))))
        out.sum().backward()
        assert net.fc1.weight.grad is not None
        net.zero_grad()
        assert net.fc1.weight.grad is None

    def test_parameter_trainable_by_default(self):
        assert Parameter(np.zeros(3)).requires_grad


class TestLinear:
    def test_forward_shape(self):
        layer = Linear(5, 3)
        assert layer(Tensor(RNG.normal(size=(2, 5)))).shape == (2, 3)

    def test_matches_manual_affine(self):
        layer = Linear(4, 2, rng=np.random.default_rng(3))
        x = RNG.normal(size=(3, 4)).astype(np.float32)
        expected = x @ layer.weight.data + layer.bias.data
        np.testing.assert_allclose(layer(Tensor(x)).data, expected, rtol=1e-5)

    def test_no_bias(self):
        layer = Linear(4, 2, bias=False)
        assert layer.bias is None
        assert layer(Tensor(np.zeros((1, 4)))).data.sum() == 0.0

    def test_input_gradient(self):
        layer = Linear(4, 3, rng=np.random.default_rng(5))
        check_gradient(layer, RNG.normal(size=(2, 4)))


class TestEmbedding:
    def test_lookup_values(self):
        emb = Embedding(10, 4, rng=np.random.default_rng(2))
        idx = np.array([[1, 3], [3, 9]])
        out = emb(idx)
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 1], emb.weight.data[3])

    def test_gradient_scatter_adds_duplicates(self):
        emb = Embedding(5, 2)
        out = emb(np.array([1, 1, 4]))
        out.sum().backward()
        np.testing.assert_allclose(emb.weight.grad[1], [2.0, 2.0])
        np.testing.assert_allclose(emb.weight.grad[4], [1.0, 1.0])
        np.testing.assert_allclose(emb.weight.grad[0], [0.0, 0.0])

    def test_out_of_range_raises(self):
        emb = Embedding(5, 2)
        with pytest.raises(IndexError):
            emb(np.array([5]))
        with pytest.raises(IndexError):
            emb(np.array([-1]))


class TestLayerNorm:
    def test_output_statistics(self):
        ln = LayerNorm(16)
        out = ln(Tensor(RNG.normal(2.0, 3.0, size=(4, 16)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-2)

    def test_gradient(self):
        ln = LayerNorm(6)
        check_gradient(ln, RNG.normal(size=(3, 6)))

    def test_affine_params_used(self):
        ln = LayerNorm(4)
        ln.weight.data[:] = 2.0
        ln.bias.data[:] = 1.0
        out = ln(Tensor(RNG.normal(size=(2, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(2), atol=1e-4)


class TestDropout:
    def test_identity_in_eval(self):
        drop = Dropout(0.5)
        drop.eval()
        x = Tensor(RNG.normal(size=(10,)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_identity_with_p_zero(self):
        drop = Dropout(0.0)
        x = Tensor(RNG.normal(size=(10,)))
        np.testing.assert_allclose(drop(x).data, x.data)

    def test_scales_kept_values(self):
        drop = Dropout(0.5, rng=np.random.default_rng(0))
        out = drop(Tensor(np.ones(1000))).data
        kept = out[out != 0.0]
        np.testing.assert_allclose(kept, np.full(kept.shape, 2.0))
        assert 300 < kept.size < 700

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestSequential:
    def test_applies_in_order(self):
        seq = Sequential(Linear(4, 8, rng=np.random.default_rng(0)),
                         LayerNorm(8),
                         Linear(8, 2, rng=np.random.default_rng(1)))
        assert seq(Tensor(RNG.normal(size=(3, 4)))).shape == (3, 2)

    def test_parameters_discovered(self):
        seq = Sequential(Linear(2, 2), Linear(2, 2))
        assert len(seq.parameters()) == 4
