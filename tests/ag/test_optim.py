"""Tests for optimizers, schedulers and gradient clipping."""

import numpy as np
import pytest

from repro.ag import Adam, LinearWarmupDecay, Parameter, SGD, Tensor, clip_grad_norm


def _quadratic_loss(param: Parameter) -> Tensor:
    target = Tensor(np.array([3.0, -2.0, 0.5]))
    diff = param - target
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        opt = SGD([param], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0, 0.5], atol=1e-3)

    def test_momentum_accelerates(self):
        def loss_after(momentum, steps=20):
            param = Parameter(np.zeros(3))
            opt = SGD([param], lr=0.02, momentum=momentum)
            for _ in range(steps):
                opt.zero_grad()
                loss = _quadratic_loss(param)
                loss.backward()
                opt.step()
            return float(_quadratic_loss(param).data)

        assert loss_after(0.9) < loss_after(0.0)

    def test_requires_trainable_params(self):
        with pytest.raises(ValueError):
            SGD([Tensor([1.0])], lr=0.1)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.zeros(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(3))
        opt = Adam([param], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            _quadratic_loss(param).backward()
            opt.step()
        np.testing.assert_allclose(param.data, [3.0, -2.0, 0.5], atol=1e-2)

    def test_skips_params_without_grad(self):
        a, b = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = Adam([a, b], lr=0.1)
        (a.sum() * 2.0).backward()
        opt.step()
        np.testing.assert_allclose(b.data, np.ones(2))
        assert not np.allclose(a.data, np.ones(2))

    def test_weight_decay_shrinks_params(self):
        param = Parameter(np.full(3, 10.0))
        opt = Adam([param], lr=0.0001, weight_decay=1.0)
        param.grad = np.zeros(3)
        before = param.data.copy()
        opt.step()
        assert np.all(np.abs(param.data) < np.abs(before))


class TestScheduler:
    def test_warmup_then_decay(self):
        param = Parameter(np.zeros(1))
        opt = Adam([param], lr=1.0)
        sched = LinearWarmupDecay(opt, warmup_steps=10, total_steps=100)
        lrs = []
        for _ in range(100):
            lrs.append(opt.lr)      # lr this optimizer step runs at
            sched.step()
        assert abs(lrs[0] - 0.1) < 1e-9           # warmup from the first step
        assert lrs[4] < lrs[9]                    # warming up
        assert abs(lrs[9] - 1.0) < 1e-9           # peak at end of warmup
        assert lrs[50] > lrs[98]                  # decaying
        assert abs(lrs[99]) < 1e-9                # decayed to 0 at the end

    def test_first_step_not_skipped(self):
        """The factor applies at construction: the usual optimizer.step()
        -> scheduler.step() loop must not run step 1 at full base lr."""
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        LinearWarmupDecay(opt, warmup_steps=4, total_steps=10)
        assert abs(opt.lr - 0.25) < 1e-9

    def test_full_trajectory_warmup2_total6(self):
        """Exact lr for every optimizer step of a warmup=2, total=6 run."""
        base_lr = 0.8
        opt = Adam([Parameter(np.zeros(1))], lr=base_lr)
        sched = LinearWarmupDecay(opt, warmup_steps=2, total_steps=6)
        seen = []
        for _ in range(6):
            seen.append(opt.lr)
            sched.step()
        expected = [base_lr * f for f in (0.5, 1.0, 0.75, 0.5, 0.25, 0.0)]
        np.testing.assert_allclose(seen, expected, rtol=1e-12)

    def test_no_warmup(self):
        opt = Adam([Parameter(np.zeros(1))], lr=2.0)
        sched = LinearWarmupDecay(opt, warmup_steps=0, total_steps=4)
        assert opt.lr == 2.0      # no warmup: first step at full base lr
        sched.step()
        assert opt.lr < 2.0

    def test_invalid_configuration(self):
        opt = Adam([Parameter(np.zeros(1))], lr=1.0)
        with pytest.raises(ValueError):
            LinearWarmupDecay(opt, warmup_steps=5, total_steps=4)
        with pytest.raises(ValueError):
            LinearWarmupDecay(opt, warmup_steps=0, total_steps=0)


class TestClipGradNorm:
    def test_clips_large_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        norm = clip_grad_norm([param], max_norm=1.0)
        assert norm == pytest.approx(20.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0, rel=1e-5)

    def test_leaves_small_gradients(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 0.01)
        clip_grad_norm([param], max_norm=1.0)
        np.testing.assert_allclose(param.grad, np.full(4, 0.01))

    def test_handles_missing_grads(self):
        assert clip_grad_norm([Parameter(np.zeros(2))], 1.0) == 0.0
