"""Gradient and semantics tests for the core Tensor operations."""

import numpy as np
import pytest

from repro.ag import Tensor, cat, no_grad, stack
from tests.ag.gradcheck import check_gradient

RNG = np.random.default_rng(7)


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_add_gradient(self):
        check_gradient(lambda t: t + t * 2.0, RNG.normal(size=(3, 4)))

    def test_add_broadcast_gradient(self):
        bias = Tensor(RNG.normal(size=(4,)), requires_grad=True)
        x = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        (x + bias).sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(4, 3.0))
        np.testing.assert_allclose(x.grad, np.ones((3, 4)))

    def test_mul_gradient(self):
        check_gradient(lambda t: t * t, RNG.normal(size=(2, 3)))

    def test_sub_and_div(self):
        a = Tensor([6.0]), Tensor([2.0])
        np.testing.assert_allclose((a[0] - a[1]).data, [4.0])
        np.testing.assert_allclose((a[0] / a[1]).data, [3.0])

    def test_div_gradient(self):
        check_gradient(lambda t: t / 2.0 + 1.0 / (t + 5.0),
                       RNG.uniform(1.0, 2.0, size=(3,)))

    def test_pow_gradient(self):
        check_gradient(lambda t: t ** 3.0, RNG.uniform(0.5, 1.5, size=(4,)))

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** Tensor([2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_reflected_ops(self):
        t = Tensor([2.0])
        np.testing.assert_allclose((3.0 + t).data, [5.0])
        np.testing.assert_allclose((3.0 - t).data, [1.0])
        np.testing.assert_allclose((3.0 * t).data, [6.0])
        np.testing.assert_allclose((3.0 / t).data, [1.5])


class TestMatmul:
    def test_matmul_values(self):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.arange(12, dtype=np.float32).reshape(3, 4)
        np.testing.assert_allclose((Tensor(a) @ Tensor(b)).data, a @ b)

    def test_matmul_gradient(self):
        w = RNG.normal(size=(4, 2))
        check_gradient(lambda t: t @ Tensor(w), RNG.normal(size=(3, 4)))

    def test_matmul_gradient_rhs(self):
        x = RNG.normal(size=(3, 4))
        check_gradient(lambda t: Tensor(x) @ t, RNG.normal(size=(4, 2)))

    def test_batched_matmul_gradient(self):
        w = RNG.normal(size=(2, 4, 5))
        check_gradient(lambda t: t @ Tensor(w), RNG.normal(size=(2, 3, 4)))

    def test_broadcast_batched_matmul(self):
        # (B, H, T, D) @ (D, D') with implicit broadcast over batch dims.
        w = Tensor(RNG.normal(size=(4, 4)), requires_grad=True)
        x = Tensor(RNG.normal(size=(2, 3, 5, 4)), requires_grad=True)
        (x @ w).sum().backward()
        assert w.grad.shape == (4, 4)
        assert x.grad.shape == (2, 3, 5, 4)

    def test_matmul_rejects_vectors(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]) @ Tensor([[1.0], [2.0]])


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda t: t.sum() * 1.0, RNG.normal(size=(3, 2)))

    def test_sum_axis_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        np.testing.assert_allclose(out.data, [[3.0], [3.0]])

    def test_sum_axis_gradient(self):
        check_gradient(lambda t: t.sum(axis=0), RNG.normal(size=(3, 4)))

    def test_mean_gradient(self):
        check_gradient(lambda t: t.mean(axis=1), RNG.normal(size=(2, 5)))

    def test_mean_value(self):
        np.testing.assert_allclose(Tensor([1.0, 3.0]).mean().data, 2.0)

    def test_max_gradient_flows_to_argmax(self):
        x = Tensor(np.array([[1.0, 5.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.0, 1.0, 0.0]])

    def test_max_ties_split_gradient(self):
        x = Tensor(np.array([[2.0, 2.0]]), requires_grad=True)
        x.max(axis=1).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5, 0.5]])


class TestElementwise:
    def test_exp_gradient(self):
        check_gradient(lambda t: t.exp(), RNG.normal(size=(3,)))

    def test_log_gradient(self):
        check_gradient(lambda t: t.log(), RNG.uniform(0.5, 2.0, size=(3,)))

    def test_tanh_gradient(self):
        check_gradient(lambda t: t.tanh(), RNG.normal(size=(4,)))

    def test_relu_gradient_mask(self):
        x = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        x.relu().sum().backward()
        np.testing.assert_allclose(x.grad, [0.0, 1.0])

    def test_sigmoid_range(self):
        out = Tensor(RNG.normal(size=(100,)) * 5.0).sigmoid()
        assert np.all(out.data > 0.0) and np.all(out.data < 1.0)

    def test_sqrt(self):
        np.testing.assert_allclose(Tensor([4.0]).sqrt().data, [2.0])


class TestShapeOps:
    def test_reshape_roundtrip_gradient(self):
        check_gradient(lambda t: t.reshape(6) * 2.0, RNG.normal(size=(2, 3)))

    def test_transpose_gradient(self):
        weights = Tensor(RNG.normal(size=(2, 2)))
        check_gradient(lambda t: t.transpose(1, 0) @ weights,
                       RNG.normal(size=(2, 3)))

    def test_swapaxes_roundtrip(self):
        x = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        x.swapaxes(0, 2).sum().backward()
        np.testing.assert_allclose(x.grad, np.ones((2, 3, 4)))

    def test_broadcast_to_values(self):
        x = Tensor(RNG.normal(size=(1, 3)))
        out = x.broadcast_to((4, 3))
        np.testing.assert_allclose(out.data, np.broadcast_to(x.data, (4, 3)))

    def test_broadcast_to_gradient_sums_over_batch(self):
        x = Tensor(RNG.normal(size=(1, 3)), requires_grad=True)
        (x.broadcast_to((5, 3)) * 2.0).sum().backward()
        np.testing.assert_allclose(x.grad, np.full((1, 3), 10.0))

    def test_broadcast_to_gradcheck(self):
        weights = Tensor(RNG.normal(size=(4, 2)))
        check_gradient(lambda t: t.broadcast_to((4, 2)) * weights,
                       RNG.normal(size=(1, 2)))

    def test_getitem_slice_gradient(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        x[1:3].sum().backward()
        expected = np.zeros((4, 3))
        expected[1:3] = 1.0
        np.testing.assert_allclose(x.grad, expected)

    def test_getitem_fancy_index_accumulates(self):
        x = Tensor(np.zeros((3, 2)), requires_grad=True)
        idx = np.array([0, 0, 2])
        x[idx].sum().backward()
        np.testing.assert_allclose(x.grad, [[2.0, 2.0], [0.0, 0.0], [1.0, 1.0]])

    def test_masked_fill(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        mask = np.array([False, True, False])
        out = x.masked_fill(mask, -99.0)
        np.testing.assert_allclose(out.data, [1.0, -99.0, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0, 0.0, 1.0])

    def test_cat_gradient(self):
        a = Tensor(RNG.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        out = cat([a, b], axis=0)
        assert out.shape == (6, 3)
        (out * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 3), 2.0))
        np.testing.assert_allclose(b.grad, np.full((4, 3), 2.0))

    def test_cat_empty_raises(self):
        with pytest.raises(ValueError):
            cat([], axis=0)

    def test_stack_gradient(self):
        a = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        b = Tensor(RNG.normal(size=(3,)), requires_grad=True)
        out = stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(3))
        np.testing.assert_allclose(b.grad, np.ones(3))


class TestGraphMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3.0 + x * 4.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_backward_requires_scalar(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_no_grad_blocks_graph(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert not y.requires_grad

    def test_detach_cuts_graph(self):
        x = Tensor([3.0], requires_grad=True)
        y = x.detach() * 2.0 + x
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_diamond_graph_topological_order(self):
        x = Tensor([1.0], requires_grad=True)
        a = x * 2.0
        b = a * 3.0
        c = a * 4.0
        (b + c).backward()
        np.testing.assert_allclose(x.grad, [14.0])

    def test_float32_enforced(self):
        assert Tensor(np.arange(3)).data.dtype == np.float32
        assert Tensor([1, 2]).data.dtype == np.float32
