"""Finite-difference gradient checking used across the autograd tests."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ag import Tensor


def numeric_grad(f: Callable[[np.ndarray], float], x: np.ndarray,
                 eps: float = 1e-2) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    x = x.astype(np.float64).copy()
    grad = np.zeros_like(x)
    flat_x = x.reshape(-1)
    flat_g = grad.reshape(-1)
    for i in range(flat_x.size):
        original = flat_x[i]
        flat_x[i] = original + eps
        plus = f(x.astype(np.float32))
        flat_x[i] = original - eps
        minus = f(x.astype(np.float32))
        flat_x[i] = original
        flat_g[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(build: Callable[[Tensor], Tensor], x: np.ndarray,
                   rtol: float = 5e-2, atol: float = 5e-3) -> None:
    """Assert autograd and numeric gradients of ``sum(build(x))`` agree."""
    tensor = Tensor(x, requires_grad=True)
    out = build(tensor)
    loss = out.sum()
    loss.backward()
    assert tensor.grad is not None, "no gradient reached the input"

    def scalar(values: np.ndarray) -> float:
        return float(build(Tensor(values)).sum().data)

    expected = numeric_grad(scalar, np.asarray(x, dtype=np.float64))
    np.testing.assert_allclose(tensor.grad, expected, rtol=rtol, atol=atol)
