"""Property-based tests for the autograd engine."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.ag import Tensor, cross_entropy, softmax

FLOATS = st.floats(-3.0, 3.0, allow_nan=False, width=32)


def small_arrays(max_dims=3, max_side=4):
    return arrays(np.float32, array_shapes(min_dims=1, max_dims=max_dims,
                                           min_side=1, max_side=max_side),
                  elements=FLOATS)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_add_broadcast_grad_shapes_match_inputs(x):
    """Gradients always come back in the operand's own shape."""
    a = Tensor(x, requires_grad=True)
    b = Tensor(np.float32(2.5), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == a.shape
    assert b.grad.shape == b.shape
    np.testing.assert_allclose(b.grad, np.float32(x.size), rtol=1e-4)


@settings(max_examples=40, deadline=None)
@given(small_arrays())
def test_sum_gradient_is_ones(x):
    t = Tensor(x, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x))


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_linearity_of_backward(x):
    """grad of (2a + 3a) equals grad of 5a."""
    a = Tensor(x, requires_grad=True)
    (a * 2.0 + a * 3.0).sum().backward()
    combined = a.grad.copy()
    b = Tensor(x, requires_grad=True)
    (b * 5.0).sum().backward()
    np.testing.assert_allclose(combined, b.grad, rtol=1e-5)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(2, 6)),
              elements=FLOATS))
def test_softmax_is_distribution(x):
    out = softmax(Tensor(x)).data
    assert np.all(out >= 0.0)
    np.testing.assert_allclose(out.sum(axis=-1), np.ones(x.shape[0]),
                               rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(arrays(np.float32, st.tuples(st.integers(1, 5), st.integers(2, 6)),
              elements=FLOATS),
       st.integers(0, 10**6))
def test_cross_entropy_nonnegative_and_grad_sums_to_zero(x, seed):
    rng = np.random.default_rng(seed)
    targets = rng.integers(0, x.shape[1], size=x.shape[0])
    logits = Tensor(x, requires_grad=True)
    loss = cross_entropy(logits, targets)
    assert loss.data >= 0.0
    loss.backward()
    # Each row's gradient (softmax - onehot) sums to zero.
    np.testing.assert_allclose(logits.grad.sum(axis=1),
                               np.zeros(x.shape[0]), atol=1e-5)


@settings(max_examples=30, deadline=None)
@given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
       st.integers(0, 10**6))
def test_matmul_grad_matches_manual_formula(n, k, m, seed):
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=(n, k)).astype(np.float32)
    b_data = rng.normal(size=(k, m)).astype(np.float32)
    a = Tensor(a_data, requires_grad=True)
    b = Tensor(b_data, requires_grad=True)
    (a @ b).sum().backward()
    ones = np.ones((n, m), dtype=np.float32)
    np.testing.assert_allclose(a.grad, ones @ b_data.T, rtol=1e-4, atol=1e-5)
    np.testing.assert_allclose(b.grad, a_data.T @ ones, rtol=1e-4, atol=1e-5)


@settings(max_examples=40, deadline=None)
@given(small_arrays(max_dims=2))
def test_exp_log_roundtrip_gradient(x):
    """d/dx log(exp(x)) == 1."""
    t = Tensor(x, requires_grad=True)
    t.exp().log().sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(x), rtol=1e-3, atol=1e-4)
