"""Tests for activations and losses."""

import numpy as np
import pytest

from repro.ag import (Tensor, cross_entropy, gelu, log_softmax, mse_loss,
                      sequence_cross_entropy, softmax)
from tests.ag.gradcheck import check_gradient

RNG = np.random.default_rng(11)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        out = softmax(Tensor(RNG.normal(size=(5, 7))))
        np.testing.assert_allclose(out.data.sum(axis=-1), np.ones(5), rtol=1e-5)

    def test_shift_invariance(self):
        x = RNG.normal(size=(3, 4))
        a = softmax(Tensor(x)).data
        b = softmax(Tensor(x + 100.0)).data
        np.testing.assert_allclose(a, b, atol=1e-4)

    def test_large_values_stable(self):
        out = softmax(Tensor(np.array([[1000.0, 1000.0]])))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])

    def test_gradient(self):
        weights = Tensor(RNG.normal(size=(2, 5)))
        check_gradient(lambda t: softmax(t) * weights, RNG.normal(size=(2, 5)))

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(RNG.normal(size=(4, 6)))
        np.testing.assert_allclose(
            log_softmax(x).data, np.log(softmax(x).data), atol=1e-5
        )


class TestGelu:
    def test_known_values(self):
        out = gelu(Tensor([0.0, 1.0, -1.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.8412, -0.1588], atol=1e-3)

    def test_gradient(self):
        check_gradient(gelu, RNG.normal(size=(6,)))

    def test_monotone_for_positive(self):
        x = np.linspace(0.1, 3.0, 20, dtype=np.float32)
        out = gelu(Tensor(x)).data
        assert np.all(np.diff(out) > 0)


class TestCrossEntropy:
    def test_matches_manual_nll(self):
        logits = RNG.normal(size=(4, 5)).astype(np.float32)
        targets = np.array([0, 2, 4, 1])
        loss = cross_entropy(Tensor(logits), targets)
        probs = np.exp(logits - logits.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        expected = -np.mean(np.log(probs[np.arange(4), targets]))
        np.testing.assert_allclose(loss.data, expected, rtol=1e-5)

    def test_gradient_is_softmax_minus_onehot(self):
        logits = Tensor(RNG.normal(size=(3, 4)), requires_grad=True)
        targets = np.array([1, 3, 0])
        cross_entropy(logits, targets).backward()
        probs = np.exp(logits.data - logits.data.max(axis=1, keepdims=True))
        probs /= probs.sum(axis=1, keepdims=True)
        probs[np.arange(3), targets] -= 1.0
        np.testing.assert_allclose(logits.grad, probs / 3.0, rtol=1e-5, atol=1e-6)

    def test_ignore_index_masks_positions(self):
        logits = Tensor(RNG.normal(size=(4, 5)), requires_grad=True)
        targets = np.array([1, -100, 2, -100])
        loss = cross_entropy(logits, targets, ignore_index=-100)
        loss.backward()
        np.testing.assert_allclose(logits.grad[1], np.zeros(5))
        np.testing.assert_allclose(logits.grad[3], np.zeros(5))
        kept = cross_entropy(Tensor(logits.data[[0, 2]]), targets[[0, 2]])
        np.testing.assert_allclose(loss.data, kept.data, rtol=1e-6)

    def test_all_ignored_raises(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3))), np.array([-1, -1]),
                          ignore_index=-1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))

    def test_perfect_prediction_near_zero_loss(self):
        logits = np.full((2, 3), -20.0, dtype=np.float32)
        logits[0, 1] = 20.0
        logits[1, 2] = 20.0
        loss = cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.data < 1e-4


class TestSequenceCrossEntropy:
    def test_matches_mean_of_per_sample_losses(self):
        """The batched loss must equal the mean of per-sequence
        cross_entropy over the same (ragged) batch."""
        logits = RNG.normal(size=(3, 6, 5)).astype(np.float32)
        targets = np.full((3, 6), -100, dtype=np.int64)
        targets[0, :4] = [1, 0, 3, 2]
        targets[1, :2] = [4, 4]
        targets[2, :6] = [0, 1, 2, 3, 4, 0]
        loss = sequence_cross_entropy(Tensor(logits), targets,
                                      ignore_index=-100)
        per_sample = [
            float(cross_entropy(Tensor(logits[i]), targets[i],
                                ignore_index=-100).data)
            for i in range(3)
        ]
        np.testing.assert_allclose(float(loss.data), np.mean(per_sample),
                                   rtol=1e-6)

    def test_gradient_matches_per_sample_backward(self):
        logits = Tensor(RNG.normal(size=(2, 4, 5)), requires_grad=True)
        targets = np.array([[1, 2, -100, -100], [0, 4, 3, 1]])
        sequence_cross_entropy(logits, targets, ignore_index=-100).backward()
        reference = np.zeros_like(logits.data)
        for i in range(2):
            row = Tensor(logits.data[i], requires_grad=True)
            cross_entropy(row, targets[i], ignore_index=-100).backward()
            reference[i] = row.grad / 2.0     # mean over the batch
        np.testing.assert_allclose(logits.grad, reference, rtol=1e-5,
                                   atol=1e-7)

    def test_ignored_positions_get_zero_gradient(self):
        logits = Tensor(RNG.normal(size=(2, 3, 4)), requires_grad=True)
        targets = np.array([[0, -100, 2], [-100, 1, 3]])
        sequence_cross_entropy(logits, targets, ignore_index=-100).backward()
        np.testing.assert_allclose(logits.grad[0, 1], np.zeros(4))
        np.testing.assert_allclose(logits.grad[1, 0], np.zeros(4))

    def test_sequence_with_no_valid_targets_raises(self):
        with pytest.raises(ValueError):
            sequence_cross_entropy(Tensor(np.zeros((2, 3, 4))),
                                   np.array([[0, 1, 2], [-1, -1, -1]]),
                                   ignore_index=-1)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            sequence_cross_entropy(Tensor(np.zeros((2, 3))),
                                   np.array([0, 1]))
        with pytest.raises(ValueError):
            sequence_cross_entropy(Tensor(np.zeros((2, 3, 4))),
                                   np.array([[0, 1], [2, 3]]))


class TestMseLoss:
    def test_zero_for_identical(self):
        x = Tensor(RNG.normal(size=(3, 3)))
        assert mse_loss(x, x).data == 0.0

    def test_gradient(self):
        target = Tensor(RNG.normal(size=(2, 3)))
        check_gradient(lambda t: mse_loss(t, target), RNG.normal(size=(2, 3)))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            mse_loss(Tensor(np.zeros((2, 2))), Tensor(np.zeros((2, 3))))
