"""Tests for the OVT autoencoder."""

import numpy as np
import pytest

from repro.compression import AutoencoderConfig, OVTAutoencoder

RNG = np.random.default_rng(47)


def make_ae(input_dim=16, code_dim=8, steps=150, gram=0.5):
    return OVTAutoencoder(AutoencoderConfig(
        input_dim=input_dim, code_dim=code_dim, hidden_dim=32,
        pretrain_steps=steps, gram_weight=gram, seed=0))


def low_rank_rows(n=200, dim=16, rank=6):
    basis = RNG.normal(size=(rank, dim)).astype(np.float32)
    coeff = RNG.normal(size=(n, rank)).astype(np.float32)
    return (coeff @ basis) / 5.0


class TestShapes:
    def test_encode_decode_shapes(self):
        ae = make_ae()
        rows = RNG.normal(size=(10, 16)).astype(np.float32)
        codes = ae.encode(rows)
        assert codes.shape == (10, 8)
        assert ae.decode(codes).shape == (10, 16)

    def test_dimension_validation(self):
        ae = make_ae()
        with pytest.raises(ValueError):
            ae.encode(np.zeros((3, 7)))
        with pytest.raises(ValueError):
            ae.decode(np.zeros((3, 7)))
        with pytest.raises(ValueError):
            ae.encode(np.zeros((0, 16)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoencoderConfig(input_dim=0)


class TestTraining:
    def test_loss_decreases(self):
        ae = make_ae()
        history = ae.fit(low_rank_rows())
        assert history[-1] < history[0]
        assert ae.is_trained

    def test_reconstruction_good_on_low_rank_data(self):
        ae = make_ae(steps=400)
        rows = low_rank_rows()
        ae.fit(rows)
        signal = float(np.sqrt((rows ** 2).mean()))
        assert ae.reconstruction_error(rows) < 0.5 * signal

    def test_update_improves_on_new_distribution(self):
        ae = make_ae(steps=200)
        ae.fit(low_rank_rows())
        shifted = low_rank_rows() + 0.3
        before = ae.reconstruction_error(shifted)
        ae.update(shifted)
        assert ae.reconstruction_error(shifted) < before

    def test_gram_loss_preserves_inner_products(self):
        rows = low_rank_rows(100)
        with_gram = make_ae(steps=400, gram=1.0)
        with_gram.fit(rows)
        codes = with_gram.encode(rows[:20])
        gram_in = rows[:20] @ rows[:20].T
        gram_code = codes @ codes.T
        corr = np.corrcoef(gram_in.reshape(-1), gram_code.reshape(-1))[0, 1]
        assert corr > 0.9


class TestMatrixAPI:
    def test_scale_roundtrip(self):
        ae = make_ae(steps=300)
        rows = low_rank_rows()
        ae.fit(rows)
        matrix = rows[:8] * 37.0  # far outside training magnitude
        codes, scale = ae.encode_matrix(matrix)
        assert scale == pytest.approx(np.abs(matrix).max())
        restored = ae.decode_matrix(codes, scale)
        signal = float(np.sqrt((matrix ** 2).mean()))
        assert np.sqrt(((restored - matrix) ** 2).mean()) < 0.6 * signal

    def test_zero_matrix_scale_is_one(self):
        assert OVTAutoencoder.matrix_scale(np.zeros((3, 3))) == 1.0

    def test_decode_matrix_scale_validation(self):
        ae = make_ae()
        with pytest.raises(ValueError):
            ae.decode_matrix(np.zeros((2, 8)), 0.0)
