"""Tests for the NVCiM-PT framework orchestration."""

import numpy as np
import pytest

from repro.core import (
    FrameworkConfig,
    NVCiMDeployment,
    NVCiMPT,
    OVTLibrary,
    OVTTrainingPipeline,
)
from repro.compression import AutoencoderConfig, OVTAutoencoder
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.tuning import TuningConfig, VirtualTokens


@pytest.fixture(scope="module")
def setup():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def fast_config(**overrides):
    defaults = dict(buffer_capacity=10, device_name="NVM-3", sigma=0.1,
                    tuning=TuningConfig(steps=6, lr=0.05), seed=0)
    defaults.update(overrides)
    return FrameworkConfig(**defaults)


def stream_for(user_id, count, seed=0):
    ds = make_dataset("LaMP-2")
    return ds.generate(make_user(user_id, seed=0), count, seed=seed)


class TestFrameworkConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FrameworkConfig(buffer_capacity=0)
        with pytest.raises(ValueError):
            FrameworkConfig(retrieval="knn")

    def test_search_config_derivation(self):
        assert FrameworkConfig(retrieval="ssa").search_config().scales == (1, 2, 4)
        assert FrameworkConfig(retrieval="mips").search_config().scales == (1,)

    def test_noise_config_inherits_sigma(self):
        config = FrameworkConfig(sigma=0.07)
        assert config.noise_config().sigma == 0.07


class TestTrainingPipeline:
    def test_epoch_fires_when_buffer_full(self, setup):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok, fast_config())
        fired = [pipeline.observe(s) for s in stream_for(0, 10)]
        assert fired[-1] and not any(fired[:-1])
        assert len(pipeline.library.ovts) >= 1
        assert pipeline.library.autoencoder.is_trained

    def test_partial_buffer_trains_nothing(self, setup):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok, fast_config())
        pipeline.run(stream_for(0, 7))
        assert len(pipeline.library.ovts) == 0

    def test_ovts_accumulate_across_epochs(self, setup):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok, fast_config())
        pipeline.run(stream_for(0, 10))
        first = len(pipeline.library.ovts)
        pipeline.run(stream_for(0, 10, seed=1))
        assert len(pipeline.library.ovts) > first

    def test_k_follows_buffer_size(self, setup):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok, fast_config())
        pipeline.run(stream_for(0, 10))
        # Eq. 2 with bs=10, b0=10: k = n_min = 2.
        assert len(pipeline.library.ovts) == 2

    def test_noise_aware_flag_recorded(self, setup):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok,
                                       fast_config(noise_aware=False))
        assert pipeline.library.noise_aware is False


class TestDeployment:
    def _library(self, setup, **overrides):
        model, tok = setup
        pipeline = OVTTrainingPipeline(model, tok, fast_config(**overrides))
        pipeline.run(stream_for(0, 10))
        return pipeline.library

    def test_empty_library_rejected(self, setup):
        model, tok = setup
        ae = OVTAutoencoder(AutoencoderConfig(input_dim=model.config.d_model))
        empty = OVTLibrary(ovts=[], autoencoder=ae, noise_aware=True)
        with pytest.raises(ValueError):
            NVCiMDeployment(model, tok, empty, fast_config())

    def test_untrained_autoencoder_rejected(self, setup):
        model, tok = setup
        ae = OVTAutoencoder(AutoencoderConfig(input_dim=model.config.d_model))
        library = OVTLibrary(
            ovts=[VirtualTokens(np.zeros((4, model.config.d_model)))],
            autoencoder=ae, noise_aware=True)
        with pytest.raises(ValueError):
            NVCiMDeployment(model, tok, library, fast_config())

    def test_retrieve_returns_valid_index(self, setup):
        model, tok = setup
        library = self._library(setup)
        deployment = NVCiMDeployment(model, tok, library, fast_config())
        index = deployment.retrieve(stream_for(0, 1)[0].input_text)
        assert 0 <= index < len(library.ovts)

    def test_restored_prompt_shape_and_scale(self, setup):
        model, tok = setup
        library = self._library(setup)
        deployment = NVCiMDeployment(model, tok, library, fast_config())
        prompt = deployment.restored_prompt(0)
        original = library.ovts[0].matrix
        assert prompt.shape == original.shape
        # The restored prompt keeps the original magnitude (scale metadata).
        assert 0.3 < np.abs(prompt).max() / np.abs(original).max() < 3.0

    def test_answer_produces_text(self, setup):
        model, tok = setup
        library = self._library(setup)
        deployment = NVCiMDeployment(model, tok, library, fast_config())
        out = deployment.answer(stream_for(0, 1)[0].input_text,
                                GenerationConfig(max_new_tokens=3,
                                                 temperature=0.0,
                                                 eos_id=tok.eos_id))
        assert isinstance(out, str)

    def test_digital_mode_restore_is_exact_in_code_space(self, setup):
        model, tok = setup
        library = self._library(setup)
        deployment = NVCiMDeployment(model, tok, library,
                                     fast_config(on_cim=False))
        codes, scale = library.autoencoder.encode_matrix(
            library.ovts[0].matrix)
        restored_codes = deployment.engine.restore(0)
        np.testing.assert_allclose(restored_codes, codes, atol=1e-4)

    def test_mitigation_wired_through(self, setup):
        model, tok = setup
        library = self._library(setup)
        deployment = NVCiMDeployment(model, tok, library,
                                     fast_config(mitigation="cxdnn"))
        engine_matrix = deployment.engine._scale_matrices[1]
        assert "column_gain" in engine_matrix.calibration


class TestFacade:
    def test_observe_then_answer(self, setup):
        model, tok = setup
        system = NVCiMPT(model, tok, fast_config())
        with pytest.raises(RuntimeError):
            system.answer("movie about robot space tag")
        for sample in stream_for(0, 10):
            system.observe(sample)
        out = system.answer(stream_for(0, 1)[0].input_text,
                            GenerationConfig(max_new_tokens=3,
                                             temperature=0.0,
                                             eos_id=tok.eos_id))
        assert isinstance(out, str)

    def test_deployment_rebuilt_after_new_epoch(self, setup):
        model, tok = setup
        system = NVCiMPT(model, tok, fast_config())
        for sample in stream_for(0, 10):
            system.observe(sample)
        system.answer(stream_for(0, 1)[0].input_text,
                      GenerationConfig(max_new_tokens=1))
        first = system._deployment
        for sample in stream_for(0, 10, seed=2):
            system.observe(sample)
        assert system._deployment is None  # invalidated
        system.answer(stream_for(0, 1)[0].input_text,
                      GenerationConfig(max_new_tokens=1))
        assert system._deployment is not first
