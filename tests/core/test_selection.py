"""Tests for representative selection (k-means, Eq. 2, Eq. 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    KSelectionConfig,
    compute_k,
    cosine_similarity,
    kmeans,
    select_representatives,
)

RNG = np.random.default_rng(53)


def blobs(k=3, per=10, dim=8, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.normal(size=(k, dim)) * 3.0
    points = np.concatenate(
        [center + rng.normal(0, spread, (per, dim)) for center in centers])
    labels = np.repeat(np.arange(k), per)
    return points, labels


class TestComputeK:
    def test_paper_default_at_buffer_25(self):
        assert compute_k(25) == 3

    def test_monotone_in_buffer_size(self):
        ks = [compute_k(bs) for bs in (10, 20, 40, 80, 320)]
        assert ks == sorted(ks)

    def test_clamped_to_bounds(self):
        config = KSelectionConfig(n_min=2, n_max=4)
        assert compute_k(5, config) == 2
        assert compute_k(10_000, config) == 4

    def test_never_exceeds_buffer(self):
        assert compute_k(2) <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            compute_k(0)
        with pytest.raises(ValueError):
            KSelectionConfig(base_buffer=0)
        with pytest.raises(ValueError):
            KSelectionConfig(n_min=5, n_max=2)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 10_000))
    def test_always_within_bounds(self, buffer_size):
        config = KSelectionConfig()
        k = compute_k(buffer_size, config)
        assert 1 <= k <= min(config.n_max, buffer_size)


class TestCosineSimilarity:
    def test_identical_vectors(self):
        v = RNG.normal(size=5)
        assert cosine_similarity(v, v) == pytest.approx(1.0)

    def test_orthogonal_vectors(self):
        assert cosine_similarity([1, 0], [0, 1]) == pytest.approx(0.0)

    def test_zero_vector(self):
        assert cosine_similarity([0, 0], [1, 1]) == 0.0


class TestKMeans:
    def test_recovers_separated_blobs(self):
        points, truth = blobs(k=3, seed=1)
        labels, centroids = kmeans(points, 3, seed=0)
        # Same-blob points share a cluster label.
        for blob_id in range(3):
            blob_labels = labels[truth == blob_id]
            assert len(set(blob_labels.tolist())) == 1
        assert centroids.shape == (3, 8)

    def test_k_validation(self):
        points = RNG.normal(size=(5, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 6)
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 1)

    def test_deterministic_for_seed(self):
        points, _ = blobs(seed=2)
        a, _ = kmeans(points, 3, seed=7)
        b, _ = kmeans(points, 3, seed=7)
        np.testing.assert_array_equal(a, b)

    def test_k_equals_n(self):
        points = RNG.normal(size=(4, 3))
        labels, _ = kmeans(points, 4, seed=0)
        assert len(set(labels.tolist())) == 4

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 1000))
    def test_every_point_gets_nearest_centroid(self, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(12, 3))
        labels, centroids = kmeans(points, 3, seed=seed)
        distances = ((points[:, None, :] - centroids[None]) ** 2).sum(axis=2)
        np.testing.assert_array_equal(labels, distances.argmin(axis=1))


class TestSelectRepresentatives:
    def test_one_per_cluster(self):
        points, _ = blobs(k=3, seed=3)
        result = select_representatives(points, k=3, seed=0)
        assert result.k == 3
        assert len(set(result.representative_indices)) == 3

    def test_representative_is_most_central(self):
        points, truth = blobs(k=2, per=8, seed=4)
        result = select_representatives(points, k=2, seed=0)
        for rep in result.representative_indices:
            cluster = result.labels[rep]
            members = np.flatnonzero(result.labels == cluster)
            centroid = result.centroids[cluster]
            rep_sim = cosine_similarity(points[rep], centroid)
            for member in members:
                assert rep_sim >= cosine_similarity(points[member],
                                                    centroid) - 1e-9

    def test_adaptive_k_from_buffer_size(self):
        points, _ = blobs(k=5, per=5, seed=5)  # 25 points -> k = 3
        result = select_representatives(points, seed=0)
        assert result.k == 3

    def test_remainder_partition(self):
        points, _ = blobs(k=2, per=6, seed=6)
        result = select_representatives(points, k=2, seed=0)
        remainder = result.remainder_indices()
        assert set(remainder) | set(result.representative_indices) == set(
            range(12))
        assert not set(remainder) & set(result.representative_indices)
