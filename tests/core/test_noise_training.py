"""Tests for Eq. 4 noise injection and noise-aware training."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ag import Parameter
from repro.core import NoiseInjectionConfig, NoiseInjector

RNG = np.random.default_rng(59)


class TestNoiseInjectionConfig:
    def test_tier_boundaries_match_paper(self):
        config = NoiseInjectionConfig(f1=1.0, f2=2.0, f3=3.0, f4=4.0)
        mags = np.array([0.9, 0.76, 0.75, 0.6, 0.5, 0.4, 0.25, 0.2, 0.0])
        factors = config.factors_for(mags)
        # |S^| > 0.75 -> f1;  0.5 <= |S^| <= 0.75 -> f2;
        # 0.25 <= |S^| < 0.5 -> f3;  |S^| < 0.25 -> f4.
        np.testing.assert_allclose(
            factors, [1.0, 1.0, 2.0, 2.0, 2.0, 3.0, 3.0, 4.0, 4.0])

    def test_negative_magnitudes_use_absolute_value(self):
        config = NoiseInjectionConfig(f1=1.0, f2=2.0, f3=3.0, f4=4.0)
        np.testing.assert_allclose(config.factors_for(np.array([-0.9])), [1.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseInjectionConfig(sigma=-0.1)
        with pytest.raises(ValueError):
            NoiseInjectionConfig(f2=-1.0)

    def test_default_tiers_mirror_device_physics(self):
        """Middle-magnitude tiers are noisier, like Table II middle levels."""
        config = NoiseInjectionConfig()
        assert config.f2 > config.f1
        assert config.f3 > config.f4


class TestNoiseInjector:
    def test_noise_magnitude_scales_with_sigma(self):
        values = RNG.normal(size=(500, 8)).astype(np.float32)
        small = NoiseInjector(NoiseInjectionConfig(sigma=0.01, seed=0))
        large = NoiseInjector(NoiseInjectionConfig(sigma=0.2, seed=0))
        assert large.sample_noise(values).std() > small.sample_noise(values).std()

    def test_zero_sigma_is_identity(self):
        injector = NoiseInjector(NoiseInjectionConfig(sigma=0.0))
        prompt = Parameter(RNG.normal(size=(4, 8)))
        out = injector(prompt)
        assert out is prompt

    def test_zero_prompt_is_identity(self):
        injector = NoiseInjector(NoiseInjectionConfig(sigma=0.1))
        prompt = Parameter(np.zeros((4, 8)))
        assert injector(prompt) is prompt

    def test_gradient_passes_straight_through(self):
        injector = NoiseInjector(NoiseInjectionConfig(sigma=0.1, seed=1))
        prompt = Parameter(RNG.normal(size=(4, 8)))
        noisy = injector(prompt)
        noisy.sum().backward()
        np.testing.assert_allclose(prompt.grad, np.ones((4, 8)))

    def test_fresh_noise_each_call(self):
        injector = NoiseInjector(NoiseInjectionConfig(sigma=0.1, seed=2))
        prompt = Parameter(RNG.normal(size=(4, 8)))
        a = injector(prompt).data
        b = injector(prompt).data
        assert not np.allclose(a, b)

    def test_noise_proportional_to_peak(self):
        config = NoiseInjectionConfig(sigma=0.1, seed=3)
        values = RNG.normal(size=(100, 8)).astype(np.float32)
        scaled = values * 10.0
        noise_small = NoiseInjector(config).sample_noise(values)
        noise_large = NoiseInjector(config).sample_noise(scaled)
        assert noise_large.std() == pytest.approx(10 * noise_small.std(),
                                                  rel=0.2)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0.01, 0.3), st.integers(0, 100))
    def test_tiered_std_bounds(self, sigma, seed):
        """Injected noise std stays within [f_min, f_max] * sigma * peak."""
        config = NoiseInjectionConfig(sigma=sigma, seed=seed)
        values = np.random.default_rng(seed).normal(
            size=(200, 16)).astype(np.float32)
        noise = NoiseInjector(config).sample_noise(values)
        peak = np.abs(values).max()
        f_min = min(config.f1, config.f2, config.f3, config.f4)
        f_max = max(config.f1, config.f2, config.f3, config.f4)
        assert noise.std() >= 0.5 * f_min * sigma * peak
        assert noise.std() <= 1.5 * f_max * sigma * peak
