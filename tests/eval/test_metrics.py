"""Tests for accuracy and ROUGE-1."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import classification_accuracy, rouge1, score_output

WORDS = st.lists(st.sampled_from("a b c d e f".split()), min_size=1,
                 max_size=8).map(" ".join)


class TestRouge1:
    def test_identical_texts(self):
        score = rouge1("the robot moved", "the robot moved")
        assert score.precision == score.recall == score.f1 == 1.0

    def test_no_overlap(self):
        score = rouge1("alpha beta", "gamma delta")
        assert score.f1 == 0.0

    def test_known_value(self):
        # candidate: 3 tokens, reference: 4 tokens, overlap 2.
        score = rouge1("a b x", "a b c d")
        assert score.precision == pytest.approx(2 / 3)
        assert score.recall == pytest.approx(0.5)
        assert score.f1 == pytest.approx(2 * (2/3) * 0.5 / (2/3 + 0.5))

    def test_duplicate_tokens_clipped(self):
        score = rouge1("a a a", "a b")
        assert score.precision == pytest.approx(1 / 3)
        assert score.recall == pytest.approx(1 / 2)

    def test_empty_candidate_or_reference(self):
        assert rouge1("", "a b").f1 == 0.0
        assert rouge1("a b", "").f1 == 0.0

    @settings(max_examples=50, deadline=None)
    @given(WORDS, WORDS)
    def test_bounds_and_symmetric_f1(self, a, b):
        score = rouge1(a, b)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0
        assert 0.0 <= score.f1 <= 1.0
        # F1 is symmetric even though P/R swap.
        assert score.f1 == pytest.approx(rouge1(b, a).f1)

    @settings(max_examples=30, deadline=None)
    @given(WORDS)
    def test_self_similarity_is_one(self, text):
        assert rouge1(text, text).f1 == pytest.approx(1.0)


class TestAccuracy:
    def test_first_word_match(self):
        assert classification_accuracy("drama and more", "drama") == 1.0

    def test_mismatch(self):
        assert classification_accuracy("comedy", "drama") == 0.0

    def test_empty_prediction(self):
        assert classification_accuracy("", "drama") == 0.0

    def test_whitespace_label(self):
        assert classification_accuracy("drama", " drama ") == 1.0


class TestScoreOutput:
    def test_dispatch(self):
        assert score_output("accuracy", "x", "x") == 1.0
        assert score_output("rouge1", "a b", "a b") == 1.0

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            score_output("bleu", "a", "b")
