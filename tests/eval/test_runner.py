"""Tests for the experiment harness (protocol, specs, caching)."""

import numpy as np
import pytest

from repro.core import FrameworkConfig
from repro.eval.runner import (
    ExperimentContext,
    MethodSpec,
    TABLE1_METHODS,
    evaluate_artifact,
)
from repro.tuning import PromptArtifact, VirtualTokens


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=0, corpus_sentences=800, n_queries=5)


class TestMethodSpec:
    def test_apply_overrides_axes(self):
        base = FrameworkConfig()
        spec = MethodSpec("X", noise_aware=False, mitigation="swv",
                          retrieval="mips")
        config = spec.apply(base)
        assert not config.noise_aware
        assert config.mitigation == "swv"
        assert config.retrieval == "mips"
        # Other settings untouched.
        assert config.buffer_capacity == base.buffer_capacity

    def test_table1_axes_cover_component_isolation(self):
        by_name = {m.name: m for m in TABLE1_METHODS}
        nvcim = by_name["NVCiM-PT"]
        nvp = by_name["NVP*(MIPS)"]
        nomiti = by_name["No-Miti(MIPS)"]
        # NVP* isolates SSA (same NT, different retrieval).
        assert nvcim.noise_aware == nvp.noise_aware
        assert nvcim.retrieval != nvp.retrieval
        # No-Miti isolates NT (same retrieval as NVP*).
        assert nvp.retrieval == nomiti.retrieval
        assert nvp.noise_aware != nomiti.noise_aware

    def test_mitigation_rows_use_ssa(self):
        for m in TABLE1_METHODS[:3]:
            assert m.retrieval == "ssa"
            assert not m.noise_aware


class TestExperimentContext:
    def test_models_are_memoised(self, ctx):
        assert ctx.model("gemma-2b-sim") is ctx.model("gemma-2b-sim")

    def test_generation_config_paper_settings(self, ctx):
        config = ctx.generation_config()
        assert config.temperature == 0.1
        assert config.eos_id == ctx.tokenizer.eos_id

    def test_user_task_deterministic(self, ctx):
        a = ctx.user_task("LaMP-2", 0, 10)
        b = ctx.user_task("LaMP-2", 0, 10)
        assert [s.input_text for s in a.training_stream] == \
               [s.input_text for s in b.training_stream]
        assert [q.input_text for q in a.queries] == \
               [q.input_text for q in b.queries]

    def test_stream_sessions_are_single_domain(self, ctx):
        task = ctx.user_task("LaMP-5", 2, 8)
        domains = task.dataset.user_domains(task.user)
        for i, domain in enumerate(domains):
            session = task.training_stream[i * 8:(i + 1) * 8]
            assert {s.domain for s in session} == {domain}

    def test_queries_count_respected(self, ctx):
        assert len(ctx.user_task("LaMP-1", 0, 10).queries) == 5


class TestEvaluateArtifact:
    def test_zero_shot_scores_in_unit_interval(self, ctx):
        task = ctx.user_task("LaMP-2", 0, 10)
        score = evaluate_artifact(ctx, "gemma-2b-sim", None, task.queries,
                                  "accuracy")
        assert 0.0 <= score <= 1.0

    def test_artifact_changes_score_inputs(self, ctx):
        task = ctx.user_task("LaMP-2", 0, 10)
        model = ctx.model("gemma-2b-sim")
        strong = PromptArtifact(soft_prompt=VirtualTokens(
            np.random.default_rng(1).normal(
                0, 4.0, (8, model.config.d_model))))
        # A destructive random prompt should not *beat* sane zero-shot
        # often; mainly we assert the artifact path runs and scores.
        score = evaluate_artifact(ctx, "gemma-2b-sim", strong, task.queries,
                                  "accuracy")
        assert 0.0 <= score <= 1.0
