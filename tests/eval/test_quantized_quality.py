"""The quantization quality harness: perplexity and frontier records."""

import numpy as np
import pytest

from repro.eval.quantized import perplexity, quantization_quality
from repro.eval.runner import ExperimentContext
from repro.llm import quantization_stats


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=0, corpus_sentences=600, n_queries=3)


class TestPerplexity:
    def test_deterministic(self, ctx):
        model = ctx.model("phi-2-sim")
        first = perplexity(model, ctx.corpus, window=32, max_windows=4)
        second = perplexity(model, ctx.corpus, window=32, max_windows=4)
        assert first == second
        assert first > 1.0

    def test_pretrained_beats_random(self, ctx):
        from repro.llm import build_model
        random_model = build_model("phi-2-sim", ctx.tokenizer.vocab_size)
        trained = perplexity(ctx.model("phi-2-sim"), ctx.corpus,
                             window=32, max_windows=4)
        untrained = perplexity(random_model, ctx.corpus,
                               window=32, max_windows=4)
        assert trained < untrained

    def test_short_stream_rejected(self, ctx):
        with pytest.raises(ValueError):
            perplexity(ctx.model("phi-2-sim"), np.arange(10), window=64)


class TestQuantizationQuality:
    def test_frontier_records_and_float_model_untouched(self, ctx):
        model = ctx.model("phi-2-sim")
        before = {name: p.data.copy()
                  for name, p in model.named_parameters()}
        report = quantization_quality(
            ctx, "phi-2-sim", "LaMP-1",
            points=(("int8", 32), ("int4", 32)),
            user_ids=(0,), ppl_windows=4)
        # the context's memoised float model must not have been converted
        assert quantization_stats(model)["quantized_layers"] == 0
        after = dict(model.named_parameters())
        assert all((before[name] == after[name].data).all()
                   for name in before)
        assert set(report) == {"float32", "points"}
        assert len(report["points"]) == 2
        int8, int4 = report["points"]
        # On a small window sample the ratio is noisy in either direction;
        # what must hold is that quantization barely moves perplexity
        # while int4 shrinks the resident model well below int8.
        assert int8["perplexity_ratio"] == pytest.approx(1.0, abs=0.1)
        assert int4["perplexity_ratio"] == pytest.approx(1.0, abs=0.2)
        assert 0 < int4["weight_bytes"] < int8["weight_bytes"]
        assert int8["quantized_layers"] == int4["quantized_layers"] > 0
        assert report["float32"]["weight_bytes"] > int8["weight_bytes"]
