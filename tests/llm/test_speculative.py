"""Tests for speculative draft-verify decoding.

The contract: a scheduler given a :class:`SpeculativeDecoder` emits, per
sequence, token-for-token what the plain scheduler (and therefore the
sequential :func:`decode_from` reference) emits — for every confidence
policy, draft depth, batch size, conditioning mode, and mid-flight
admission/retirement pattern.  Speculation may only change how many
base-model forwards the tokens cost, never one token of any answer.
"""

import numpy as np
import pytest

from repro.llm import (
    CONFIDENCE_POLICIES,
    DecodeScheduler,
    GenerationConfig,
    KVCache,
    SpeculativeDecoder,
    TinyCausalLM,
    build_draft_model,
    decode_from,
    distill_draft,
    draft_spec,
    prefill,
)
from repro.llm.registry import MODEL_REGISTRY, EdgeModelSpec
from repro.llm.speculative import (
    entropy_confidence,
    max_prob_confidence,
    temperature_confidence,
    top_k_confidence,
)
from repro.llm.transformer import LMConfig

RNG = np.random.default_rng(33)
VOCAB = 23


def tiny_base(max_seq_len=64, seed=0):
    return TinyCausalLM(LMConfig(vocab_size=VOCAB, d_model=16, n_heads=2,
                                 n_layers=2, d_ff=24,
                                 max_seq_len=max_seq_len), seed=seed)


def tiny_draft(max_seq_len=64, seed=1):
    return TinyCausalLM(LMConfig(vocab_size=VOCAB, d_model=8, n_heads=2,
                                 n_layers=1, d_ff=12,
                                 max_seq_len=max_seq_len), seed=seed)


def ragged_states(model, lengths):
    states, prompts = [], []
    for length in lengths:
        ids = RNG.integers(1, VOCAB, size=length).astype(np.int64)
        prompts.append(ids)
        states.append(prefill(model, ids))
    return states, prompts


def run_speculative(model, states, prompts, configs, spec):
    scheduler = DecodeScheduler(model, speculative=spec)
    sequences = [scheduler.admit(state, config, prompt_ids=ids)
                 for state, config, ids in zip(states, configs, prompts)]
    scheduler.run()
    return [seq.token_ids() for seq in sequences], scheduler


def assert_matches_sequential(model, states, configs, results):
    for state, config, result in zip(states, configs, results):
        np.testing.assert_array_equal(result,
                                      decode_from(model, state, config))


# ----------------------------------------------------------------------
class TestConfidencePolicies:
    def test_registry_contents(self):
        for name in ("max-prob", "entropy", "temperature", "top-k"):
            assert name in CONFIDENCE_POLICIES

    def test_max_prob_bounds(self):
        peaked = np.zeros(10, dtype=np.float32)
        peaked[3] = 20.0
        assert max_prob_confidence(peaked) > 0.99
        uniform = np.zeros(10, dtype=np.float32)
        assert max_prob_confidence(uniform) == pytest.approx(0.1)

    def test_entropy_bounds(self):
        peaked = np.zeros(10, dtype=np.float32)
        peaked[3] = 40.0
        assert entropy_confidence(peaked) > 0.99
        uniform = np.zeros(10, dtype=np.float32)
        assert entropy_confidence(uniform) == pytest.approx(0.0, abs=1e-9)

    def test_temperature_flattens(self):
        logits = np.array([2.0, 1.0, 0.0, -1.0], dtype=np.float32)
        assert temperature_confidence(logits, temperature=3.0) \
            < max_prob_confidence(logits)
        with pytest.raises(ValueError, match="positive"):
            temperature_confidence(logits, temperature=0.0)

    def test_top_k_reduces_to_max_prob_at_k1(self):
        logits = RNG.normal(size=17).astype(np.float32)
        assert top_k_confidence(logits, k=1) \
            == pytest.approx(max_prob_confidence(logits))
        with pytest.raises(ValueError, match=">= 1"):
            top_k_confidence(logits, k=0)

    def test_decoder_rejects_unknown_policy(self):
        with pytest.raises(KeyError):
            SpeculativeDecoder(tiny_draft(), policy="oracle")

    def test_decoder_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="max_draft"):
            SpeculativeDecoder(tiny_draft(), max_draft=0)


class TestDraftConstruction:
    def test_draft_spec_halves_dimensions(self):
        base = EdgeModelSpec(name="b", paper_model="B", d_model=64,
                             n_heads=4, n_layers=6, d_ff=128,
                             quantize_bits=None, base_seed=7)
        spec = draft_spec(base)
        assert spec.name == "b-draft"
        assert spec.d_model == 32 and spec.d_model % spec.n_heads == 0
        assert spec.n_heads == base.n_heads
        assert spec.n_layers == 3 and spec.d_ff == 64
        assert spec.base_seed == base.base_seed + 1

    def test_draft_spec_floors_at_one_layer(self):
        base = EdgeModelSpec(name="b", paper_model="B", d_model=8,
                             n_heads=2, n_layers=1, d_ff=8,
                             quantize_bits=None, base_seed=0)
        spec = draft_spec(base)
        assert spec.n_layers == 1
        assert spec.d_model >= spec.n_heads

    def test_build_draft_model_registers_spec(self):
        draft = build_draft_model("phi-2-sim", VOCAB, max_seq_len=32)
        assert "phi-2-sim-draft" in MODEL_REGISTRY
        assert draft.config.vocab_size == VOCAB
        assert draft.config.n_layers \
            == max(1, MODEL_REGISTRY["phi-2-sim"].n_layers // 2)

    def test_distill_returns_loss_curve(self):
        from repro.llm import PretrainConfig
        base, draft = tiny_base(seed=4), tiny_draft(seed=5)
        prompts = [RNG.integers(1, VOCAB, size=5).astype(np.int64)
                   for _ in range(2)]
        losses = distill_draft(draft, base, prompts, max_new_tokens=6,
                               pretrain=PretrainConfig(steps=8, seed=2,
                                                       seq_len=8))
        assert len(losses) == 8
        assert all(np.isfinite(loss) for loss in losses)


# ----------------------------------------------------------------------
class TestTokenIdentity:
    @pytest.mark.parametrize("policy",
                             ["max-prob", "entropy", "temperature", "top-k"])
    @pytest.mark.parametrize("depth", [1, 3, 6])
    def test_matches_sequential_across_policies_and_depths(self, policy,
                                                           depth):
        model, draft = tiny_base(seed=2), tiny_draft(seed=3)
        states, prompts = ragged_states(model, [3, 9, 5, 12, 7])
        configs = [GenerationConfig(max_new_tokens=10, temperature=0.0)
                   for _ in states]
        # threshold 0: always draft to the cap, maximising accept/reject
        # traffic even though the untrained draft rarely agrees.
        spec = SpeculativeDecoder(draft, max_draft=depth, policy=policy,
                                  threshold=0.0)
        results, _ = run_speculative(model, states, prompts, configs, spec)
        assert_matches_sequential(model, states, configs, results)

    @pytest.mark.parametrize("batch", [1, 2, 5])
    def test_matches_sequential_across_batch_sizes(self, batch):
        model, draft = tiny_base(seed=6), tiny_draft(seed=7)
        states, prompts = ragged_states(model, [4 + i for i in range(batch)])
        configs = [GenerationConfig(max_new_tokens=8, temperature=0.0)
                   for _ in states]
        spec = SpeculativeDecoder(draft, max_draft=4, threshold=0.0)
        results, _ = run_speculative(model, states, prompts, configs, spec)
        assert_matches_sequential(model, states, configs, results)

    def test_distilled_draft_accepts_and_stays_identical(self):
        from repro.llm import PretrainConfig
        model, draft = tiny_base(seed=8), tiny_draft(seed=9)
        states, prompts = ragged_states(model, [4, 6, 9])
        distill_draft(draft, model, prompts, max_new_tokens=12,
                      pretrain=PretrainConfig(steps=120, seed=3))
        configs = [GenerationConfig(max_new_tokens=12, temperature=0.0)
                   for _ in states]
        spec = SpeculativeDecoder(draft, max_draft=4, threshold=0.1)
        results, scheduler = run_speculative(model, states, prompts,
                                             configs, spec)
        assert_matches_sequential(model, states, configs, results)
        assert scheduler.draft_accepted > 0   # distillation pays off

    def test_mixed_eligibility_batch(self):
        """Greedy+prompt sequences speculate; sampled sequences and those
        admitted without prompt_ids share the round untouched."""
        model, draft = tiny_base(seed=10), tiny_draft(seed=11)
        states, prompts = ragged_states(model, [5, 7, 6])
        configs = [GenerationConfig(max_new_tokens=9, temperature=0.0),
                   GenerationConfig(max_new_tokens=9, temperature=0.8,
                                    seed=5),
                   GenerationConfig(max_new_tokens=9, temperature=0.0)]
        scheduler = DecodeScheduler(
            model, speculative=SpeculativeDecoder(draft, max_draft=3,
                                                  threshold=0.0))
        sequences = [
            scheduler.admit(states[0], configs[0], prompt_ids=prompts[0]),
            scheduler.admit(states[1], configs[1], prompt_ids=prompts[1]),
            scheduler.admit(states[2], configs[2]),   # no prompt_ids
        ]
        scheduler.run()
        assert_matches_sequential(model, states, configs,
                                  [seq.token_ids() for seq in sequences])

    def test_eos_mid_draft_retires_exactly(self):
        model, draft = tiny_base(seed=12), tiny_draft(seed=13)
        states, prompts = ragged_states(model, [5, 8])
        free = GenerationConfig(max_new_tokens=8, temperature=0.0)
        reference = decode_from(model, states[0], free)
        eos_id = int(reference[3])
        configs = [GenerationConfig(max_new_tokens=8, temperature=0.0,
                                    eos_id=eos_id), free]
        spec = SpeculativeDecoder(draft, max_draft=6, threshold=0.0)
        scheduler = DecodeScheduler(model, speculative=spec)
        sequences = [scheduler.admit(state, config, prompt_ids=ids)
                     for state, config, ids in zip(states, configs, prompts)]
        scheduler.run()
        assert sequences[0].finish_reason == "eos"
        assert_matches_sequential(model, states, configs,
                                  [seq.token_ids() for seq in sequences])

    def test_context_budget_respected(self):
        """Drafting never feeds the base model past its context window."""
        model, draft = tiny_base(max_seq_len=16, seed=14), \
            tiny_draft(max_seq_len=16, seed=15)
        states, prompts = ragged_states(model, [12, 3])
        configs = [GenerationConfig(max_new_tokens=50, temperature=0.0),
                   GenerationConfig(max_new_tokens=9, temperature=0.0)]
        spec = SpeculativeDecoder(draft, max_draft=6, threshold=0.0)
        results, _ = run_speculative(model, states, prompts, configs, spec)
        assert_matches_sequential(model, states, configs, results)

    def test_mid_flight_admission(self):
        model, draft = tiny_base(seed=16), tiny_draft(seed=17)
        states, prompts = ragged_states(model, [4, 9, 6])
        configs = [GenerationConfig(max_new_tokens=7, temperature=0.0)
                   for _ in states]
        spec = SpeculativeDecoder(draft, max_draft=3, threshold=0.0)
        scheduler = DecodeScheduler(model, speculative=spec)
        sequences = [scheduler.admit(states[i], configs[i],
                                     prompt_ids=prompts[i]) for i in (0, 1)]
        scheduler.decode_round()
        scheduler.decode_round()
        sequences.append(scheduler.admit(states[2], configs[2],
                                         prompt_ids=prompts[2]))
        scheduler.run()
        assert_matches_sequential(model, states, configs,
                                  [seq.token_ids() for seq in sequences])

    def test_impossible_threshold_degenerates_to_plain(self):
        model, draft = tiny_base(seed=18), tiny_draft(seed=19)
        states, prompts = ragged_states(model, [5, 7])
        configs = [GenerationConfig(max_new_tokens=6, temperature=0.0)
                   for _ in states]
        spec = SpeculativeDecoder(draft, max_draft=4, threshold=2.0)
        results, scheduler = run_speculative(model, states, prompts,
                                             configs, spec)
        assert_matches_sequential(model, states, configs, results)
        assert scheduler.draft_proposed == 0
        assert scheduler.spec_rounds == 0
        assert scheduler.forwards == scheduler.rounds


class TestCounters:
    def test_counter_invariants(self):
        model, draft = tiny_base(seed=20), tiny_draft(seed=21)
        states, prompts = ragged_states(model, [4, 6, 8])
        configs = [GenerationConfig(max_new_tokens=8, temperature=0.0)
                   for _ in states]
        spec = SpeculativeDecoder(draft, max_draft=4, threshold=0.0)
        _, scheduler = run_speculative(model, states, prompts, configs,
                                       spec)
        assert scheduler.draft_proposed > 0
        assert 0 <= scheduler.draft_accepted <= scheduler.draft_proposed
        assert 0 < scheduler.spec_rounds <= scheduler.rounds
        assert scheduler.forwards == scheduler.rounds
        assert scheduler.draft_forwards > 0
        # One token absorbed at admission per sequence; the rest in rounds.
        assert scheduler.tokens_emitted == (8 * 3) - 3

    def test_draft_model_pinned_to_eval(self):
        draft = tiny_draft()
        draft.train()
        SpeculativeDecoder(draft)
        assert not draft.training

    def test_base_model_mode_restored(self):
        model, draft = tiny_base(seed=22), tiny_draft(seed=23)
        model.train()
        states, prompts = ragged_states(model, [4])
        configs = [GenerationConfig(max_new_tokens=5, temperature=0.0)]
        spec = SpeculativeDecoder(draft, max_draft=3, threshold=0.0)
        run_speculative(model, states, prompts, configs, spec)
        assert model.training


class TestTruncate:
    def make_cache(self, model, length=7):
        ids = RNG.integers(1, VOCAB, size=length).astype(np.int64)
        _, cache = model(ids[None], use_cache=True)
        return cache

    def test_truncate_copies_by_default(self):
        cache = self.make_cache(tiny_base())
        short = cache.truncate(4)
        assert short.seq_len == 4
        assert cache.seq_len == 7                       # source untouched
        for index in range(cache.n_layers):
            kept_k, _ = short.layer(index)
            src_k, _ = cache.layer(index)
            np.testing.assert_array_equal(kept_k.data,
                                          src_k.data[:, :, :4, :])
            assert not np.shares_memory(kept_k.data, src_k.data)

    def test_truncate_views_on_request(self):
        cache = self.make_cache(tiny_base())
        short = cache.truncate(4, copy=False)
        assert short.seq_len == 4
        for index in range(cache.n_layers):
            kept_k, kept_v = short.layer(index)
            src_k, src_v = cache.layer(index)
            assert np.shares_memory(kept_k.data, src_k.data)
            assert np.shares_memory(kept_v.data, src_v.data)

    def test_truncate_full_length_returns_self(self):
        cache = self.make_cache(tiny_base())
        assert cache.truncate(cache.seq_len) is cache

    @pytest.mark.parametrize("length", [0, 8, -1])
    def test_truncate_rejects_bad_lengths(self, length):
        cache = self.make_cache(tiny_base())
        with pytest.raises(ValueError, match="truncate"):
            cache.truncate(length)

    def test_layers_stay_consistent(self):
        cache = self.make_cache(tiny_base())
        short = cache.truncate(3)
        assert isinstance(short, KVCache)
        assert short.n_layers == cache.n_layers
        assert short.batch_size == 1
