"""The weight-quantized execution path: numerics, kernel, conversion."""

import copy

import numpy as np
import pytest

from repro.ag import (
    Linear,
    Module,
    Parameter,
    QuantizedLinear,
    Tensor,
    iter_modules,
    quantize_groups,
)
from repro.llm import (
    QUANTIZATION_BITS,
    TinyCausalLM,
    quantization_error,
    quantization_stats,
    quantize_array,
    quantize_model,
    quantize_model_weights,
)
from repro.llm.transformer import LMConfig

RNG = np.random.default_rng(11)


def tiny_model(vocab=19, seed=0):
    return TinyCausalLM(LMConfig(vocab_size=vocab, d_model=16, n_heads=2,
                                 n_layers=2, d_ff=24, max_seq_len=48),
                        seed=seed)


def reference_quantize_array(weights, bits=4, group_size=32):
    """The historical per-group Python loop, verbatim (regression oracle)."""
    weights = np.asarray(weights, dtype=np.float32)
    q_max = 2 ** (bits - 1) - 1
    out = np.empty_like(weights)
    rows = weights.shape[0]
    for start in range(0, rows, group_size):
        block = weights[start:start + group_size]
        scale = np.abs(block).max() / q_max
        if scale == 0.0:
            out[start:start + group_size] = 0.0
            continue
        quantized = np.clip(np.round(block / scale), -q_max - 1, q_max)
        out[start:start + group_size] = quantized * scale
    return out


class TestQuantizeArrayVectorized:
    @pytest.mark.parametrize("rows,cols,group_size,bits", [
        (64, 32, 32, 4),      # exact multiple
        (70, 16, 32, 8),      # ragged tail
        (33, 7, 16, 2),       # ragged tail, extreme bits
        (5, 3, 8, 4),         # single partial group
        (96, 48, 31, 6),      # group size not a power of two
        (1, 1, 32, 4),        # degenerate
    ])
    def test_bit_identical_to_loop(self, rows, cols, group_size, bits):
        weights = RNG.normal(size=(rows, cols)).astype(np.float32)
        fast = quantize_array(weights, bits, group_size)
        slow = reference_quantize_array(weights, bits, group_size)
        assert fast.dtype == np.float32
        assert (fast == slow).all()

    def test_all_zero_group_stays_zero(self):
        weights = RNG.normal(size=(64, 8)).astype(np.float32)
        weights[:32] = 0.0
        out = quantize_array(weights, 4, 32)
        assert (out[:32] == 0.0).all()
        assert (out == reference_quantize_array(weights, 4, 32)).all()

    def test_tail_group_scale_ignores_padding(self):
        # 40 rows, group 32: the 8-row tail's scale must come from those
        # 8 rows only, not from anything the vectorized reshape padded in.
        weights = np.ones((40, 4), dtype=np.float32)
        weights[32:] = 0.5
        _, scales = quantize_groups(weights, 8, 32)
        assert scales[1] == np.float32(0.5 / 127)

    def test_grid_error_bounded_by_half_scale(self):
        weights = RNG.normal(size=(128, 24)).astype(np.float32)
        for bits in (2, 4, 8):
            codes, scales = quantize_groups(weights, bits, 32)
            deq = codes.astype(np.float32) * np.repeat(scales, 32)[:, None]
            for g in range(4):
                block_err = np.abs(deq[g * 32:(g + 1) * 32]
                                   - weights[g * 32:(g + 1) * 32]).max()
                assert block_err <= scales[g] / 2 + 1e-7

    def test_error_monotone_in_bits(self):
        weights = RNG.normal(size=(96, 40)).astype(np.float32)
        errors = [quantization_error(weights, bits) for bits in (2, 4, 6, 8)]
        assert errors == sorted(errors, reverse=True)

    def test_validation(self):
        weights = RNG.normal(size=(8, 4)).astype(np.float32)
        with pytest.raises(ValueError):
            quantize_array(weights, bits=1)
        with pytest.raises(ValueError):
            quantize_array(weights, bits=9)
        with pytest.raises(ValueError):
            quantize_array(weights, group_size=0)
        with pytest.raises(ValueError):
            quantize_array(weights.reshape(-1))


class TestQuantizedLinearKernel:
    @pytest.mark.parametrize("bits,in_f,out_f", [
        (8, 64, 96), (4, 64, 96),
        (8, 97, 33), (4, 97, 33),     # odd in_features exercises packing pad
    ])
    def test_fused_matches_reference(self, bits, in_f, out_f):
        linear = Linear(in_f, out_f)
        linear.weight.data = RNG.normal(size=(in_f, out_f)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=bits, group_size=32)
        x = RNG.normal(size=(3, 2, in_f)).astype(np.float32)
        fused = layer.affine_numpy(x)
        reference = layer.reference_forward(x)
        scale = max(1.0, float(np.abs(reference).max()))
        assert float(np.abs(fused - reference).max()) <= 2e-4 * scale

    @pytest.mark.parametrize("bits", [8, 4])
    def test_dequantized_weight_matches_quantize_array(self, bits):
        linear = Linear(80, 40)
        linear.weight.data = RNG.normal(size=(80, 40)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=bits, group_size=32)
        expected = quantize_array(linear.weight.data, bits, 32)
        assert (layer.dequantized_weight() == expected).all()

    def test_int4_pack_round_trip(self):
        linear = Linear(33, 17)   # odd input dim: one padding nibble
        linear.weight.data = RNG.normal(size=(33, 17)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=4, group_size=8)
        codes, scales = quantize_groups(linear.weight.data, 4, 8)
        row_scales = np.repeat(scales, 8)[:33]
        assert (layer.dequantized_weight()
                == codes.astype(np.float32) * row_scales[:, None]).all()
        assert layer.qweight.shape == (17, 17)   # ceil(33 / 2) packed bytes
        assert layer.qweight.dtype == np.uint8

    @pytest.mark.parametrize("bits", [8, 4])
    def test_batch_layout_bitwise_determinism(self, bits):
        # A (B, 1, d) decode batch must produce, per row, exactly the bits
        # that row gets when served alone — the serving stack's byte-identity
        # contract across batch compositions rests on this.
        linear = Linear(128, 256)
        linear.weight.data = RNG.normal(size=(128, 256)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=bits, group_size=32)
        x = RNG.normal(size=(8, 1, 128)).astype(np.float32)
        batched = layer.affine_numpy(x)
        for i in range(8):
            assert (layer.affine_numpy(x[i:i + 1]) == batched[i:i + 1]).all()

    def test_weight_is_frozen_but_input_grads_flow(self):
        linear = Linear(48, 32)
        linear.weight.data = RNG.normal(size=(48, 32)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=8, group_size=16)
        assert layer.parameters() == [layer.bias]   # no weight Parameter
        x = Tensor(RNG.normal(size=(2, 5, 48)).astype(np.float32),
                   requires_grad=True)
        layer(x).sum().backward()
        expected = np.ones((2, 5, 32), np.float32) @ layer.dequantized_weight().T
        assert np.allclose(x.grad, expected, atol=1e-4)
        assert np.allclose(layer.bias.grad, 10.0)

    def test_bias_none_supported(self):
        linear = Linear(24, 12, bias=False)
        linear.weight.data = RNG.normal(size=(24, 12)).astype(np.float32)
        layer = QuantizedLinear.from_linear(linear, bits=8, group_size=8)
        x = RNG.normal(size=(4, 24)).astype(np.float32)
        assert np.allclose(layer.affine_numpy(x), layer.reference_forward(x),
                           atol=1e-4)

    def test_byte_accounting(self):
        linear = Linear(64, 128)
        int8 = QuantizedLinear.from_linear(linear, bits=8, group_size=32)
        int4 = QuantizedLinear.from_linear(linear, bits=4, group_size=32)
        assert int8.dense_nbytes == 64 * 128 * 4
        assert int8.weight_nbytes == 64 * 128 + 2 * 4      # codes + 2 scales
        assert int4.weight_nbytes == 32 * 128 + 2 * 4      # two per byte


class TestModelConversion:
    def test_converts_every_linear_and_stays_float_elsewhere(self):
        model = tiny_model()
        n_linear = sum(isinstance(m, Linear) for m in iter_modules(model))
        converted = quantize_model(model, "int8")
        assert converted == n_linear
        assert not any(isinstance(m, Linear) for m in iter_modules(model))
        # embeddings and LayerNorm untouched
        assert model.token_embedding.weight.data.dtype == np.float32
        stats = quantization_stats(model)
        assert stats["quantized_layers"] == converted
        assert stats["weight_bytes_saved"] > 0

    def test_idempotent_and_mismatch_guarded(self):
        model = tiny_model()
        first = quantize_model(model, "int4", 32)
        assert first > 0
        assert quantize_model(model, "int4", 32) == 0
        with pytest.raises(ValueError):
            quantize_model(model, "int8", 32)
        with pytest.raises(ValueError):
            quantize_model(model, "int4", 16)
        with pytest.raises(ValueError):
            quantize_model(tiny_model(), "int2")

    def test_tied_and_dict_held_submodules_convert_once(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.shared = Linear(8, 8)
                self.alias = self.shared                  # tied weights
                self.heads = {"a": Linear(8, 4), "b": Linear(8, 4)}

        holder = Holder()
        assert quantize_model(holder, "int8", 4) == 3     # shared counts once
        assert holder.alias is holder.shared
        assert isinstance(holder.shared, QuantizedLinear)
        assert all(isinstance(h, QuantizedLinear)
                   for h in holder.heads.values())

    def test_fake_quant_walk_dedupes_shared_weights(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.shared = Linear(8, 8)
                self.alias = self.shared
                self.heads = {"a": Linear(8, 4)}

        holder = Holder()
        holder.shared.weight.data = RNG.normal(size=(8, 8)).astype(np.float32)
        once = quantize_array(holder.shared.weight.data, 4, 4)
        count = quantize_model_weights(holder, bits=4, group_size=4)
        assert count == 2      # shared visited once, dict head found
        # visited once: the weight sits on the 4-bit grid of the *original*
        # values, not a grid-of-a-grid from double application
        assert (holder.shared.weight.data == once).all()

    def test_quantized_model_forward_close_to_fake_quant(self):
        model = tiny_model(seed=3)
        fake = copy.deepcopy(model)
        quantize_model_weights(fake, bits=8, group_size=32)
        quantize_model(model, "int8", 32)
        ids = np.array([[1, 2, 3, 4]])
        real_logits = model.forward(ids).data
        fake_logits = fake.forward(ids).data
        assert np.allclose(real_logits, fake_logits, atol=1e-3)

    def test_modes_match_registry(self):
        assert QUANTIZATION_BITS == {"int8": 8, "int4": 4}


class TestIterModules:
    def test_dedup_and_containers(self):
        class Inner(Module):
            def __init__(self):
                super().__init__()
                self.lin = Linear(4, 4)

        class Outer(Module):
            def __init__(self):
                super().__init__()
                self.inner = Inner()
                self.twice = self.inner
                self.stack = [Linear(4, 4), (Linear(4, 4),)]
                self.table = {"x": Linear(4, 4)}
                self.p = Parameter(np.zeros(3, np.float32))

        outer = Outer()
        found = list(iter_modules(outer))
        assert len(found) == len(set(map(id, found)))
        assert sum(isinstance(m, Linear) for m in found) == 4
        assert found[0] is outer

    def test_eval_reaches_dict_held_modules(self):
        class Holder(Module):
            def __init__(self):
                super().__init__()
                self.table = {"x": Linear(2, 2)}

        holder = Holder()
        holder.eval()
        assert holder.table["x"].training is False
