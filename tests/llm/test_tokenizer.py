"""Tests for the word tokenizer."""

import numpy as np
import pytest

from repro.llm.tokenizer import BOS, EOS, PAD, SEP, UNK, Tokenizer


@pytest.fixture
def tok():
    return Tokenizer(["alpha", "beta", "gamma"])


class TestConstruction:
    def test_specials_reserved_first(self, tok):
        assert tok.pad_id == 0
        assert tok.decode([tok.bos_id], skip_special=False) == BOS

    def test_vocab_size_counts_specials(self, tok):
        assert tok.vocab_size == 5 + 3

    def test_duplicate_words_deduped(self):
        t = Tokenizer(["a", "b", "a"])
        assert t.vocab_size == 5 + 2

    def test_special_collision_rejected(self):
        with pytest.raises(ValueError):
            Tokenizer(["word", PAD])


class TestEncodeDecode:
    def test_roundtrip(self, tok):
        ids = tok.encode("alpha gamma beta")
        assert tok.decode(ids) == "alpha gamma beta"

    def test_encode_returns_int64(self, tok):
        assert tok.encode("alpha").dtype == np.int64

    def test_unknown_word_maps_to_unk(self, tok):
        ids = tok.encode("alpha zzz")
        assert ids[1] == tok.unk_id

    def test_bos_eos_flags(self, tok):
        ids = tok.encode("alpha", add_bos=True, add_eos=True)
        assert ids[0] == tok.bos_id and ids[-1] == tok.eos_id

    def test_decode_skips_specials_by_default(self, tok):
        ids = tok.encode("alpha", add_eos=True)
        assert tok.decode(ids) == "alpha"

    def test_decode_keeps_specials_on_request(self, tok):
        ids = tok.encode("alpha", add_eos=True)
        assert tok.decode(ids, skip_special=False) == f"alpha {EOS}"

    def test_empty_text(self, tok):
        assert tok.encode("").size == 0
        assert tok.decode([]) == ""


class TestLookup:
    def test_token_id_roundtrip(self, tok):
        assert tok.decode([tok.token_id("beta")]) == "beta"

    def test_token_id_unknown_raises(self, tok):
        with pytest.raises(KeyError):
            tok.token_id("nope")

    def test_contains(self, tok):
        assert "alpha" in tok
        assert "nope" not in tok

    def test_sep_token_exists(self, tok):
        assert tok.decode([tok.sep_id], skip_special=False) == SEP
        assert UNK  # exported
