"""Tests for incremental decoding: the KV cache and its equivalence.

The one property everything rests on: decoding with the cache must emit
token-for-token identical ids to the full-reforward reference loop, for
every conditioning mode (plain, soft prompt, KV prefix, both) and for both
greedy and seeded sampling.
"""

import numpy as np
import pytest

from repro.ag import Tensor
from repro.llm import (
    BatchedKVCache,
    GenerationConfig,
    KVCache,
    TinyCausalLM,
    decode_from,
    generate,
    prefill,
)
from repro.llm.attention import MultiHeadSelfAttention
from repro.llm.transformer import LMConfig

RNG = np.random.default_rng(9)


def tiny_model(max_seq_len=48, seed=0):
    return TinyCausalLM(LMConfig(vocab_size=23, d_model=16, n_heads=2,
                                 n_layers=2, d_ff=24,
                                 max_seq_len=max_seq_len), seed=seed)


def make_prefix(model, length=3, seed=4):
    rng = np.random.default_rng(seed)
    heads = model.config.n_heads
    d_head = model.config.d_model // heads
    return [(Tensor(rng.normal(size=(1, heads, length, d_head))),
             Tensor(rng.normal(size=(1, heads, length, d_head))))
            for _ in range(model.config.n_layers)]


def make_soft_prompt(model, rows=4, seed=5):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 1.0, size=(rows, model.config.d_model)) \
              .astype(np.float32)


class TestAttentionPastKV:
    def test_incremental_matches_full_last_position(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(1))
        x = Tensor(RNG.normal(size=(1, 6, 8)))
        full = attn(x).data
        first = Tensor(x.data[:, :5])
        _, past = attn(first, use_cache=True)
        step_out, new = attn(Tensor(x.data[:, 5:6]), past_kv=past,
                             use_cache=True)
        np.testing.assert_allclose(step_out.data[0, 0], full[0, 5], atol=1e-5)
        assert new[0].shape == (1, 2, 6, 4)

    def test_cache_excludes_prefix(self):
        """The returned cache accumulates only real positions — the prefix
        is constant conditioning the attention re-attaches every call."""
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        pk = Tensor(RNG.normal(size=(1, 2, 3, 4)))
        pv = Tensor(RNG.normal(size=(1, 2, 3, 4)))
        _, kv = attn(x, prefix_kv=(pk, pv), use_cache=True)
        assert kv[0].shape[2] == 4                      # 4 tokens, no prefix

    def test_prefix_and_past_compose(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(3))
        x = Tensor(RNG.normal(size=(1, 5, 8)))
        prefix = (Tensor(RNG.normal(size=(1, 2, 3, 4))),
                  Tensor(RNG.normal(size=(1, 2, 3, 4))))
        full = attn(x, prefix_kv=prefix).data
        _, past = attn(Tensor(x.data[:, :4]), prefix_kv=prefix,
                       use_cache=True)
        step, _ = attn(Tensor(x.data[:, 4:5]), prefix_kv=prefix,
                       past_kv=past, use_cache=True)
        np.testing.assert_allclose(step.data[0, 0], full[0, 4], atol=1e-5)

    def test_past_shape_validated(self):
        attn = MultiHeadSelfAttention(8, 2)
        x = Tensor(RNG.normal(size=(1, 1, 8)))
        bad = (Tensor(RNG.normal(size=(1, 3, 2, 4))),
               Tensor(RNG.normal(size=(1, 3, 2, 4))))    # wrong head count
        with pytest.raises(ValueError):
            attn(x, past_kv=bad)

    def test_causal_mask_with_past(self):
        mask = MultiHeadSelfAttention._causal_mask(1, 2, past_len=5)
        assert mask.shape == (1, 8)
        assert not mask.any()                # one new token sees everything
        mask = MultiHeadSelfAttention._causal_mask(2, 0, past_len=3)
        assert mask.shape == (2, 5)
        assert mask[0, 4] and not mask[1, 4]  # only own future blocked

    def test_causal_mask_backward_compatible(self):
        mask = MultiHeadSelfAttention._causal_mask(3, 2)
        assert mask.shape == (3, 5)
        assert not mask[:, :2].any()


class TestKVCacheContainer:
    def _cache(self, lengths=(4, 4)):
        return KVCache([(Tensor(np.zeros((1, 2, t, 4))),
                         Tensor(np.zeros((1, 2, t, 4)))) for t in lengths])

    def test_properties(self):
        cache = self._cache()
        assert cache.n_layers == len(cache) == 2
        assert cache.seq_len == 4
        assert cache.batch_size == 1
        assert cache.memory_bytes() == 2 * 2 * 1 * 2 * 4 * 4 * 4
        assert "seq_len=4" in repr(cache)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            self._cache(lengths=(4, 5))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            KVCache([])


class TestBatchedKVCacheContainer:
    def _cache(self, seq_len, n_layers=2, fill=0.0):
        return KVCache([(Tensor(np.full((1, 2, seq_len, 4), fill)),
                         Tensor(np.full((1, 2, seq_len, 4), fill)))
                        for _ in range(n_layers)])

    def test_stack_split_round_trips_by_reference(self):
        """Member caches are value-immutable, so stack/split move
        references, never copy or pad tensors."""
        members = [self._cache(length, fill=length) for length in (3, 7, 5)]
        batched = BatchedKVCache.stack(members)
        assert batched.split() == members
        for i, member in enumerate(members):
            assert batched.sequence(i) is member

    def test_ragged_lengths_reported(self):
        batched = BatchedKVCache.stack([self._cache(t) for t in (3, 7, 5)])
        assert batched.batch_size == len(batched) == 3
        assert batched.n_layers == 2
        np.testing.assert_array_equal(batched.lengths, [3, 7, 5])
        assert "lengths=[3, 7, 5]" in repr(batched)

    def test_layer_slices_align_with_sequences(self):
        members = [self._cache(t, fill=t) for t in (2, 4)]
        batched = BatchedKVCache.stack(members)
        slices = batched.layer_slices(1)
        assert len(slices) == 2
        for member, (key, _) in zip(members, slices):
            assert key is member.layer(1)[0]

    def test_memory_is_sum_of_members(self):
        members = [self._cache(t) for t in (3, 5)]
        batched = BatchedKVCache.stack(members)
        assert batched.memory_bytes() == sum(m.memory_bytes()
                                             for m in members)

    def test_layer_count_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same number of layers"):
            BatchedKVCache.stack([self._cache(3, n_layers=2),
                                  self._cache(3, n_layers=3)])

    def test_multi_sequence_member_rejected(self):
        wide = KVCache([(Tensor(np.zeros((2, 2, 3, 4))),
                         Tensor(np.zeros((2, 2, 3, 4))))])
        with pytest.raises(ValueError, match="batch 1"):
            BatchedKVCache.stack([wide])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BatchedKVCache.stack([])

    def test_decode_round_extends_every_sequence_by_one(self):
        model = tiny_model()
        caches = []
        for length in (3, 6, 4):
            _, cache = model(np.arange(1, 1 + length)[None, :],
                             use_cache=True)
            caches.append(cache)
        batched = BatchedKVCache.stack(caches)
        _, extended = model.decode_round(np.array([1, 2, 3]), batched)
        np.testing.assert_array_equal(extended.lengths, [4, 7, 5])
        # The originals are untouched (value-immutable members).
        np.testing.assert_array_equal(batched.lengths, [3, 6, 4])
        for old, new in zip(batched.split(), extended.split()):
            np.testing.assert_array_equal(
                new.layer(0)[0].data[:, :, :old.seq_len],
                old.layer(0)[0].data)

    def test_decode_round_respects_max_seq_len(self):
        model = tiny_model(max_seq_len=6)
        _, full = model(np.array([[1, 2, 3, 4, 5, 6]]), use_cache=True)
        _, short = model(np.array([[1, 2]]), use_cache=True)
        with pytest.raises(ValueError, match="max_seq_len"):
            model.decode_round(np.array([1, 1]),
                               BatchedKVCache.stack([full, short]))

    def test_decode_round_token_count_checked(self):
        model = tiny_model()
        _, cache = model(np.array([[1, 2]]), use_cache=True)
        with pytest.raises(ValueError, match="cached sequences"):
            model.decode_round(np.array([1, 2]),
                               BatchedKVCache.stack([cache]))


class TestModelPastKV:
    def test_incremental_logits_match_full(self):
        model = tiny_model()
        ids = np.array([[3, 7, 1, 4, 9]])
        full = model(ids).data
        _, cache = model(ids[:, :3], use_cache=True)
        for t in (3, 4):
            logits, cache = model(ids[:, t:t + 1], past_kv=cache,
                                  use_cache=True)
            np.testing.assert_allclose(logits.data[0, 0], full[0, t],
                                       atol=1e-4)
        assert cache.seq_len == 5

    def test_layer_count_checked(self):
        model = tiny_model()
        one_layer = KVCache([(Tensor(np.zeros((1, 2, 2, 8))),
                              Tensor(np.zeros((1, 2, 2, 8))))])
        with pytest.raises(ValueError):
            model(np.array([[1]]), past_kv=one_layer)

    def test_max_seq_len_includes_past(self):
        model = tiny_model(max_seq_len=6)
        _, cache = model(np.array([[1, 2, 3, 4, 5]]), use_cache=True)
        model(np.array([[6]]), past_kv=cache, use_cache=True)  # fits: 6
        _, cache = model(np.array([[6]]), past_kv=cache, use_cache=True)
        with pytest.raises(ValueError):
            model(np.array([[7]]), past_kv=cache)              # would be 7


class TestGenerateEquivalence:
    @pytest.mark.parametrize("temperature", [0.0, 0.9])
    @pytest.mark.parametrize("conditioning",
                             ["plain", "soft", "prefix", "both"])
    def test_cached_matches_uncached(self, temperature, conditioning):
        model = tiny_model(seed=2)
        kwargs = {}
        if conditioning in ("soft", "both"):
            kwargs["soft_prompt"] = make_soft_prompt(model)
        if conditioning in ("prefix", "both"):
            kwargs["prefix_kv"] = make_prefix(model)
        config = GenerationConfig(max_new_tokens=12, temperature=temperature,
                                  seed=13)
        reference = generate(model, np.array([2, 5, 8]), config,
                             use_cache=False, **kwargs)
        cached = generate(model, np.array([2, 5, 8]), config,
                          use_cache=True, **kwargs)
        np.testing.assert_array_equal(reference, cached)
        assert reference.size == 12

    def test_eos_stops_cached_path(self):
        model = tiny_model()
        greedy = GenerationConfig(max_new_tokens=1, temperature=0.0)
        first = int(generate(model, np.array([1]), greedy)[0])
        config = GenerationConfig(max_new_tokens=10, temperature=0.0,
                                  eos_id=first)
        assert generate(model, np.array([1]), config).size == 0

    def test_budget_equivalence_near_context_edge(self):
        """Both paths must stop at the same point near max_seq_len."""
        model = tiny_model(max_seq_len=12)
        config = GenerationConfig(max_new_tokens=100, temperature=0.0)
        a = generate(model, np.arange(1, 6), config, use_cache=False)
        b = generate(model, np.arange(1, 6), config, use_cache=True)
        np.testing.assert_array_equal(a, b)
        assert 5 + a.size == 12      # both fill the context exactly


class TestOverlongPromptRejected:
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_prompt_filling_context_raises(self, use_cache):
        model = tiny_model(max_seq_len=8)
        with pytest.raises(ValueError, match="no room to generate"):
            generate(model, np.arange(1, 9), use_cache=use_cache)

    @pytest.mark.parametrize("use_cache", [True, False])
    def test_soft_prompt_counts_against_budget(self, use_cache):
        model = tiny_model(max_seq_len=8)
        soft = make_soft_prompt(model, rows=5)
        with pytest.raises(ValueError, match="no room to generate"):
            generate(model, np.arange(1, 4), soft_prompt=soft,
                     use_cache=use_cache)

    def test_prefill_rejects_overlong_prompt(self):
        model = tiny_model(max_seq_len=8)
        with pytest.raises(ValueError, match="no room to generate"):
            prefill(model, np.arange(1, 9))

    def test_one_token_of_room_is_accepted(self):
        model = tiny_model(max_seq_len=8)
        out = generate(model, np.arange(1, 8),
                       GenerationConfig(max_new_tokens=5, temperature=0.0))
        assert out.size == 1


class TestPrefillDecodeAPI:
    def test_state_reusable_across_decodes(self):
        model = tiny_model()
        soft = make_soft_prompt(model)
        state = prefill(model, np.array([4, 2, 6]), soft_prompt=soft)
        length_before = state.cache.seq_len
        config = GenerationConfig(max_new_tokens=8, temperature=0.7, seed=3)
        first = decode_from(model, state, config)
        second = decode_from(model, state, config)
        np.testing.assert_array_equal(first, second)
        assert state.cache.seq_len == length_before   # state untouched

    def test_different_seeds_diverge_from_one_prefill(self):
        model = tiny_model()
        state = prefill(model, np.array([4, 2, 6]))
        outs = [decode_from(model, state,
                            GenerationConfig(max_new_tokens=10,
                                             temperature=1.5, seed=s))
                for s in range(4)]
        assert any(not np.array_equal(outs[0], o) for o in outs[1:])

    def test_prefill_matches_generate(self):
        model = tiny_model()
        config = GenerationConfig(max_new_tokens=6, temperature=0.0)
        state = prefill(model, np.array([1, 2, 3]))
        assert state.n_tokens == 3 and state.virtual_len == 0
        assert state.seq_len == 3
        np.testing.assert_array_equal(
            decode_from(model, state, config),
            generate(model, np.array([1, 2, 3]), config))

    def test_prefix_conditioning_recorded_on_state(self):
        """decode_from re-attaches the prefix the prefill saw — the caller
        cannot accidentally decode with mismatched conditioning."""
        model = tiny_model()
        prefix = make_prefix(model)
        config = GenerationConfig(max_new_tokens=6, temperature=0.0)
        state = prefill(model, np.array([1, 2, 3]), prefix_kv=prefix)
        assert state.prefix_kv is prefix
        np.testing.assert_array_equal(
            decode_from(model, state, config),
            generate(model, np.array([1, 2, 3]), config, prefix_kv=prefix))

    def test_prefill_counts_soft_prompt_positions(self):
        model = tiny_model()
        state = prefill(model, np.array([1, 2]),
                        soft_prompt=make_soft_prompt(model, rows=4))
        assert state.virtual_len == 4
        assert state.seq_len == 6

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            prefill(tiny_model(), np.array([], dtype=np.int64))

    def test_training_mode_restored(self):
        model = tiny_model()
        model.train()
        state = prefill(model, np.array([1, 2]))
        assert model.training
        decode_from(model, state, GenerationConfig(max_new_tokens=2))
        assert model.training
