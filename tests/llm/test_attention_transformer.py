"""Tests for attention (incl. KV prefixes) and the transformer LM."""

import numpy as np
import pytest

from repro.ag import Tensor
from repro.llm.attention import MultiHeadSelfAttention
from repro.llm.transformer import LMConfig, TinyCausalLM

RNG = np.random.default_rng(3)


def tiny_config(**overrides):
    defaults = dict(vocab_size=23, d_model=16, n_heads=2, n_layers=2,
                    d_ff=24, max_seq_len=32)
    defaults.update(overrides)
    return LMConfig(**defaults)


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadSelfAttention(16, 4)
        out = attn(Tensor(RNG.normal(size=(2, 5, 16))))
        assert out.shape == (2, 5, 16)

    def test_rejects_bad_head_split(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_causality(self):
        """Changing a future token must not affect earlier outputs."""
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(1))
        x = RNG.normal(size=(1, 6, 8)).astype(np.float32)
        base = attn(Tensor(x)).data.copy()
        x2 = x.copy()
        x2[0, 5] += 10.0
        changed = attn(Tensor(x2)).data
        np.testing.assert_allclose(changed[0, :5], base[0, :5], atol=1e-5)
        assert not np.allclose(changed[0, 5], base[0, 5])

    def test_prefix_attended_by_all_positions(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(2))
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        base = attn(x).data.copy()
        pk = Tensor(RNG.normal(size=(1, 2, 3, 4)))
        pv = Tensor(RNG.normal(size=(1, 2, 3, 4)) * 5.0)
        out = attn(x, prefix_kv=(pk, pv)).data
        # Every position (including position 0) shifts due to the prefix.
        for t in range(4):
            assert not np.allclose(out[0, t], base[0, t])

    def test_prefix_shape_validation(self):
        attn = MultiHeadSelfAttention(8, 2)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        bad_k = Tensor(RNG.normal(size=(1, 3, 3, 4)))  # wrong head count
        with pytest.raises(ValueError):
            attn(x, prefix_kv=(bad_k, bad_k))

    def test_prefix_kv_shape_mismatch(self):
        attn = MultiHeadSelfAttention(8, 2)
        x = Tensor(RNG.normal(size=(1, 4, 8)))
        pk = Tensor(RNG.normal(size=(1, 2, 3, 4)))
        pv = Tensor(RNG.normal(size=(1, 2, 2, 4)))
        with pytest.raises(ValueError):
            attn(x, prefix_kv=(pk, pv))

    def test_causal_mask_structure(self):
        mask = MultiHeadSelfAttention._causal_mask(3, 2)
        assert mask.shape == (3, 5)
        assert not mask[:, :2].any()            # prefix always visible
        assert mask[0, 3] and mask[0, 4]        # future blocked
        assert not mask[2, 4]                   # self visible

    def test_key_padding_mask_matches_unpadded_forward(self):
        """Real positions of a right-padded input compute exactly what the
        shorter unpadded forward would."""
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(4))
        x = RNG.normal(size=(1, 5, 8)).astype(np.float32)
        short = attn(Tensor(x[:, :3])).data
        mask = np.array([[False, False, False, True, True]])
        padded = attn(Tensor(x), key_padding_mask=mask).data
        np.testing.assert_allclose(padded[0, :3], short[0], atol=1e-6)

    def test_key_padding_mask_composes_with_prefix(self):
        attn = MultiHeadSelfAttention(8, 2, rng=np.random.default_rng(5))
        prefix = (Tensor(RNG.normal(size=(1, 2, 3, 4))),
                  Tensor(RNG.normal(size=(1, 2, 3, 4))))
        x = RNG.normal(size=(1, 6, 8)).astype(np.float32)
        short = attn(Tensor(x[:, :4]), prefix_kv=prefix).data
        mask = np.array([[False] * 4 + [True] * 2])
        padded = attn(Tensor(x), prefix_kv=prefix,
                      key_padding_mask=mask).data
        np.testing.assert_allclose(padded[0, :4], short[0], atol=1e-6)

    def test_key_padding_mask_shape_checked(self):
        attn = MultiHeadSelfAttention(8, 2)
        x = Tensor(RNG.normal(size=(2, 4, 8)))
        with pytest.raises(ValueError):
            attn(x, key_padding_mask=np.zeros((2, 3), dtype=bool))
        with pytest.raises(ValueError):
            attn(x, key_padding_mask=np.zeros((1, 4), dtype=bool))


class TestLMConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            LMConfig(vocab_size=0)
        with pytest.raises(ValueError):
            LMConfig(vocab_size=10, d_model=10, n_heads=3)
        with pytest.raises(ValueError):
            LMConfig(vocab_size=10, max_seq_len=0)


class TestTinyCausalLM:
    def test_logits_shape(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        logits = model(np.array([[1, 2, 3]]))
        assert logits.shape == (1, 3, 23)

    def test_1d_input_promoted(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        assert model(np.array([1, 2])).shape == (1, 2, 23)

    def test_exactly_one_input_required(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        with pytest.raises(ValueError):
            model()
        with pytest.raises(ValueError):
            model(np.array([[1]]), embeddings=Tensor(np.zeros((1, 1, 16))))

    def test_embeddings_path_matches_token_path(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        ids = np.array([[4, 9, 2]])
        via_tokens = model(ids).data
        via_embeddings = model(embeddings=model.embed(ids)).data
        np.testing.assert_allclose(via_tokens, via_embeddings, atol=1e-5)

    def test_sequence_length_limit(self):
        model = TinyCausalLM(tiny_config(max_seq_len=4), seed=0)
        with pytest.raises(ValueError):
            model(np.ones((1, 5), dtype=np.int64))

    def test_prefix_kv_count_checked(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        prefix = [(Tensor(np.zeros((1, 2, 2, 8))), Tensor(np.zeros((1, 2, 2, 8))))]
        with pytest.raises(ValueError):
            model(np.array([[1]]), prefix_kv=prefix)  # 1 prefix, 2 layers

    def test_deterministic_for_seed(self):
        a = TinyCausalLM(tiny_config(), seed=7)
        b = TinyCausalLM(tiny_config(), seed=7)
        ids = np.array([[3, 1, 4]])
        np.testing.assert_allclose(a(ids).data, b(ids).data)

    def test_different_seeds_differ(self):
        a = TinyCausalLM(tiny_config(), seed=1)
        b = TinyCausalLM(tiny_config(), seed=2)
        ids = np.array([[3, 1, 4]])
        assert not np.allclose(a(ids).data, b(ids).data)

    def test_embed_text_vector(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        vec = model.embed_text_vector(np.array([5, 6]))
        expected = model.token_embedding.weight.data[[5, 6]].mean(axis=0)
        np.testing.assert_allclose(vec, expected)

    def test_embed_text_vector_empty_raises(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        with pytest.raises(ValueError):
            model.embed_text_vector(np.array([], dtype=np.int64))

    def test_parameter_count_reasonable(self):
        model = TinyCausalLM(tiny_config(), seed=0)
        assert model.num_parameters() > 1000
