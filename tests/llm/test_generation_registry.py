"""Tests for generation, pretraining, quantization and the model zoo."""

import numpy as np
import pytest

from repro.llm import (
    GenerationConfig,
    MODEL_REGISTRY,
    PretrainConfig,
    TinyCausalLM,
    available_models,
    build_model,
    clear_model_cache,
    generate,
    load_pretrained_model,
    pretrain_lm,
    quantization_error,
    quantize_array,
    quantize_model_weights,
)
from repro.llm.transformer import LMConfig

RNG = np.random.default_rng(5)


def tiny_model(vocab=19, seed=0):
    return TinyCausalLM(LMConfig(vocab_size=vocab, d_model=16, n_heads=2,
                                 n_layers=2, d_ff=24, max_seq_len=48),
                        seed=seed)


class TestGeneration:
    def test_respects_max_new_tokens(self):
        out = generate(tiny_model(), np.array([1, 2]),
                       GenerationConfig(max_new_tokens=5, temperature=0.0))
        assert out.size <= 5

    def test_greedy_is_deterministic(self):
        model = tiny_model()
        cfg = GenerationConfig(max_new_tokens=6, temperature=0.0)
        a = generate(model, np.array([1, 2, 3]), cfg)
        b = generate(model, np.array([1, 2, 3]), cfg)
        np.testing.assert_array_equal(a, b)

    def test_stops_at_eos(self):
        model = tiny_model()
        cfg0 = GenerationConfig(max_new_tokens=1, temperature=0.0)
        first = generate(model, np.array([1]), cfg0)[0]
        cfg = GenerationConfig(max_new_tokens=10, temperature=0.0,
                               eos_id=int(first))
        out = generate(model, np.array([1]), cfg)
        assert out.size == 0  # the very first sampled token was EOS

    def test_soft_prompt_changes_output_distribution(self):
        model = tiny_model()
        cfg = GenerationConfig(max_new_tokens=8, temperature=0.0)
        base = generate(model, np.array([1, 2, 3, 4]), cfg)
        prompt = RNG.normal(0, 2.0, size=(4, 16)).astype(np.float32)
        prompted = generate(model, np.array([1, 2, 3, 4]), cfg,
                            soft_prompt=prompt)
        assert not np.array_equal(base, prompted)

    def test_sequence_budget_respected(self):
        model = tiny_model()
        cfg = GenerationConfig(max_new_tokens=100, temperature=0.0)
        prompt = np.zeros((8, 16), dtype=np.float32)
        out = generate(model, np.arange(1, 11), cfg, soft_prompt=prompt)
        assert 10 + out.size <= model.config.max_seq_len - 8

    def test_empty_prompt_rejected(self):
        with pytest.raises(ValueError):
            generate(tiny_model(), np.array([], dtype=np.int64))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            GenerationConfig(max_new_tokens=0)
        with pytest.raises(ValueError):
            GenerationConfig(temperature=-1.0)

    def test_training_mode_restored(self):
        model = tiny_model()
        model.train()
        generate(model, np.array([1]), GenerationConfig(max_new_tokens=1))
        assert model.training

    def test_sampling_large_vocab_stays_normalized(self):
        """Probabilities are normalized in float64: float32 sums can miss
        rng.choice's sum-to-1 tolerance on large vocabularies."""
        from repro.llm.generation import _sample
        rng = np.random.default_rng(488)
        logits = rng.normal(0, 3, size=65536).astype(np.float32)
        for seed in range(5):
            idx = _sample(logits, 0.5, np.random.default_rng(seed))
            assert 0 <= idx < logits.size


class TestPretrain:
    def test_loss_decreases(self):
        model = tiny_model()
        stream = RNG.integers(0, 19, size=2000)
        # Make the stream learnable: deterministic successor pattern.
        stream = np.arange(2000) % 19
        losses = pretrain_lm(model, stream,
                             PretrainConfig(steps=60, batch_size=4,
                                            seq_len=16, lr=5e-3, seed=0))
        assert losses[-1] < losses[0] * 0.7

    def test_short_corpus_rejected(self):
        with pytest.raises(ValueError):
            pretrain_lm(tiny_model(), np.arange(5),
                        PretrainConfig(steps=1, seq_len=16))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PretrainConfig(steps=0)

    def test_model_left_in_eval_mode(self):
        model = tiny_model()
        pretrain_lm(model, np.arange(200) % 19,
                    PretrainConfig(steps=2, batch_size=2, seq_len=8))
        assert not model.training


class TestQuantization:
    def test_values_on_grid(self):
        w = RNG.normal(size=(32, 8)).astype(np.float32)
        q = quantize_array(w, bits=4, group_size=16)
        # Each group's values form at most 16 distinct levels.
        for start in (0, 16):
            assert len(np.unique(q[start:start + 16])) <= 16

    def test_error_drops_with_more_bits(self):
        w = RNG.normal(size=(64, 16)).astype(np.float32)
        assert quantization_error(w, bits=8) < quantization_error(w, bits=2)

    def test_zero_matrix_stays_zero(self):
        q = quantize_array(np.zeros((8, 4)), bits=4, group_size=8)
        np.testing.assert_allclose(q, 0.0)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            quantize_array(np.zeros((4, 4)), bits=1)
        with pytest.raises(ValueError):
            quantize_array(np.zeros((4, 4)), bits=4, group_size=0)
        with pytest.raises(ValueError):
            quantize_array(np.zeros(4), bits=4)

    def test_quantize_model_touches_all_linears(self):
        model = tiny_model()
        count = quantize_model_weights(model, bits=4)
        # 2 layers x (q,k,v,out + 2 mlp) + lm_head = 2*6 + 1
        assert count == 13

    def test_embeddings_not_quantized(self):
        model = tiny_model()
        before = model.token_embedding.weight.data.copy()
        quantize_model_weights(model, bits=2)
        np.testing.assert_allclose(model.token_embedding.weight.data, before)


class TestRegistry:
    def test_three_paper_models(self):
        assert available_models() == ["gemma-2b-sim", "mistral-7b-gptq-sim",
                                      "phi-2-sim"]
        papers = {spec.paper_model for spec in MODEL_REGISTRY.values()}
        assert papers == {"Gemma-2B", "Mistral-7B-GPTQ", "Phi-2"}

    def test_build_model_unknown_name(self):
        with pytest.raises(KeyError):
            build_model("gpt-99", vocab_size=10)

    def test_build_model_architectures_differ(self):
        a = build_model("gemma-2b-sim", 19)
        b = build_model("phi-2-sim", 19)
        assert a.config.d_model != b.config.d_model

    def test_pretrained_cache_returns_equal_weights(self):
        clear_model_cache()
        stream = np.arange(3000) % 19
        cfg = PretrainConfig(steps=5, batch_size=2, seq_len=8)
        m1 = load_pretrained_model("gemma-2b-sim", stream, 19, pretrain=cfg)
        m2 = load_pretrained_model("gemma-2b-sim", stream, 19, pretrain=cfg)
        assert m1 is not m2
        np.testing.assert_allclose(m1.lm_head.weight.data,
                                   m2.lm_head.weight.data)
        clear_model_cache()

    def test_gptq_model_weights_quantized(self):
        clear_model_cache()
        stream = np.arange(3000) % 19
        cfg = PretrainConfig(steps=5, batch_size=2, seq_len=8)
        model = load_pretrained_model("mistral-7b-gptq-sim", stream, 19,
                                      pretrain=cfg)
        w = model.blocks[0].ff1.weight.data
        # 4-bit grouped weights: few distinct values per group.
        assert len(np.unique(w[:32])) <= 16 * 1 + 1
        clear_model_cache()
