"""Tests for continuous-batching decode: the scheduler and its equivalence.

The contract everything rests on: a batch of in-flight generations must
emit, per sequence, token-for-token the ids :func:`repro.llm.decode_from`
produces from the same prefill state — for greedy and seeded sampling,
every conditioning mode, ragged prompt lengths, and sequences that are
admitted or retired while other sequences are mid-flight.
"""

import numpy as np
import pytest

from repro.ag import Tensor
from repro.llm import (
    DecodeScheduler,
    GenerationConfig,
    TinyCausalLM,
    decode_batch,
    decode_from,
    prefill,
)
from repro.llm.transformer import LMConfig

RNG = np.random.default_rng(21)


def tiny_model(max_seq_len=64, seed=0, vocab=23):
    return TinyCausalLM(LMConfig(vocab_size=vocab, d_model=16, n_heads=2,
                                 n_layers=2, d_ff=24,
                                 max_seq_len=max_seq_len), seed=seed)


def make_prefix(model, length=3, seed=4):
    rng = np.random.default_rng(seed)
    heads = model.config.n_heads
    d_head = model.config.d_model // heads
    return [(Tensor(rng.normal(size=(1, heads, length, d_head))),
             Tensor(rng.normal(size=(1, heads, length, d_head))))
            for _ in range(model.config.n_layers)]


def make_soft_prompt(model, rows=4, seed=5):
    rng = np.random.default_rng(seed)
    return rng.normal(0, 1.0, size=(rows, model.config.d_model)) \
              .astype(np.float32)


def ragged_states(model, lengths, conditioning="plain"):
    """Prefill states with ragged prompt lengths under one conditioning."""
    states = []
    for i, length in enumerate(lengths):
        ids = RNG.integers(1, model.config.vocab_size, size=length)
        kwargs = {}
        if conditioning in ("soft", "both"):
            kwargs["soft_prompt"] = make_soft_prompt(model, rows=2 + i % 3,
                                                     seed=50 + i)
        if conditioning in ("prefix", "both"):
            kwargs["prefix_kv"] = make_prefix(model, length=2 + i % 2,
                                              seed=60 + i)
        states.append(prefill(model, ids, **kwargs))
    return states


def assert_matches_sequential(model, states, configs, results):
    for state, config, result in zip(states, configs, results):
        np.testing.assert_array_equal(result,
                                      decode_from(model, state, config))


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("temperature", [0.0, 0.8])
    @pytest.mark.parametrize("conditioning",
                             ["plain", "soft", "prefix", "both"])
    def test_batched_matches_sequential(self, temperature, conditioning):
        model = tiny_model(seed=2)
        states = ragged_states(model, [3, 9, 5, 12, 7],
                               conditioning=conditioning)
        configs = [GenerationConfig(max_new_tokens=10,
                                    temperature=temperature, seed=7 + i)
                   for i in range(len(states))]
        results = decode_batch(model, states, configs)
        assert_matches_sequential(model, states, configs, results)

    def test_mixed_conditioning_in_one_batch(self):
        """Users with and without soft prompts / prefixes share rounds."""
        model = tiny_model(seed=3)
        states = (ragged_states(model, [4], "plain")
                  + ragged_states(model, [8], "soft")
                  + ragged_states(model, [6], "prefix")
                  + ragged_states(model, [11], "both"))
        configs = [GenerationConfig(max_new_tokens=8, temperature=0.6,
                                    seed=i) for i in range(4)]
        results = decode_batch(model, states, configs)
        assert_matches_sequential(model, states, configs, results)

    def test_single_sequence_batch(self):
        model = tiny_model()
        (state,) = ragged_states(model, [5])
        config = GenerationConfig(max_new_tokens=6, temperature=0.0)
        np.testing.assert_array_equal(
            decode_batch(model, [state], config)[0],
            decode_from(model, state, config))

    def test_one_config_broadcasts(self):
        model = tiny_model()
        states = ragged_states(model, [3, 6])
        config = GenerationConfig(max_new_tokens=4, temperature=0.0)
        results = decode_batch(model, states, config)
        assert_matches_sequential(model, states, [config, config], results)

    def test_config_count_mismatch_rejected(self):
        model = tiny_model()
        states = ragged_states(model, [3, 6])
        with pytest.raises(ValueError, match="configs for"):
            decode_batch(model, states, [GenerationConfig()])


class TestRetirement:
    def test_ragged_budgets_retire_mid_flight(self):
        """Sequences with different token budgets leave the batch at
        different rounds; survivors must be unaffected."""
        model = tiny_model(seed=4)
        states = ragged_states(model, [4, 7, 3, 10])
        configs = [GenerationConfig(max_new_tokens=n, temperature=0.5,
                                    seed=30 + n)
                   for n in (2, 9, 5, 14)]
        scheduler = DecodeScheduler(model)
        sequences = [scheduler.admit(state, config)
                     for state, config in zip(states, configs)]
        scheduler.run()
        assert_matches_sequential(model, states, configs,
                                  [s.token_ids() for s in sequences])
        assert [s.finish_reason for s in sequences] == ["length"] * 4

    def test_eos_retires_sequence(self):
        model = tiny_model(seed=5)
        states = ragged_states(model, [5, 8])
        free = GenerationConfig(max_new_tokens=8, temperature=0.0)
        reference = decode_from(model, states[0], free)
        assert reference.size == 8
        eos_id = int(reference[3])     # greedy path will hit it mid-answer
        configs = [GenerationConfig(max_new_tokens=8, temperature=0.0,
                                    eos_id=eos_id),
                   free]
        scheduler = DecodeScheduler(model)
        sequences = [scheduler.admit(state, config)
                     for state, config in zip(states, configs)]
        scheduler.run()
        assert sequences[0].finish_reason == "eos"
        assert_matches_sequential(model, states, configs,
                                  [s.token_ids() for s in sequences])

    def test_context_budget_retires_sequence(self):
        """A sequence that fills the context window stops exactly where the
        sequential loop would, while a shorter neighbour keeps going."""
        model = tiny_model(max_seq_len=16, seed=6)
        states = ragged_states(model, [12, 3])
        configs = [GenerationConfig(max_new_tokens=50, temperature=0.0),
                   GenerationConfig(max_new_tokens=9, temperature=0.0)]
        scheduler = DecodeScheduler(model)
        sequences = [scheduler.admit(state, config)
                     for state, config in zip(states, configs)]
        scheduler.run()
        assert sequences[0].finish_reason == "context"
        assert sequences[0].n_generated == 4          # 12 + 4 == max_seq_len
        assert_matches_sequential(model, states, configs,
                                  [s.token_ids() for s in sequences])

    def test_cancel_mid_flight(self):
        model = tiny_model(seed=7)
        states = ragged_states(model, [5, 6])
        config = GenerationConfig(max_new_tokens=8, temperature=0.4, seed=2)
        scheduler = DecodeScheduler(model)
        victim = scheduler.admit(states[0], config)
        survivor = scheduler.admit(states[1], config)
        scheduler.decode_round()
        assert scheduler.cancel(victim)
        assert victim.finished and victim.finish_reason == "cancelled"
        assert not scheduler.cancel(victim)           # already retired
        scheduler.run()
        # The cancelled tokens are a prefix of its sequential answer; the
        # survivor is untouched by the batch shrinking under it.
        reference = decode_from(model, states[0], config)
        np.testing.assert_array_equal(victim.token_ids(),
                                      reference[:victim.n_generated])
        np.testing.assert_array_equal(survivor.token_ids(),
                                      decode_from(model, states[1], config))


class TestAdmission:
    def test_mid_round_admission(self):
        """Sequences admitted while others are mid-flight still match their
        sequential reference (their rounds simply start later)."""
        model = tiny_model(seed=8)
        states = ragged_states(model, [4, 9, 6, 3], conditioning="soft")
        configs = [GenerationConfig(max_new_tokens=7, temperature=0.7,
                                    seed=i) for i in range(4)]
        scheduler = DecodeScheduler(model)
        sequences = [scheduler.admit(states[i], configs[i]) for i in (0, 1)]
        scheduler.decode_round()
        scheduler.decode_round()
        sequences.append(scheduler.admit(states[2], configs[2]))
        scheduler.decode_round()
        sequences.append(scheduler.admit(states[3], configs[3]))
        scheduler.run()
        assert_matches_sequential(model, states, configs,
                                  [s.token_ids() for s in sequences])

    def test_first_token_sampled_at_admission(self):
        model = tiny_model()
        (state,) = ragged_states(model, [5])
        scheduler = DecodeScheduler(model)
        sequence = scheduler.admit(state, GenerationConfig(max_new_tokens=4,
                                                           temperature=0.0))
        assert sequence.n_generated == 1       # from the prefill logits
        assert scheduler.n_active == 1

    def test_immediate_eos_never_joins_a_round(self):
        model = tiny_model()
        (state,) = ragged_states(model, [5])
        first = int(decode_from(model, state,
                                GenerationConfig(max_new_tokens=1,
                                                 temperature=0.0))[0])
        scheduler = DecodeScheduler(model)
        sequence = scheduler.admit(state,
                                   GenerationConfig(max_new_tokens=4,
                                                    temperature=0.0,
                                                    eos_id=first))
        assert sequence.finished and sequence.finish_reason == "eos"
        assert sequence.n_generated == 0
        assert not scheduler.has_active

    def test_multi_sequence_prefill_rejected(self):
        model = tiny_model()
        _, cache = model(np.array([[1, 2], [3, 4]]), use_cache=True)
        from repro.llm import PrefillState
        state = PrefillState(cache=cache, last_logits=np.zeros(23),
                             n_tokens=2, virtual_len=0)
        with pytest.raises(ValueError, match="single-sequence"):
            DecodeScheduler(model).admit(state)


class TestSchedulerTelemetry:
    def test_round_reports_and_counters(self):
        model = tiny_model(seed=9)
        states = ragged_states(model, [4, 6, 8])
        configs = [GenerationConfig(max_new_tokens=n, temperature=0.0)
                   for n in (2, 4, 6)]
        scheduler = DecodeScheduler(model)
        for state, config in zip(states, configs):
            scheduler.admit(state, config)
        reports = []
        while scheduler.has_active:
            reports.append(scheduler.decode_round())
        # One token per sequence landed at admission, the rest in rounds.
        assert scheduler.tokens_emitted == sum(r.tokens_emitted
                                               for r in reports)
        assert scheduler.tokens_emitted == (2 + 4 + 6) - 3
        assert scheduler.rounds == len(reports) == 5
        assert scheduler.occupancy_sum == sum(r.n_active for r in reports)
        assert reports[0].n_active == 3
        assert sum(r.n_retired for r in reports) == 3

    def test_empty_round_is_a_noop(self):
        scheduler = DecodeScheduler(tiny_model())
        report = scheduler.decode_round()
        assert (report.tokens_emitted, report.n_active,
                report.n_retired) == (0, 0, 0)
        assert scheduler.rounds == 0

    def test_model_mode_restored_after_round(self):
        model = tiny_model()
        model.train()
        states = ragged_states(model, [4])
        scheduler = DecodeScheduler(model)
        scheduler.admit(states[0], GenerationConfig(max_new_tokens=3,
                                                    temperature=0.0))
        scheduler.run()
        assert model.training
