"""Batched padded training forward vs the per-sample reference loop.

Every ``tune`` request runs the prompt-tuning loop, and before batching it
cost ``batch_size`` sequential forwards (and ``batch_size`` autograd graph
constructions) per optimizer step.  The batched path pads the minibatch to
a common length, masks the padded keys out of attention and the padded
positions out of the loss, and runs **one** forward/backward per step.
Both paths compute the mean of the per-sample losses, so the result is
loss- and gradient-equivalent — the win is wall-clock only.

Usage:
    PYTHONPATH=src python benchmarks/bench_tuning_batched.py          # timing
    PYTHONPATH=src python benchmarks/bench_tuning_batched.py --smoke  # CI check

The default (timing) mode measures one full training step (loss + backward
+ optimizer step) at batch_size=8 on the default registry model and fails
unless the batched path is at least ``--min-speedup`` (3x) faster.  Smoke
mode skips timing and checks loss/gradient agreement between the batched
and per-sample paths across {soft prompt, KV prefix, noise-aware} on a
ragged-length batch, so any padding/masking drift fails CI fast.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.ag import Adam, Parameter
from repro.core.noise_training import NoiseInjectionConfig, NoiseInjector
from repro.data import build_tokenizer, make_dataset, make_user
from repro.llm import build_model
from repro.tuning import (
    prefix_loss_for_batch,
    prompt_loss_for_batch,
    freeze_model,
    initial_prompt_matrix,
)

LOSS_TOL = 1e-5
GRAD_TOL = 1e-5


def ragged_samples(tokenizer, count: int):
    """A minibatch drawn from several LaMP tasks so lengths differ."""
    user = make_user(0, seed=0)
    samples = []
    for name in ("LaMP-1", "LaMP-2", "LaMP-3", "LaMP-5"):
        samples.extend(make_dataset(name).generate(user, 2, seed=1))
    while len(samples) < count:
        samples.extend(samples)
    return samples[:count]


def build_prefixes(model, n_tokens: int, seed: int = 3):
    cfg = model.config
    d_head = cfg.d_model // cfg.n_heads
    rng = np.random.default_rng(seed)
    return [
        (Parameter(rng.normal(0.0, 0.2, (1, cfg.n_heads, n_tokens, d_head))),
         Parameter(rng.normal(0.0, 0.2, (1, cfg.n_heads, n_tokens, d_head))))
        for _ in range(cfg.n_layers)
    ]


def run_timing(batch_size: int, steps: int, min_speedup: float) -> int:
    tokenizer = build_tokenizer()
    model = build_model("phi-2-sim", tokenizer.vocab_size)
    samples = ragged_samples(tokenizer, batch_size)
    init = initial_prompt_matrix(model, tokenizer, samples, 8,
                                 np.random.default_rng(0))

    def time_steps(batched: bool) -> float:
        prompt = Parameter(init.copy())
        optimizer = Adam([prompt], lr=0.05)
        with freeze_model(model):
            loss = prompt_loss_for_batch(model, prompt, samples, tokenizer,
                                         batched=batched)  # warm-up pass
            start = time.perf_counter()
            for _ in range(steps):
                optimizer.zero_grad()
                loss = prompt_loss_for_batch(model, prompt, samples,
                                             tokenizer, batched=batched)
                loss.backward()
                optimizer.step()
            return (time.perf_counter() - start) / steps

    t_sequential = time_steps(batched=False)
    t_batched = time_steps(batched=True)
    speedup = t_sequential / t_batched if t_batched > 0 else float("inf")
    print(f"\n=== Batched prompt-tuning step: batch_size={batch_size}, "
          f"{steps} steps ===")
    print(f"sequential (per-sample forwards): {t_sequential * 1e3:9.1f} ms/step")
    print(f"batched (one padded forward):     {t_batched * 1e3:9.1f} ms/step")
    print(f"speedup:                          {speedup:9.1f}x")
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {min_speedup}x")
        return 1
    print("OK")
    return 0


def run_smoke() -> int:
    """Loss/grad agreement of batched vs per-sample paths; no timing."""
    tokenizer = build_tokenizer()
    model = build_model("gemma-2b-sim", tokenizer.vocab_size)
    samples = ragged_samples(tokenizer, 8)
    init = initial_prompt_matrix(model, tokenizer, samples, 8,
                                 np.random.default_rng(0))
    failures = 0

    def check(label, loss_ref, loss_bat, grads_ref, grads_bat):
        nonlocal failures
        dloss = abs(float(loss_ref.data) - float(loss_bat.data))
        dgrad = max(float(np.abs(a - b).max())
                    for a, b in zip(grads_ref, grads_bat))
        ok = dloss <= LOSS_TOL and dgrad <= GRAD_TOL
        print(f"{'ok  ' if ok else 'FAIL'} {label}: "
              f"dloss={dloss:.2e} dgrad={dgrad:.2e}")
        failures += not ok

    with freeze_model(model):
        for label, transform_seed in (("soft prompt", None),
                                      ("noise-aware", 11)):
            grads, losses = [], []
            for batched in (False, True):
                prompt = Parameter(init.copy())
                effective = prompt
                if transform_seed is not None:
                    injector = NoiseInjector(
                        NoiseInjectionConfig(seed=transform_seed))
                    effective = injector(prompt)
                loss = prompt_loss_for_batch(model, effective, samples,
                                             tokenizer, batched=batched)
                loss.backward()
                losses.append(loss)
                grads.append([prompt.grad.copy()])
            check(label, losses[0], losses[1], grads[0], grads[1])

        grads, losses = [], []
        for batched in (False, True):
            prefixes = build_prefixes(model, 4)
            loss = prefix_loss_for_batch(model, prefixes, samples, tokenizer,
                                         batched=batched)
            loss.backward()
            losses.append(loss)
            grads.append([p.grad.copy() for kv in prefixes for p in kv])
        check("kv prefix", losses[0], losses[1], grads[0], grads[1])

    if failures:
        print(f"FAIL: {failures} batched-equivalence case(s) diverged")
        return 1
    print("OK: batched training forward matches the per-sample reference")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast equivalence-only check (for CI)")
    parser.add_argument("--batch-size", type=int, default=8,
                        help="minibatch size for the timing run")
    parser.add_argument("--steps", type=int, default=10,
                        help="optimizer steps to average over")
    parser.add_argument("--min-speedup", type=float, default=3.0,
                        help="required batched-vs-sequential speedup")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    return run_timing(args.batch_size, args.steps, args.min_speedup)


if __name__ == "__main__":
    sys.exit(main())
