"""Shared infrastructure for the paper-reproduction benchmarks.

Every benchmark prints the table/figure it regenerates.  Scales are reduced
relative to the paper (which averages >100 users per cell); set
``REPRO_FULL=1`` for a larger grid.  The shared :class:`ExperimentContext`
memoises pretrained models and trained OVT libraries across benchmarks in
one pytest session.
"""

from __future__ import annotations

import os

from repro.core import FrameworkConfig
from repro.eval.runner import ExperimentContext
from repro.tuning import TuningConfig

FULL = bool(int(os.environ.get("REPRO_FULL", "0")))
USER_IDS = tuple(range(3)) if FULL else (0, 1)
N_QUERIES = 10 if FULL else 6

_CONTEXT: ExperimentContext | None = None


def shared_context() -> ExperimentContext:
    """The session-wide experiment context (models/libraries memoised)."""
    global _CONTEXT
    if _CONTEXT is None:
        _CONTEXT = ExperimentContext(seed=0, n_queries=N_QUERIES)
    return _CONTEXT


def default_config(**overrides) -> FrameworkConfig:
    """The paper's main configuration (Table I cell) with overrides."""
    overrides.setdefault("tuning", TuningConfig())
    overrides.setdefault("seed", 0)
    return FrameworkConfig.preset("table1", **overrides)


def print_table(title: str, header: list[str], rows: list[list[str]]) -> None:
    widths = [max(len(str(row[i])) for row in [header] + rows)
              for i in range(len(header))]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
