"""Table I — main comparison: 3 edge LLMs x 5 LaMP datasets x 5 NVM
devices x 6 methods at sigma = 0.1, buffer 25.

The paper's headline table.  Expected shape: NVCiM-PT leads on average;
noise-aware training lifts NVP*(MIPS) over No-Miti(MIPS); the mitigation
baselines (which reuse SSA) are competitive but lack noise-robust prompts.

Reduced scale by default (the paper averages >100 users per cell); set
REPRO_FULL=1 for more users/queries.
"""

import numpy as np

from repro.eval.runner import TABLE1_METHODS, evaluate_method
from repro.nvm import available_devices

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

MODELS = ("gemma-2b-sim", "mistral-7b-gptq-sim", "phi-2-sim")
DATASETS = ("LaMP-1", "LaMP-2", "LaMP-3", "LaMP-5", "LaMP-7")


def test_table1_main_grid(benchmark):
    context = shared_context()
    config = default_config()

    def run():
        grid = {}
        for model_name in MODELS:
            for device in available_devices():
                for dataset in DATASETS:
                    for method in TABLE1_METHODS:
                        key = (model_name, device, dataset, method.name)
                        cell_config = config.replace(device_name=device)
                        grid[key] = evaluate_method(
                            context, model_name, dataset, method,
                            cell_config, user_ids=USER_IDS)
        return grid

    grid = run_once(benchmark, run)

    method_names = [m.name for m in TABLE1_METHODS]
    for model_name in MODELS:
        rows = []
        for device in available_devices():
            for dataset in DATASETS:
                rows.append(
                    [device, dataset]
                    + [f"{grid[(model_name, device, dataset, m)]:.3f}"
                       for m in method_names])
        print_table(f"Table I ({model_name}, sigma=0.1, buffer=25)",
                    ["device", "dataset"] + method_names, rows)

    # Shape assertions on the aggregate.  Per-cell (and, at the reduced
    # default scale of ~2 users/cell, even small aggregate) noise is
    # expected — the paper's own Table I cells shuffle the baselines
    # wildly.  We require NVCiM-PT to be at worst a very close second
    # overall and strictly above both MIPS-retrieval baselines, and both
    # of its components to help on average.
    means = {m: np.mean([grid[k] for k in grid if k[3] == m])
             for m in method_names}
    print_table("Table I — method means over the whole grid",
                ["method", "mean"],
                [[m, f"{means[m]:.3f}"] for m in method_names])
    assert means["NVCiM-PT"] >= max(means.values()) - 0.02
    assert means["NVCiM-PT"] > means["No-Miti(MIPS)"]
    assert means["NVCiM-PT"] > means["NVP*(MIPS)"]
    assert means["NVP*(MIPS)"] > means["No-Miti(MIPS)"]
