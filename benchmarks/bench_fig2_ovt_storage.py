"""Fig. 2 — resource pressure of storing/moving OVTs on an edge device.

(a) DRAM usage grows linearly with the number of stored OVTs (x100 MB
range at thousands of OVTs); (b) SSD <-> DRAM transfer time reaches tens of
seconds at 1e5 OVTs.
"""

from repro.cim import PAPER_SCALE_STORAGE

from benchmarks.common import print_table, run_once

FIG2A_COUNTS = (1000, 3000, 5000, 7000, 9000)
FIG2B_COUNTS = (100, 1000, 5000, 20000, 100000)


def test_fig2a_memory_usage(benchmark):
    model = PAPER_SCALE_STORAGE

    def run():
        return [(n, model.memory_mb(n), model.dram_fraction(n))
                for n in FIG2A_COUNTS]

    rows = run_once(benchmark, run)
    print_table("Fig. 2a — OVT memory usage",
                ["# OVTs (x100)", "memory (x100 MB)", "DRAM fraction"],
                [[n // 100, f"{mb / 100:.2f}", f"{frac:.3f}"]
                 for n, mb, frac in rows])
    megabytes = [mb for _, mb, _ in rows]
    assert all(b > a for a, b in zip(megabytes, megabytes[1:]))
    # Paper scale: 9000 OVTs land in the "x100 MB" band.
    assert 400 < megabytes[-1] < 2000


def test_fig2b_transfer_time(benchmark):
    model = PAPER_SCALE_STORAGE

    def run():
        return [(n, model.transfer_time_s(n)) for n in FIG2B_COUNTS]

    rows = run_once(benchmark, run)
    print_table("Fig. 2b — SSD<->DRAM transfer time",
                ["# OVTs (x1000)", "transfer time (s)"],
                [[n / 1000, f"{t:.2f}"] for n, t in rows])
    times = [t for _, t in rows]
    assert all(b > a for a, b in zip(times, times[1:]))
    # Tens of seconds at 1e5 OVTs, as in the paper's plot.
    assert 10 < times[-1] < 120
