"""Incremental KV-cache decoding vs the full-reforward generation loop.

The serving engine's hot path is autoregressive decoding.  Without a KV
cache every generated token re-runs the transformer over the whole
sequence — O(T^2 * layers) for a T-token generation.  With the cache the
prompt is prefetched once and each step is a single-position forward.
Both paths must emit *identical* token ids under identical seeds; the win
is wall-clock only.

Usage:
    PYTHONPATH=src python benchmarks/bench_decode_kv_cache.py          # timing
    PYTHONPATH=src python benchmarks/bench_decode_kv_cache.py --smoke  # CI drift check
    PYTHONPATH=src python benchmarks/bench_decode_kv_cache.py --quick \
        --json BENCH_decode_kv_cache.json                              # CI artifact

The default (timing) mode generates 100 tokens from a 128-token context —
the paper's inference budget — and fails unless the cached path is at
least ``--min-speedup`` (5x) faster with identical output.  Smoke mode
skips timing and checks token-for-token equivalence across the full
conditioning matrix (greedy/sampled x soft prompt / KV prefix), so any
cache drift fails CI fast.

Token ids are compared exactly: both paths run in one process through the
same ``np.matmul``, so per-step and full-sequence logits agree to the
last ulp here.  If a future BLAS backend ever made (1,d)@(d,n) and
(T,d)@(d,n) reductions diverge, a sampled case could flip at a
probability boundary — loosen the sampled cases to a logit tolerance
before weakening the greedy gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.ag import Tensor
from repro.llm import GenerationConfig, TinyCausalLM, generate
from repro.llm.transformer import LMConfig


def build_model(*, smoke: bool) -> TinyCausalLM:
    if smoke:
        config = LMConfig(vocab_size=31, d_model=32, n_heads=4, n_layers=2,
                          d_ff=48, max_seq_len=64)
    else:
        config = LMConfig(vocab_size=97, d_model=64, n_heads=4, n_layers=3,
                          d_ff=128, max_seq_len=256)
    return TinyCausalLM(config, seed=0)


def timed_generate(model, ids, config, *, use_cache):
    start = time.perf_counter()
    out = generate(model, ids, config, use_cache=use_cache)
    return out, time.perf_counter() - start


def run_timing(context_len: int, n_tokens: int, min_speedup: float,
               json_path: str | None = None) -> int:
    model = build_model(smoke=False)
    rng = np.random.default_rng(0)
    ids = rng.integers(1, model.config.vocab_size, size=context_len)
    # temperature 0.1 / no EOS: the paper's near-greedy budget, run in full.
    config = GenerationConfig(max_new_tokens=n_tokens, temperature=0.1, seed=0)

    uncached, t_uncached = timed_generate(model, ids, config, use_cache=False)
    cached, t_cached = timed_generate(model, ids, config, use_cache=True)

    identical = np.array_equal(uncached, cached)
    speedup = t_uncached / t_cached if t_cached > 0 else float("inf")
    print(f"\n=== KV-cache decode: {n_tokens} tokens "
          f"@ {context_len}-token context ===")
    print(f"uncached (full reforward): {t_uncached * 1e3:9.1f} ms")
    print(f"cached (prefill + steps):  {t_cached * 1e3:9.1f} ms")
    print(f"speedup:                   {speedup:9.1f}x")
    print(f"identical token ids:       {identical} ({cached.size} tokens)")

    if json_path:
        payload = {
            "benchmark": "decode_kv_cache",
            "config": {"context": context_len, "tokens": n_tokens},
            "tokens_per_s_uncached": n_tokens / t_uncached,
            "tokens_per_s_cached": n_tokens / t_cached,
            "speedup": speedup,
            "identical": identical,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    if not identical:
        print("FAIL: cached decode diverged from the reference loop")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.1f}x below required {min_speedup}x")
        return 1
    print("OK")
    return 0


def run_smoke() -> int:
    """Equivalence across the conditioning matrix; no timing assertions."""
    model = build_model(smoke=True)
    d_model = model.config.d_model
    n_heads = model.config.n_heads
    d_head = d_model // n_heads
    rng = np.random.default_rng(7)
    ids = rng.integers(1, model.config.vocab_size, size=12)
    soft = rng.normal(0.0, 1.0, size=(5, d_model)).astype(np.float32)
    prefix = [(Tensor(rng.normal(size=(1, n_heads, 3, d_head))),
               Tensor(rng.normal(size=(1, n_heads, 3, d_head))))
              for _ in range(model.config.n_layers)]

    conditioning = {
        "plain": {},
        "soft-prompt": {"soft_prompt": soft},
        "kv-prefix": {"prefix_kv": prefix},
        "soft+prefix": {"soft_prompt": soft, "prefix_kv": prefix},
    }
    failures = 0
    for name, kwargs in conditioning.items():
        for temperature in (0.0, 0.8):
            config = GenerationConfig(max_new_tokens=10,
                                      temperature=temperature, seed=11)
            reference = generate(model, ids, config, use_cache=False, **kwargs)
            cached = generate(model, ids, config, use_cache=True, **kwargs)
            ok = np.array_equal(reference, cached)
            label = f"{name} @ T={temperature}"
            print(f"{'ok  ' if ok else 'FAIL'} {label}: "
                  f"{cached.size} tokens")
            failures += not ok
    if failures:
        print(f"FAIL: {failures} cache-equivalence case(s) diverged")
        return 1
    print("OK: cached decode identical to reference in all cases")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast equivalence-only check (for CI)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--context", type=int, default=128,
                        help="prompt length for the timing run")
    parser.add_argument("--tokens", type=int, default=100,
                        help="tokens to generate in the timing run")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required cached-vs-uncached speedup "
                             "(default 5.0, or 1.5 with --quick)")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.quick:
        context = min(args.context, 64)
        tokens = min(args.tokens, 40)
        min_speedup = args.min_speedup if args.min_speedup else 1.5
    else:
        context, tokens = args.context, args.tokens
        min_speedup = args.min_speedup if args.min_speedup else 5.0
    return run_timing(context, tokens, min_speedup, args.json)


if __name__ == "__main__":
    sys.exit(main())
