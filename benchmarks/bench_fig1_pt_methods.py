"""Fig. 1 — prompt tuning method comparison under domain shift.

Reproduces the motivating figure: one4all Vanilla / DEPT / P-tuning-v2
prompts (trained on the most recent buffer only) against prefix tuning with
per-domain OVTs, on Gemma-2B and Phi-2 stand-ins over four LaMP datasets.
Expected shape: OVT prefix tuning clearly on top.
"""

import numpy as np

from repro.tuning import (
    DEPTTuner,
    PrefixTuner,
    PTuningV2Tuner,
    TuningConfig,
    VanillaPromptTuner,
)
from repro.eval.runner import evaluate_artifact

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

MODELS = ("gemma-2b-sim", "phi-2-sim")
DATASETS = ("LaMP-1", "LaMP-2", "LaMP-5", "LaMP-7")
ONE4ALL_TUNING = TuningConfig(steps=40, lr=0.05)


def _fig1_cell(context, model_name, dataset_name):
    """Scores of the four Fig. 1 methods for one (model, dataset)."""
    model = context.model(model_name)
    config = default_config()
    tuners = {
        "Vanilla": VanillaPromptTuner(model, context.tokenizer, ONE4ALL_TUNING),
        "DEPT": DEPTTuner(model, context.tokenizer, ONE4ALL_TUNING),
        "P-t* v2": PTuningV2Tuner(model, context.tokenizer, ONE4ALL_TUNING),
    }
    totals = {name: [] for name in (*tuners, "OVT")}
    for user_id in USER_IDS:
        task = context.user_task(dataset_name, user_id,
                                 config.buffer_capacity)
        metric = task.dataset.metric
        # One4all baselines: trained on the latest buffer only.
        for name, tuner in tuners.items():
            artifact = tuner.fit(task.last_buffer)
            totals[name].append(evaluate_artifact(
                context, model_name, artifact, task.queries, metric))
        # OVT: per-domain prefix tuning, oracle domain match (no NVM here —
        # Fig. 1 isolates the learning method).
        per_domain = {}
        for sample in task.training_stream:
            if sample.domain not in per_domain:
                per_domain[sample.domain] = PrefixTuner(
                    model, context.tokenizer, ONE4ALL_TUNING).fit([sample])
        scores = []
        for query in task.queries:
            artifact = per_domain.get(query.domain)
            scores.append(evaluate_artifact(context, model_name, artifact,
                                            [query], metric))
        totals["OVT"].append(float(np.mean(scores)))
    return {name: float(np.mean(values)) for name, values in totals.items()}


def test_fig1_pt_method_comparison(benchmark):
    context = shared_context()

    def run():
        results = {}
        for model_name in MODELS:
            for dataset_name in DATASETS:
                results[(model_name, dataset_name)] = _fig1_cell(
                    context, model_name, dataset_name)
        return results

    results = run_once(benchmark, run)
    methods = ["Vanilla", "DEPT", "P-t* v2", "OVT"]
    for model_name in MODELS:
        rows = [[ds] + [f"{results[(model_name, ds)][m]:.3f}" for m in methods]
                for ds in DATASETS]
        print_table(f"Fig. 1 ({model_name})", ["dataset"] + methods, rows)
    # Shape assertion: OVT wins on average.
    ovt = np.mean([results[k]["OVT"] for k in results])
    best_one4all = max(
        np.mean([results[k][m] for k in results])
        for m in ("Vanilla", "DEPT", "P-t* v2"))
    assert ovt > best_one4all
