"""Speculative draft-verify decoding vs plain batched decoding.

The decode loop's new fast path: a distilled draft model proposes up to
``max_draft`` greedy tokens per sequence per round, and the base model
verifies the whole proposal in one ragged ``decode_span`` forward.
Greedy acceptance keeps every answer token-identical to the plain
batched path (and therefore to the sequential reference) — the win is
fewer base-model forwards per emitted token, measured here as decode
tokens/s at serving batch sizes.

Usage:
    PYTHONPATH=src python benchmarks/bench_speculative.py            # timing
    PYTHONPATH=src python benchmarks/bench_speculative.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_speculative.py --quick \
        --json BENCH_speculative.json                                # CI artifact

Smoke mode is the CI gate for the whole subsystem: it checks token
identity across confidence policies, draft depths and batch sizes, then
requires speculative decoding to reach ``--min-speedup`` (1.3x) the
plain batched tokens/s at batch 8.  Timing interleaves plain/speculative
repetitions and compares medians, so a background-load spike hits both
arms instead of fabricating (or destroying) a speedup.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time

import numpy as np

from repro.data import build_corpus, build_tokenizer
from repro.llm import (
    DecodeScheduler,
    GenerationConfig,
    PretrainConfig,
    SpeculativeDecoder,
    build_draft_model,
    build_model,
    distill_draft,
    prefill,
    pretrain_lm,
)

# The tuned serving configuration: deep drafts with a permissive
# confidence cutoff, leaning on the distilled draft's high agreement.
TUNED_DRAFT_DEPTH = 10
TUNED_THRESHOLD = 0.3

DISTILL_PROMPTS = [
    "the movie was", "a quiet morning", "science fiction story",
    "my favorite recipe", "breaking news today", "the weather is",
    "he opened the door", "numbers and letters", "the committee agreed",
    "in the beginning", "her latest album", "the engine started",
]


def build_pair(*, pretrain_steps: int, distill_steps: int):
    """A pretrained base model and a draft distilled from it."""
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=400, seed=0)
    base = build_model("phi-2-sim", tok.vocab_size, max_seq_len=256)
    pretrain_lm(base, corpus, PretrainConfig(steps=pretrain_steps, seed=0))
    draft = build_draft_model("phi-2-sim", tok.vocab_size, max_seq_len=256)
    prompts = [np.asarray(tok.encode(text), dtype=np.int64)
               for text in DISTILL_PROMPTS]
    distill_draft(draft, base, prompts, max_new_tokens=48,
                  pretrain=PretrainConfig(steps=distill_steps, seed=1))
    return base, draft, tok, prompts


def decode_run(base, prompts, speculative, *, batch: int, max_new: int):
    """Drain one batch through the scheduler; timed decode loop only.

    Prefill happens outside the timed region — the benchmark measures
    the decode loop, which is where speculation changes the forward
    count.  Returns (seconds, generations, scheduler).
    """
    scheduler = DecodeScheduler(base, speculative=speculative)
    sequences = []
    for index in range(batch):
        ids = prompts[index % len(prompts)]
        state = prefill(base, ids[None])
        sequences.append(scheduler.admit(
            state,
            GenerationConfig(max_new_tokens=max_new, temperature=0.0),
            prompt_ids=ids))
    start = time.perf_counter()
    while scheduler.has_active:
        scheduler.decode_round()
    elapsed = time.perf_counter() - start
    return elapsed, [tuple(seq.generated) for seq in sequences], scheduler


def check_equivalence(base, draft, prompts, *, batch_sizes, depths,
                      policies, max_new: int) -> int:
    """Token identity of every speculative configuration vs plain."""
    failures = 0
    reference = {
        batch: decode_run(base, prompts, None, batch=batch,
                          max_new=max_new)[1]
        for batch in batch_sizes
    }
    for policy in policies:
        for depth in depths:
            for batch in batch_sizes:
                spec = SpeculativeDecoder(draft, max_draft=depth,
                                          policy=policy, threshold=0.1)
                _, generated, _ = decode_run(base, prompts, spec,
                                             batch=batch, max_new=max_new)
                ok = generated == reference[batch]
                if not ok:
                    failures += 1
                print(f"{'ok  ' if ok else 'FAIL'} policy={policy:<11} "
                      f"depth={depth:>2} batch={batch}")
    return failures


def timed_comparison(base, draft, prompts, *, batch: int, max_new: int,
                     reps: int):
    """Interleaved plain/speculative medians at one batch size."""
    spec = SpeculativeDecoder(draft, max_draft=TUNED_DRAFT_DEPTH,
                              threshold=TUNED_THRESHOLD)
    plain_times, spec_times = [], []
    last_scheduler = None
    reference = None
    for _ in range(reps):
        elapsed, generated, _ = decode_run(base, prompts, None,
                                           batch=batch, max_new=max_new)
        plain_times.append(elapsed)
        if reference is None:
            reference = generated
        elapsed, generated, last_scheduler = decode_run(
            base, prompts, spec, batch=batch, max_new=max_new)
        spec_times.append(elapsed)
        if generated != reference:
            return None  # identity failure trumps any timing
    tokens = batch * max_new
    t_plain = statistics.median(plain_times)
    t_spec = statistics.median(spec_times)
    sched = last_scheduler
    acceptance = (sched.draft_accepted / sched.draft_proposed
                  if sched.draft_proposed else 0.0)
    return {
        "tokens": tokens,
        "tokens_per_s_plain": tokens / t_plain,
        "tokens_per_s_speculative": tokens / t_spec,
        "speedup": t_plain / t_spec,
        "acceptance_rate": acceptance,
        "tokens_per_forward": (sched.tokens_emitted / sched.forwards
                               if sched.forwards else 0.0),
        "draft_forwards": sched.draft_forwards,
        "base_forwards": sched.forwards,
    }


def report(result: dict, batch: int, max_new: int) -> None:
    print(f"\n=== Speculative decoding: batch {batch} x "
          f"{max_new} tokens (draft depth {TUNED_DRAFT_DEPTH}) ===")
    print(f"plain:       {result['tokens_per_s_plain']:8.1f} tok/s")
    print(f"speculative: {result['tokens_per_s_speculative']:8.1f} tok/s")
    print(f"speedup:     {result['speedup']:8.2f}x")
    print(f"acceptance:  {result['acceptance_rate']:8.2f} "
          f"({result['tokens_per_forward']:.1f} tokens/base-forward)")


def run_gated(*, batch: int, max_new: int, reps: int, min_speedup: float,
              pretrain_steps: int, distill_steps: int,
              equivalence: bool, json_path: str | None,
              label: str) -> int:
    base, draft, _, prompts = build_pair(pretrain_steps=pretrain_steps,
                                         distill_steps=distill_steps)
    if equivalence:
        failures = check_equivalence(
            base, draft, prompts,
            batch_sizes=(1, 4, 8), depths=(1, 3, TUNED_DRAFT_DEPTH),
            policies=("max-prob", "entropy", "temperature", "top-k"),
            max_new=16)
        if failures:
            print(f"FAIL: {failures} speculative configuration(s) diverged "
                  f"from plain decoding")
            return 1
    result = timed_comparison(base, draft, prompts, batch=batch,
                              max_new=max_new, reps=reps)
    if result is None:
        print("FAIL: speculative generations diverged during timing")
        return 1
    report(result, batch, max_new)
    if json_path:
        payload = {
            "benchmark": "speculative",
            "config": {"batch": batch, "tokens_per_answer": max_new,
                       "model": "phi-2-sim",
                       "draft_depth": TUNED_DRAFT_DEPTH,
                       "threshold": TUNED_THRESHOLD,
                       "distill_steps": distill_steps, "reps": reps,
                       "mode": label},
            **result,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")
    if result["speedup"] < min_speedup:
        print(f"FAIL: speedup {result['speedup']:.2f}x below required "
              f"{min_speedup}x")
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: equivalence matrix plus the batch-8 "
                             "speedup requirement")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--batch", type=int, default=8,
                        help="concurrent sequences in the decode batch")
    parser.add_argument("--tokens", type=int, default=48,
                        help="tokens generated per sequence")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="required speculative-vs-plain tokens/s ratio")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_gated(batch=8, max_new=32, reps=9,
                         min_speedup=args.min_speedup,
                         pretrain_steps=200, distill_steps=900,
                         equivalence=True, json_path=args.json,
                         label="smoke")
    if args.quick:
        return run_gated(batch=min(args.batch, 8),
                         max_new=min(args.tokens, 32), reps=5,
                         min_speedup=args.min_speedup,
                         pretrain_steps=200, distill_steps=900,
                         equivalence=False, json_path=args.json,
                         label="quick")
    return run_gated(batch=args.batch, max_new=args.tokens, reps=11,
                     min_speedup=args.min_speedup,
                     pretrain_steps=200, distill_steps=900,
                     equivalence=True, json_path=args.json, label="full")


if __name__ == "__main__":
    sys.exit(main())
