"""Table IV — device-variation sweep (Phi-2, LaMP-5, NVM-3, buffer 20).

The paper sweeps sigma from 0.025 to 0.150.  Expected shape: NVCiM-PT on
top throughout, with mild degradation as sigma grows; baselines without
noise-aware training degrade at least as fast.
"""

import numpy as np

from repro.eval.runner import TABLE1_METHODS, evaluate_method

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

SIGMAS = (0.025, 0.050, 0.075, 0.100, 0.125, 0.150)


def test_table4_device_variation_sweep(benchmark):
    context = shared_context()

    def run():
        table = {}
        for sigma in SIGMAS:
            config = default_config(buffer_capacity=20, sigma=sigma)
            for method in TABLE1_METHODS:
                table[(sigma, method.name)] = evaluate_method(
                    context, "phi-2-sim", "LaMP-5", method, config,
                    user_ids=USER_IDS)
        return table

    table = run_once(benchmark, run)
    method_names = [m.name for m in TABLE1_METHODS]
    rows = [[f"{sigma:.3f}"]
            + [f"{table[(sigma, m)]:.3f}" for m in method_names]
            for sigma in SIGMAS]
    print_table("Table IV (Phi-2, LaMP-5, NVM-3, buffer=20)",
                ["dev. var. (sigma)"] + method_names, rows)

    nvcim = np.mean([table[(s, "NVCiM-PT")] for s in SIGMAS])
    others = {m: np.mean([table[(s, m)] for s in SIGMAS])
              for m in method_names if m != "NVCiM-PT"}
    print_table("Table IV — method means", ["method", "mean"],
                [["NVCiM-PT", f"{nvcim:.3f}"]]
                + [[m, f"{v:.3f}"] for m, v in others.items()])
    assert nvcim >= max(others.values()) - 0.02
