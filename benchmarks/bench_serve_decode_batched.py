"""Cross-user continuous batching vs sequential decoding in the engine.

The serving engine's multi-user hot path: N users' queries are in flight
at once over one shared frozen model.  The sequential reference finishes
each answer before starting the next, so the per-token python/numpy
dispatch overhead is paid once per token *per user*.  Continuous batching
(``answer_batch(batched=True)``) advances every pending answer one token
per round through a single batched forward, amortising that overhead
across the whole batch — answers are token-identical, the win is
aggregate tokens/s.

Usage:
    PYTHONPATH=src python benchmarks/bench_serve_decode_batched.py            # timing
    PYTHONPATH=src python benchmarks/bench_serve_decode_batched.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_serve_decode_batched.py --quick \
        --json BENCH_serve_decode.json                                        # CI artifact

The default (timing) mode serves one query from each of 8 concurrent
sessions at a 64-token budget and fails unless batched decoding reaches
``--min-speedup`` (3x) the sequential aggregate tokens/s with identical
answers.  Smoke mode skips timing and checks batched-vs-sequential
response equality (greedy and seeded sampling, with and without EOS), so
any batching drift fails CI fast.  ``--json`` writes the machine-readable
result for the perf-trajectory artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, QueryRequest, TuneRequest


def stream_for(user_id: int, count: int, seed: int = 0):
    dataset = make_dataset("LaMP-2")
    return dataset.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(n_sessions: int, *, pretrain_steps: int,
                 train_users: int = 1) -> tuple[PromptServeEngine, object]:
    """An engine with ``n_sessions`` resident users sharing one model.

    Only ``train_users`` libraries are actually trained (training is not
    what this benchmark measures); the rest adopt the first library, which
    still gives every session its own NVM deployment and prefill cache.
    """
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=400, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=pretrain_steps, seed=0))
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                               max_sessions=n_sessions)
    for user_id in range(train_users):
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    library = engine.session(0).library
    for user_id in range(train_users, n_sessions):
        engine.load_session(user_id, library)
    return engine, tok


def make_requests(engine: PromptServeEngine, n_sessions: int, n_tokens: int,
                  *, temperature: float = 0.1, seed: int = 3,
                  eos: bool = False) -> list[QueryRequest]:
    """One query per session, ragged texts, interleaved arrival order."""
    eos_id = engine.tokenizer.eos_id if eos else None
    generation = GenerationConfig(max_new_tokens=n_tokens,
                                  temperature=temperature, seed=seed,
                                  eos_id=eos_id)
    requests = [
        QueryRequest(user_id=user_id,
                     text=stream_for(user_id, 1, seed=40 + user_id)[0]
                     .input_text,
                     generation=generation,
                     request_id=f"u{user_id}")
        for user_id in range(n_sessions)
    ]
    return requests[::2] + requests[1::2]


def clear_prefill_caches(engine: PromptServeEngine) -> None:
    for user_id in engine.active_users():
        engine.session(user_id).clear_prefill_cache()


def run_timing(n_sessions: int, n_tokens: int, min_speedup: float,
               pretrain_steps: int, json_path: str | None) -> int:
    engine, _ = build_engine(n_sessions, pretrain_steps=pretrain_steps)
    # No EOS: every answer runs its full budget, so both paths generate
    # exactly n_sessions * n_tokens tokens and tokens/s compares cleanly.
    requests = make_requests(engine, n_sessions, n_tokens)

    # Warm-up programs each session's crossbars and deployment once; the
    # timed passes then measure decoding, not NVM programming.
    engine.answer_batch(requests, batched=False)

    clear_prefill_caches(engine)
    start = time.perf_counter()
    sequential = engine.answer_batch(requests, batched=False)
    t_sequential = time.perf_counter() - start

    clear_prefill_caches(engine)
    start = time.perf_counter()
    batched = engine.answer_batch(requests)
    t_batched = time.perf_counter() - start

    identical = batched == sequential
    total_tokens = n_sessions * n_tokens
    tps_sequential = total_tokens / t_sequential
    tps_batched = total_tokens / t_batched
    speedup = tps_batched / tps_sequential
    stats = engine.stats()

    print(f"\n=== Continuous batching: {n_sessions} sessions x "
          f"{n_tokens} tokens ===")
    print(f"sequential: {t_sequential * 1e3:9.1f} ms  "
          f"({tps_sequential:8.1f} tok/s)")
    print(f"batched:    {t_batched * 1e3:9.1f} ms  "
          f"({tps_batched:8.1f} tok/s)")
    print(f"speedup:    {speedup:9.2f}x")
    print(f"occupancy:  {stats['batch_occupancy']:9.2f} sequences/round "
          f"over {stats['decode_rounds']} rounds")
    print(f"identical responses: {identical}")

    if json_path:
        payload = {
            "benchmark": "serve_decode_batched",
            "config": {"sessions": n_sessions, "tokens_per_answer": n_tokens,
                       "model": "phi-2-sim", "preset": "fast"},
            "tokens_per_s_sequential": tps_sequential,
            "tokens_per_s_batched": tps_batched,
            "speedup": speedup,
            "batch_occupancy": stats["batch_occupancy"],
            "decode_rounds": stats["decode_rounds"],
            "identical": identical,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    if not identical:
        print("FAIL: batched responses diverged from the sequential path")
        return 1
    if speedup < min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below required {min_speedup}x")
        return 1
    print("OK")
    return 0


def run_smoke() -> int:
    """Response equality across sampling modes; no timing assertions."""
    engine, _ = build_engine(3, pretrain_steps=30)
    failures = 0
    cases = {
        "greedy+eos": dict(temperature=0.0, eos=True),
        "greedy": dict(temperature=0.0, eos=False),
        "sampled+eos": dict(temperature=0.7, eos=True),
        "sampled": dict(temperature=0.7, eos=False),
    }
    for name, kwargs in cases.items():
        requests = make_requests(engine, 3, 6, seed=11, **kwargs)
        sequential = engine.answer_batch(requests, batched=False)
        clear_prefill_caches(engine)
        batched = engine.answer_batch(requests)
        ok = batched == sequential
        print(f"{'ok  ' if ok else 'FAIL'} {name}: "
              f"{len(batched)} responses")
        failures += not ok
    if failures:
        print(f"FAIL: {failures} batching case(s) diverged")
        return 1
    print("OK: batched serving identical to sequential in all cases")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast equivalence-only check (for CI)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--sessions", type=int, default=8,
                        help="concurrent user sessions (4-16 is the "
                             "deployment range)")
    parser.add_argument("--tokens", type=int, default=64,
                        help="tokens generated per answer")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="required batched-vs-sequential speedup "
                             "(default 3.0, or 1.5 with --quick)")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.quick:
        sessions = min(args.sessions, 6)
        tokens = min(args.tokens, 32)
        min_speedup = args.min_speedup if args.min_speedup else 1.5
        pretrain_steps = 30
    else:
        sessions, tokens = args.sessions, args.tokens
        min_speedup = args.min_speedup if args.min_speedup else 3.0
        pretrain_steps = 60
    return run_timing(sessions, tokens, min_speedup, pretrain_steps,
                      args.json)


if __name__ == "__main__":
    sys.exit(main())
