"""Fig. 5 — retrieval latency and energy: NVCiM (RRAM, FeFET) vs CPU.

NeuroSim-style 22nm cost model over a sweep of stored-OVT counts.
Expected shape: both NVCiM technologies sit orders of magnitude below the
Jetson-Orin-class CPU, with the advantage peaking around the paper's
reported ~120x latency / ~60x energy at the largest scale.
"""

from repro.cim import retrieval_cost

from benchmarks.common import print_table, run_once

SAMPLE_COUNTS = (1000, 5000, 10000, 20000, 50000, 100000)
BACKENDS = ("RRAM", "FeFET", "CPU")


def test_fig5_latency_and_energy(benchmark):
    def run():
        return {(backend, n): retrieval_cost(backend, n)
                for backend in BACKENDS for n in SAMPLE_COUNTS}

    reports = run_once(benchmark, run)

    rows = []
    for n in SAMPLE_COUNTS:
        row = [f"{n // 100}"]
        for backend in BACKENDS:
            row.append(f"{reports[(backend, n)].latency_ns:,.0f}")
        rows.append(row)
    print_table("Fig. 5a — search latency (ns) vs #samples (x100)",
                ["#samples(x100)"] + list(BACKENDS), rows)

    rows = []
    for n in SAMPLE_COUNTS:
        row = [f"{n // 100}"]
        for backend in BACKENDS:
            row.append(f"{reports[(backend, n)].energy_pj / 1e6:,.2f}")
        rows.append(row)
    print_table("Fig. 5b — search energy (uJ) vs #samples (x100)",
                ["#samples(x100)"] + list(BACKENDS), rows)

    top = SAMPLE_COUNTS[-1]
    latency_gain = (reports[("CPU", top)].latency_ns
                    / reports[("RRAM", top)].latency_ns)
    energy_gain = (reports[("CPU", top)].energy_pj
                   / reports[("RRAM", top)].energy_pj)
    print(f"\nCPU/RRAM at n={top}: latency {latency_gain:.0f}x, "
          f"energy {energy_gain:.0f}x "
          f"(paper: up to ~120x latency, ~60x energy)")
    assert 50 < latency_gain < 400
    assert 20 < energy_gain < 250
    for n in SAMPLE_COUNTS:
        assert (reports[("FeFET", n)].energy_pj
                < reports[("RRAM", n)].energy_pj)
