"""Weight-quantized decode vs float32: the speed x accuracy frontier.

The frozen base model's dense float32 GEMMs are the serving decode
loop's FLOPs/bandwidth floor.  ``quantize_model`` converts every dense
sublayer Linear to :class:`repro.ag.QuantizedLinear` — packed int8/int4
codes, per-group scales, and a fused dequant-matmul kernel whose column
blocks stay cache-resident while the float weights would stream — so
tokens/s rises exactly where the model is big enough for float weights
to spill the last cache level.  The bench model (``quant-bench-sim``,
d_model 512 / d_ff 2048) is sized for that regime; the simulator-scale
paper models are small enough that both paths are cache-resident, which
is why the *accuracy* gates run on ``phi-2-sim`` while the *speed* gate
runs here.

Usage:
    PYTHONPATH=src python benchmarks/bench_quantized.py            # timing
    PYTHONPATH=src python benchmarks/bench_quantized.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_quantized.py --quick \
        --json BENCH_quantized.json                                # artifact

Smoke mode gates the whole subsystem: per-layer fused-vs-reference
equivalence and batch-layout determinism, int8 decode tokens/s at batch
8 >= ``--min-speedup`` (1.3x) the float path, int4 resident weight bytes
<= 0.3x float32, and the eval-runner accuracy/perplexity deltas at the
shipped default (int8, group 32) within ``--max-accuracy-drop`` /
``--max-ppl-ratio``.  Timing interleaves float/quantized repetitions and
compares medians, so a background-load spike hits both arms instead of
fabricating (or destroying) a speedup.
"""

from __future__ import annotations

import argparse
import copy
import json
import statistics
import sys
import time

import numpy as np

from repro.ag import QuantizedLinear, iter_modules
from repro.data import build_corpus, build_tokenizer
from repro.eval.quantized import quantization_quality
from repro.eval.runner import ExperimentContext
from repro.llm import (
    DecodeScheduler,
    EdgeModelSpec,
    GenerationConfig,
    MODEL_REGISTRY,
    build_model,
    prefill,
    quantization_stats,
    quantize_model,
    register_model,
)

# Sized so one FF weight matrix (512 x 2048 float32 = 4 MiB) exceeds a
# typical L2 while its int8 codes (1 MiB) fit: the fused kernel's win is
# cache residency, not instruction count.
BENCH_SPEC = EdgeModelSpec(
    name="quant-bench-sim", paper_model="edge-7B-class",
    d_model=512, n_heads=8, n_layers=3, d_ff=2048, base_seed=404,
)
if "quant-bench-sim" not in MODEL_REGISTRY:
    register_model(BENCH_SPEC)

PROMPTS = [
    "the movie was", "a quiet morning", "science fiction story",
    "my favorite recipe", "breaking news today", "the weather is",
    "he opened the door", "numbers and letters",
]


def build_bench_model(tok):
    """The bench-scale model, randomly initialized.

    Decode timing doesn't need trained weights — greedy emission is
    deterministic either way, and the GEMM cost is weight-value
    independent — so the bench skips pretraining a 10M-parameter model.
    """
    return build_model("quant-bench-sim", tok.vocab_size, max_seq_len=128)


def check_kernel_equivalence(model, *, mode: str, group_size: int,
                             rtol: float = 2e-4) -> int:
    """Fused kernel vs explicit dequantized-weights GEMM, every layer.

    Also checks batch-layout determinism: each row of a (B, 1, d) batch
    must be bitwise identical to the same row served alone.
    """
    quantized = copy.deepcopy(model)
    quantize_model(quantized, mode, group_size)
    rng = np.random.default_rng(0)
    failures = 0
    for module in iter_modules(quantized):
        if not isinstance(module, QuantizedLinear):
            continue
        x = rng.normal(size=(4, 1, module.in_features)).astype(np.float32)
        fused = module.affine_numpy(x)
        reference = module.reference_forward(x)
        scale = max(1.0, float(np.abs(reference).max()))
        if float(np.abs(fused - reference).max()) > rtol * scale:
            failures += 1
            print(f"FAIL equivalence {mode} layer "
                  f"({module.in_features}x{module.out_features})")
        solo = np.concatenate([module.affine_numpy(x[i:i + 1])
                               for i in range(x.shape[0])])
        if not (solo == fused).all():
            failures += 1
            print(f"FAIL batch-layout determinism {mode} layer "
                  f"({module.in_features}x{module.out_features})")
    return failures


def decode_run(model, prompts, *, batch: int, max_new: int):
    """Drain one batch through the scheduler; timed decode loop only."""
    scheduler = DecodeScheduler(model)
    sequences = []
    for index in range(batch):
        ids = prompts[index % len(prompts)]
        state = prefill(model, ids[None])
        sequences.append(scheduler.admit(
            state,
            GenerationConfig(max_new_tokens=max_new, temperature=0.0),
            prompt_ids=ids))
    start = time.perf_counter()
    while scheduler.has_active:
        scheduler.decode_round()
    elapsed = time.perf_counter() - start
    return elapsed, [tuple(seq.generated) for seq in sequences]


def timed_comparison(float_model, quantized_model, prompts, *, batch: int,
                     max_new: int, reps: int) -> dict:
    """Interleaved float/quantized decode medians at one batch size."""
    float_times, quant_times = [], []
    for _ in range(reps):
        elapsed, _ = decode_run(float_model, prompts, batch=batch,
                                max_new=max_new)
        float_times.append(elapsed)
        elapsed, _ = decode_run(quantized_model, prompts, batch=batch,
                                max_new=max_new)
        quant_times.append(elapsed)
    tokens = batch * max_new
    t_float = statistics.median(float_times)
    t_quant = statistics.median(quant_times)
    return {
        "tokens": tokens,
        "tokens_per_s_float32": tokens / t_float,
        "tokens_per_s_quantized": tokens / t_quant,
        "speedup": t_float / t_quant,
    }


def run_gated(*, batch: int, max_new: int, reps: int, min_speedup: float,
              max_int4_bytes_ratio: float, max_accuracy_drop: float,
              max_ppl_ratio: float, equivalence: bool, quality: bool,
              json_path: str | None, label: str) -> int:
    tok = build_tokenizer()
    build_corpus(tok, n_sentences=50, seed=0)  # materialize tokenizer vocab
    model = build_bench_model(tok)
    model.eval()
    prompts = [np.asarray(tok.encode(text), dtype=np.int64)
               for text in PROMPTS]

    failures = 0
    if equivalence:
        for mode in ("int8", "int4"):
            failures += check_kernel_equivalence(model, mode=mode,
                                                 group_size=32)
        print(f"equivalence: {'OK' if not failures else 'FAIL'}")
        if failures:
            return 1

    # --- speed: int8 decode at serving batch size ----------------------
    int8_model = copy.deepcopy(model)
    quantize_model(int8_model, "int8", 32)
    int8_model.eval()
    timing = timed_comparison(model, int8_model, prompts, batch=batch,
                              max_new=max_new, reps=reps)
    print(f"\n=== Quantized decode: batch {batch} x {max_new} tokens "
          f"(quant-bench-sim, int8 g32) ===")
    print(f"float32:   {timing['tokens_per_s_float32']:8.1f} tok/s")
    print(f"int8:      {timing['tokens_per_s_quantized']:8.1f} tok/s")
    print(f"speedup:   {timing['speedup']:8.2f}x")

    # --- memory: int4 resident bytes -----------------------------------
    int4_model = copy.deepcopy(model)
    quantize_model(int4_model, "int4", 32)
    int4_stats = quantization_stats(int4_model)
    dense_bytes = int4_stats["weight_bytes"] + int4_stats["weight_bytes_saved"]
    int4_ratio = int4_stats["weight_bytes"] / dense_bytes
    print(f"int4 bytes: {int4_stats['weight_bytes']} / {dense_bytes} "
          f"({int4_ratio:.3f}x float32)")

    # --- quality: eval-runner deltas at the shipped default ------------
    quality_report = None
    if quality:
        context = ExperimentContext(seed=0, corpus_sentences=600,
                                    n_queries=4)
        quality_report = quantization_quality(
            context, "phi-2-sim", "LaMP-1",
            points=(("int8", 32), ("int4", 32)), user_ids=(0, 1),
            ppl_windows=8)
        print("\nfrontier (phi-2-sim, LaMP-1):")
        print(f"  float32: accuracy {quality_report['float32']['accuracy']:.3f}"
              f"  ppl {quality_report['float32']['perplexity']:.3f}")
        for point in quality_report["points"]:
            print(f"  {point['mode']:>5} g{point['group_size']}: "
                  f"accuracy {point['accuracy']:.3f} "
                  f"(delta {point['accuracy_delta']:+.3f})  "
                  f"ppl ratio {point['perplexity_ratio']:.4f}  "
                  f"bytes {point['weight_bytes']}")

    if json_path:
        payload = {
            "benchmark": "quantized",
            "config": {"batch": batch, "tokens_per_answer": max_new,
                       "model": "quant-bench-sim", "group_size": 32,
                       "reps": reps, "mode": label},
            **timing,
            "int4_bytes_ratio": int4_ratio,
            "int4_weight_bytes": int4_stats["weight_bytes"],
            "quality": quality_report,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    if timing["speedup"] < min_speedup:
        print(f"FAIL: int8 speedup {timing['speedup']:.2f}x below required "
              f"{min_speedup}x")
        return 1
    if int4_ratio > max_int4_bytes_ratio:
        print(f"FAIL: int4 byte ratio {int4_ratio:.3f} above "
              f"{max_int4_bytes_ratio}")
        return 1
    if quality_report is not None:
        shipped = quality_report["points"][0]   # int8 g32, the default
        if shipped["accuracy_delta"] < -max_accuracy_drop:
            print(f"FAIL: int8 accuracy delta {shipped['accuracy_delta']:+.3f} "
                  f"below -{max_accuracy_drop}")
            return 1
        if shipped["perplexity_ratio"] > max_ppl_ratio:
            print(f"FAIL: int8 perplexity ratio "
                  f"{shipped['perplexity_ratio']:.4f} above {max_ppl_ratio}")
            return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="CI gate: equivalence + speedup + bytes + "
                             "accuracy-delta requirements")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--batch", type=int, default=8,
                        help="concurrent sequences in the decode batch")
    parser.add_argument("--tokens", type=int, default=32,
                        help="tokens generated per sequence")
    parser.add_argument("--min-speedup", type=float, default=1.3,
                        help="required int8-vs-float32 tokens/s ratio")
    parser.add_argument("--max-int4-bytes", type=float, default=0.3,
                        help="max int4 resident bytes as a float32 fraction")
    parser.add_argument("--max-accuracy-drop", type=float, default=0.05,
                        help="max answer-accuracy drop at int8 g32")
    parser.add_argument("--max-ppl-ratio", type=float, default=1.05,
                        help="max perplexity ratio at int8 g32")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    common = dict(min_speedup=args.min_speedup,
                  max_int4_bytes_ratio=args.max_int4_bytes,
                  max_accuracy_drop=args.max_accuracy_drop,
                  max_ppl_ratio=args.max_ppl_ratio,
                  json_path=args.json)
    if args.smoke:
        return run_gated(batch=8, max_new=24, reps=7, equivalence=True,
                         quality=True, label="smoke", **common)
    if args.quick:
        return run_gated(batch=min(args.batch, 8),
                         max_new=min(args.tokens, 24), reps=5,
                         equivalence=False, quality=False, label="quick",
                         **common)
    return run_gated(batch=args.batch, max_new=args.tokens, reps=9,
                     equivalence=True, quality=True, label="full", **common)


if __name__ == "__main__":
    sys.exit(main())
