"""Table III — buffer-size sweep (Phi-2, LaMP-5, NVM-3, sigma = 0.1).

The paper varies the data buffer from 10 to 60 samples.  Expected shape:
NVCiM-PT leads across sizes, with a sweet spot at medium buffers (more
buffer = better clustering, but each OVT covers a broader domain).
"""

import numpy as np

from repro.eval.runner import TABLE1_METHODS, evaluate_method

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

BUFFER_SIZES = (10, 20, 30, 40, 50, 60)


def test_table3_buffer_size_sweep(benchmark):
    context = shared_context()

    def run():
        table = {}
        for buffer_size in BUFFER_SIZES:
            config = default_config(buffer_capacity=buffer_size)
            for method in TABLE1_METHODS:
                table[(buffer_size, method.name)] = evaluate_method(
                    context, "phi-2-sim", "LaMP-5", method, config,
                    user_ids=USER_IDS)
        return table

    table = run_once(benchmark, run)
    method_names = [m.name for m in TABLE1_METHODS]
    rows = [[f"{bs} samples"]
            + [f"{table[(bs, m)]:.3f}" for m in method_names]
            for bs in BUFFER_SIZES]
    print_table("Table III (Phi-2, LaMP-5, NVM-3, sigma=0.1)",
                ["buffer size"] + method_names, rows)

    nvcim = np.mean([table[(bs, "NVCiM-PT")] for bs in BUFFER_SIZES])
    no_miti = np.mean([table[(bs, "No-Miti(MIPS)")] for bs in BUFFER_SIZES])
    assert nvcim > no_miti
