"""Session restore vs re-tune: the case for durable sessions.

When a user falls out of the serving engine's LRU, bringing them back
either replays their whole tuning history (every epoch, every
autoencoder fit, every crossbar reprogram) or restores a
:class:`SessionSnapshot` the eviction spilled to a
:class:`SessionStore`.  This benchmark times both paths against the same
trained user and checks the restored session answers byte-identically —
restore must be dramatically cheaper, or spilling would be pointless.

Both capture modes are measured: ``raw`` ships crossbar conductances and
generator states (bigger blob, zero reprogramming on restore); ``recipe``
ships counters only and replays the deterministic programming (tiny
blob, one reprogram's latency).  The ``--smoke`` gate requires the
faster mode to beat re-tuning by ``--min-restore-speedup`` (default 5x).

Usage:
    PYTHONPATH=src python benchmarks/bench_session_store.py           # timing
    PYTHONPATH=src python benchmarks/bench_session_store.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_session_store.py --quick \
        --json BENCH_session_store.json                               # artifact
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import (
    PromptServeEngine,
    QueryRequest,
    SessionSnapshot,
    TuneRequest,
)

USER_ID = 0


def best_of(fn, reps: int, rounds: int = 3) -> float:
    """Best per-call seconds over ``rounds`` timing loops."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def build_stack():
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=600, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=80, seed=0))
    return model, tok


def samples_for(count: int):
    ds = make_dataset("LaMP-2")
    return tuple(ds.generate(make_user(USER_ID, seed=0), count, seed=0))


def tune_fresh_session(model, tok, samples):
    """The restore-less path: retrain the user from their history."""
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"))
    engine.submit(TuneRequest(user_id=USER_ID, samples=samples))
    return engine


def run(n_samples: int, reps_restore: int, rounds_tune: int,
        min_speedup: float, json_path: str | None) -> int:
    model, tok = build_stack()
    samples = samples_for(n_samples)
    engine = tune_fresh_session(model, tok, samples)
    generation = GenerationConfig(max_new_tokens=4, temperature=0.0,
                                  eos_id=tok.eos_id)
    query = samples[-1].input_text
    expected = engine.query(QueryRequest(user_id=USER_ID, text=query,
                                         generation=generation)).answer
    session = engine.session(USER_ID)

    print(f"=== session store: {n_samples} samples, "
          f"{len(session.library)} OVTs, fast preset ===")

    t_tune = best_of(lambda: tune_fresh_session(model, tok, samples),
                     reps=1, rounds=rounds_tune)
    print(f"re-tune from history:   {t_tune * 1e3:9.1f} ms")

    equivalent = True
    mode_reports = []
    for mode in ("raw", "recipe"):
        t_capture = best_of(
            lambda m=mode: SessionSnapshot.capture(session, mode=m)
            .to_bytes(), reps_restore)
        blob = SessionSnapshot.capture(session, mode=mode).to_bytes()
        t_restore = best_of(
            lambda b=blob: SessionSnapshot.from_bytes(b)
            .build_session(model, tok).deployment(), reps_restore)
        restored = SessionSnapshot.from_bytes(blob).build_session(model, tok)
        answer = restored.answer(query, generation)
        if answer != expected:
            print(f"FAIL: {mode} restore answered {answer!r}, "
                  f"expected {expected!r}")
            equivalent = False
        speedup = t_tune / t_restore
        mode_reports.append({
            "mode": mode,
            "blob_kb": len(blob) / 1024,
            "capture_ms": t_capture * 1e3,
            "restore_ms": t_restore * 1e3,
            "speedup_vs_retune": speedup,
        })
        print(f"{mode:>7}: blob {len(blob) / 1024:8.1f} KiB  "
              f"capture {t_capture * 1e3:7.1f} ms  "
              f"restore {t_restore * 1e3:7.1f} ms  "
              f"-> {speedup:6.1f}x vs re-tune")

    best_speedup = max(report["speedup_vs_retune"]
                       for report in mode_reports)

    if json_path:
        payload = {
            "benchmark": "session_store",
            "config": {"n_samples": n_samples, "preset": "fast",
                       "user_id": USER_ID},
            "retune_ms": t_tune * 1e3,
            "modes": mode_reports,
            "best_restore_speedup": best_speedup,
            "equivalent": equivalent,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    failures = 0
    if not equivalent:
        failures += 1
    if best_speedup < min_speedup:
        print(f"FAIL: best restore speedup {best_speedup:.1f}x below "
              f"required {min_speedup}x")
        failures += 1
    if failures:
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast gated run for CI")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--samples", type=int, default=10,
                        help="training samples in the user's history")
    parser.add_argument("--min-restore-speedup", type=float, default=5.0,
                        help="required speedup of the fastest restore mode "
                             "over re-tuning the session from scratch")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke or args.quick:
        reps_restore, rounds_tune = 3, 1
    else:
        reps_restore, rounds_tune = 10, 3
    return run(args.samples, reps_restore, rounds_tune,
               args.min_restore_speedup, args.json)


if __name__ == "__main__":
    sys.exit(main())
