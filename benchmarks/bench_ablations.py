"""Ablations of the design choices DESIGN.md calls out.

1. SSA scale set / weights (Eq. 5): single scales vs the paper's weighted
   {1, 2, 4} under device noise.
2. Adaptive k (Eq. 2) vs fixed cluster counts in representative selection.
3. Tiered noise factors (Eq. 4) vs a flat sigma of the same average.
4. Autoencoder code size (paper: 48) vs smaller/larger encodings.
"""

from repro.core import KSelectionConfig
from repro.eval.runner import evaluate_method, TABLE1_METHODS
from repro.retrieval import SearchConfig

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

NVCIM_PT = TABLE1_METHODS[-1]


def _score_config(context, config, dataset="LaMP-2",
                  model_name="phi-2-sim") -> float:
    return evaluate_method(context, model_name, dataset, NVCIM_PT, config,
                           user_ids=USER_IDS)


def test_ablation_ssa_scales(benchmark):
    context = shared_context()
    # Every variant keeps scale 1 first: OVT restoration reads the
    # scale-1 store (the other scales exist only for retrieval).
    variants = {
        "scale {1} (MIPS-like)": SearchConfig(scales=(1,), weights=(1.0,)),
        "scales {1,2}": SearchConfig(scales=(1, 2), weights=(1.0, 0.8)),
        "paper {1,2,4} w=1/.8/.6": SearchConfig(),
        "{1,2,4} uniform w": SearchConfig(weights=(1.0, 1.0, 1.0)),
        "{1,4} coarse-heavy": SearchConfig(scales=(1, 4), weights=(0.5, 1.0)),
    }

    def run():
        return {name: _score_config(context,
                                    default_config(sigma=0.15, search=cfg))
                for name, cfg in variants.items()}

    scores = run_once(benchmark, run)
    print_table("Ablation — SSA scales (LaMP-2, NVM-3, sigma=0.15)",
                ["variant", "score"],
                [[k, f"{v:.3f}"] for k, v in scores.items()])
    assert scores["paper {1,2,4} w=1/.8/.6"] >= scores["scale {1} (MIPS-like)"] - 0.10


def test_ablation_k_selection(benchmark):
    context = shared_context()
    variants = {
        "adaptive (Eq. 2)": None,
        "fixed k=1": KSelectionConfig(n_min=1, n_max=1),
        "fixed k=2": KSelectionConfig(n_min=2, n_max=2),
        "fixed k=6": KSelectionConfig(n_min=6, n_max=6),
    }

    def run():
        out = {}
        for name, k_config in variants.items():
            config = default_config()
            if k_config is not None:
                config = config.replace(k_selection=k_config)
            out[name] = _score_config(context, config)
        return out

    scores = run_once(benchmark, run)
    print_table("Ablation — cluster count k (LaMP-2, NVM-3, sigma=0.1)",
                ["variant", "score"],
                [[k, f"{v:.3f}"] for k, v in scores.items()])
    # A single representative per full buffer cannot cover the domain mix.
    assert scores["adaptive (Eq. 2)"] >= scores["fixed k=1"] - 0.05


def test_ablation_noise_tiers(benchmark):
    context = shared_context()
    tiered = (1.0, 1.6, 1.6, 1.0)
    flat = (1.3, 1.3, 1.3, 1.3)  # same average strength
    none = (0.0, 0.0, 0.0, 0.0)

    def run():
        return {
            "tiered (Eq. 4)": _score_config(
                context, default_config(noise_factors=tiered),
                dataset="LaMP-5"),
            "flat sigma": _score_config(
                context, default_config(noise_factors=flat),
                dataset="LaMP-5"),
            "no injection": _score_config(
                context, default_config(noise_factors=none),
                dataset="LaMP-5"),
        }

    scores = run_once(benchmark, run)
    print_table("Ablation — Eq. 4 noise tiers (LaMP-5, NVM-3, sigma=0.1)",
                ["variant", "score"],
                [[k, f"{v:.3f}"] for k, v in scores.items()])
    assert scores["tiered (Eq. 4)"] >= scores["no injection"] - 0.05


def test_ablation_autoencoder_code_size(benchmark):
    context = shared_context()

    def run():
        out = {}
        for code_dim in (16, 32, 48):
            config = default_config(code_dim=code_dim)
            out[code_dim] = _score_config(context, config)
        return out

    scores = run_once(benchmark, run)
    print_table("Ablation — autoencoder code size (LaMP-2, NVM-3)",
                ["code dim", "score"],
                [[k, f"{v:.3f}"] for k, v in scores.items()])
    # Informational at this sample size; the paper's 48-dim encoding must
    # at least remain functional.
    assert scores[48] > 0.3
