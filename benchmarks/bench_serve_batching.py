"""Serving-engine batching: batched vs sequential multi-user inference.

A traffic shape the paper's tables never measure but its deployment story
implies: several users' queries arrive interleaved at one edge device.
``answer_batch`` regroups them per user, resolves each user's deployment
once, and memoises query encodings and NVM prompt read-backs within the
batch.  Answers must be byte-identical to the sequential path (retrieval
noise is drawn at programming time, not per read); the win is wall-clock.
"""

import time

from repro.serve import PromptServeEngine, QueryRequest

from benchmarks.common import (
    USER_IDS,
    default_config,
    print_table,
    run_once,
    shared_context,
)

QUERIES_PER_USER = 6
DATASET = "LaMP-2"
MODEL = "phi-2-sim"


def test_serve_batching_equivalence_and_speed(benchmark):
    context = shared_context()
    config = default_config()

    engine = PromptServeEngine(context.model(MODEL), context.tokenizer,
                               config, max_sessions=len(USER_IDS))
    requests = []
    for user_id in USER_IDS:
        task = context.user_task(DATASET, user_id, config.buffer_capacity)
        engine.load_session(
            user_id, context.library(MODEL, DATASET, user_id, config))
        for query in task.queries[:QUERIES_PER_USER]:
            requests.append(QueryRequest(
                user_id=user_id, text=query.input_text,
                generation=context.generation_config()))
    # Interleave users, the worst case for per-user amortisation.
    requests = requests[::2] + requests[1::2]

    def run():
        start = time.perf_counter()
        sequential = [engine.query(request) for request in requests]
        t_sequential = time.perf_counter() - start
        start = time.perf_counter()
        batched = engine.answer_batch(requests)
        t_batched = time.perf_counter() - start
        return sequential, batched, t_sequential, t_batched

    sequential, batched, t_sequential, t_batched = run_once(benchmark, run)

    assert [r.answer for r in sequential] == [r.answer for r in batched]
    assert [r.ovt_index for r in sequential] == [r.ovt_index for r in batched]
    print_table(
        "Serving engine — batched vs sequential "
        f"({len(USER_IDS)} users x {QUERIES_PER_USER} queries, {MODEL})",
        ["path", "wall time (ms)", "ms/query"],
        [["sequential", f"{t_sequential * 1e3:.1f}",
          f"{t_sequential * 1e3 / len(requests):.2f}"],
         ["batched", f"{t_batched * 1e3:.1f}",
          f"{t_batched * 1e3 / len(requests):.2f}"]])
    # Batching must never be meaningfully slower than the sequential path.
    assert t_batched <= t_sequential * 1.2
