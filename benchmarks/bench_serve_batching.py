"""Serving-engine batching: batched vs sequential multi-user inference.

A traffic shape the paper's tables never measure but its deployment story
implies: several users' queries arrive interleaved at one edge device.
``answer_batch`` regroups them per user, resolves each user's deployment
once, and memoises query encodings and NVM prompt read-backs within the
batch.  Answers must be byte-identical to the sequential path (retrieval
noise is drawn at programming time, not per read); the win is wall-clock.

Usage:
    PYTHONPATH=src python benchmarks/bench_serve_batching.py            # timing
    PYTHONPATH=src python benchmarks/bench_serve_batching.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_serve_batching.py --quick \
        --json BENCH_serve_batching.json                                # CI artifact

The timing mode interleaves queries from several tuned users (the worst
case for per-user amortisation), times the sequential path against
``answer_batch``, and fails if batching is meaningfully slower or any
response differs.  Smoke mode checks equivalence only.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, QueryRequest, TuneRequest


def stream_for(user_id: int, count: int, seed: int = 0):
    dataset = make_dataset("LaMP-2")
    return dataset.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(n_users: int, *, pretrain_steps: int):
    """An engine with ``n_users`` individually tuned resident sessions."""
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=400, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=pretrain_steps, seed=0))
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                               max_sessions=n_users)
    for user_id in range(n_users):
        engine.submit(TuneRequest(
            user_id=user_id,
            samples=tuple(stream_for(user_id, 10, seed=user_id))))
    return engine, tok


def make_requests(tok, n_users: int, per_user: int,
                  n_tokens: int) -> list[QueryRequest]:
    """Interleaved multi-user queries — worst case for amortisation."""
    generation = GenerationConfig(max_new_tokens=n_tokens, temperature=0.1,
                                  seed=3, eos_id=tok.eos_id)
    requests = [
        QueryRequest(user_id=user_id, text=sample.input_text,
                     generation=generation,
                     request_id=f"u{user_id}-q{i}")
        for user_id in range(n_users)
        for i, sample in enumerate(stream_for(user_id, per_user, seed=42))
    ]
    return requests[::2] + requests[1::2]


def run_timing(n_users: int, per_user: int, n_tokens: int,
               max_slowdown: float, pretrain_steps: int,
               json_path: str | None) -> int:
    engine, tok = build_engine(n_users, pretrain_steps=pretrain_steps)
    requests = make_requests(tok, n_users, per_user, n_tokens)

    # Warm-up programs every session's crossbars once; the timed passes
    # then compare query paths, not NVM programming.
    engine.answer_batch(requests, batched=False)

    start = time.perf_counter()
    sequential = [engine.query(request) for request in requests]
    t_sequential = time.perf_counter() - start

    start = time.perf_counter()
    batched = engine.answer_batch(requests)
    t_batched = time.perf_counter() - start

    identical = batched == sequential
    speedup = t_sequential / t_batched if t_batched else 0.0

    print(f"\n=== Serving engine, batched vs sequential: {n_users} users "
          f"x {per_user} queries ===")
    print(f"sequential: {t_sequential * 1e3:9.1f} ms  "
          f"({t_sequential * 1e3 / len(requests):6.2f} ms/query)")
    print(f"batched:    {t_batched * 1e3:9.1f} ms  "
          f"({t_batched * 1e3 / len(requests):6.2f} ms/query)")
    print(f"speedup:    {speedup:9.2f}x")
    print(f"identical responses: {identical}")

    if json_path:
        payload = {
            "benchmark": "serve_batching",
            "config": {"users": n_users, "queries_per_user": per_user,
                       "tokens_per_answer": n_tokens, "model": "phi-2-sim",
                       "preset": "fast"},
            "ms_per_query_sequential": t_sequential * 1e3 / len(requests),
            "ms_per_query_batched": t_batched * 1e3 / len(requests),
            "speedup": speedup,
            "identical": identical,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    if not identical:
        print("FAIL: batched responses diverged from the sequential path")
        return 1
    # Batching must never be meaningfully slower than sequential.
    if t_batched > t_sequential * max_slowdown:
        print(f"FAIL: batched path {t_batched / t_sequential:.2f}x the "
              f"sequential wall time (allowed {max_slowdown}x)")
        return 1
    print("OK")
    return 0


def run_smoke() -> int:
    """Response equality only; no timing assertions."""
    engine, tok = build_engine(2, pretrain_steps=30)
    requests = make_requests(tok, 2, 3, 6)
    sequential = [engine.query(request) for request in requests]
    batched = engine.answer_batch(requests)
    if batched != sequential:
        print("FAIL: batched responses diverged from the sequential path")
        return 1
    print(f"OK: {len(requests)} batched responses identical to sequential")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast equivalence-only check (for CI)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--users", type=int, default=3,
                        help="tuned resident sessions")
    parser.add_argument("--per-user", type=int, default=6,
                        help="queries per user")
    parser.add_argument("--tokens", type=int, default=12,
                        help="token budget per answer")
    parser.add_argument("--max-slowdown", type=float, default=1.2,
                        help="allowed batched/sequential wall-time ratio")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.quick:
        return run_timing(min(args.users, 2), min(args.per_user, 4),
                          min(args.tokens, 8), args.max_slowdown, 30,
                          args.json)
    return run_timing(args.users, args.per_user, args.tokens,
                      args.max_slowdown, 60, args.json)


if __name__ == "__main__":
    sys.exit(main())
