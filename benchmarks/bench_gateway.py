"""HTTP gateway under trace-driven load: latency percentiles + tokens/s.

The serving story end to end: a :class:`PromptGateway` (asyncio HTTP
front-end, bounded admission queue, worker-driven continuous batching)
answers a Poisson or bursty request trace fired open-loop by the
:mod:`repro.gateway.traffic` harness through the pooled retrying client.

Usage:
    PYTHONPATH=src python benchmarks/bench_gateway.py            # timing
    PYTHONPATH=src python benchmarks/bench_gateway.py --smoke    # CI gate
    PYTHONPATH=src python benchmarks/bench_gateway.py --quick \
        --json BENCH_gateway.json                                # CI artifact

Two things are gated, in every mode:

* **Byte-identity** — a query answered over HTTP must equal, field for
  field, the response the same ``engine.query`` call returns in-process.
* **Bounded-queue liveness** — under open-loop load every request must
  terminate decisively (answer, 429 rejection, or 504 deadline miss);
  transport errors or hangs fail the run.

The timing mode additionally reports client-observed p50/p99 latency,
completed-request throughput, and aggregate generated tokens/s.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import FrameworkConfig
from repro.data import build_corpus, build_tokenizer, make_dataset, make_user
from repro.gateway import (
    GatewayClient,
    GatewayConfig,
    PromptGateway,
    TraceConfig,
    build_trace,
    replay,
)
from repro.llm import GenerationConfig, PretrainConfig, build_model, pretrain_lm
from repro.serve import PromptServeEngine, QueryRequest, TuneRequest


def stream_for(user_id: int, count: int, seed: int = 0):
    dataset = make_dataset("LaMP-2")
    return dataset.generate(make_user(user_id, seed=0), count, seed=seed)


def build_engine(n_users: int, *, pretrain_steps: int,
                 max_pending: int | None = None):
    """An engine with ``n_users`` resident tuned-or-adopted sessions."""
    tok = build_tokenizer()
    corpus = build_corpus(tok, n_sentences=400, seed=0)
    model = build_model("phi-2-sim", tok.vocab_size)
    pretrain_lm(model, corpus, PretrainConfig(steps=pretrain_steps, seed=0))
    engine = PromptServeEngine(model, tok, FrameworkConfig.preset("fast"),
                               max_sessions=n_users,
                               max_pending=max_pending)
    engine.submit(TuneRequest(
        user_id=0, samples=tuple(stream_for(0, 10, seed=0))))
    library = engine.session(0).library
    for user_id in range(1, n_users):
        engine.load_session(user_id, library)
    return engine, tok


def check_byte_identity(client: GatewayClient, engine: PromptServeEngine,
                        generation: GenerationConfig, n_users: int) -> bool:
    """HTTP answers vs direct engine calls for a handful of queries."""
    identical = True
    for user_id in range(min(n_users, 3)):
        sample = stream_for(user_id, 1, seed=90 + user_id)[0]
        request = QueryRequest(user_id=user_id, text=sample.input_text,
                               generation=generation,
                               request_id=f"ident-{user_id}")
        over_http = client.query(user_id, sample.input_text,
                                 generation=generation,
                                 request_id=f"ident-{user_id}")
        direct = engine.query(request)
        if over_http != direct:
            identical = False
            print(f"MISMATCH user {user_id}: http={over_http!r} "
                  f"direct={direct!r}")
    return identical


def text_source(n_users: int):
    """Per-user query texts, cycled deterministically."""
    pools = {user_id: [s.input_text
                       for s in stream_for(user_id, 8, seed=50 + user_id)]
             for user_id in range(n_users)}

    def text_for(user_id: int, k: int) -> str:
        pool = pools[user_id]
        return pool[k % len(pool)]

    return text_for


def run_load(arrival: str, n_users: int, rate_rps: float, duration_s: float,
             n_tokens: int, pretrain_steps: int, max_queue: int,
             json_path: str | None) -> int:
    engine, _ = build_engine(n_users, pretrain_steps=pretrain_steps)
    # No EOS: every completed answer generates exactly n_tokens, so
    # aggregate tokens/s is exact rather than answer-length dependent.
    generation = GenerationConfig(max_new_tokens=n_tokens, temperature=0.1,
                                  seed=3, eos_id=None)
    trace_config = TraceConfig(n_users=n_users, zipf_alpha=1.1,
                               rate_rps=rate_rps, duration_s=duration_s,
                               arrival=arrival, seed=0)
    trace = build_trace(trace_config, text_source(n_users))
    gateway_config = GatewayConfig(port=0, max_queue=max_queue, max_batch=8)

    with PromptGateway(engine, gateway_config) as gateway:
        host, port = gateway.address
        with GatewayClient(host, port, pool_size=16) as client:
            identical = check_byte_identity(client, engine, generation,
                                            n_users)
            report = replay(client, trace, generation=generation,
                            max_workers=16)
            stats = client.stats()

    summary = report.summary()
    accounted = (report.completed + report.rejected +
                 report.deadline_misses + report.transport_errors)
    tokens_per_s = (report.completed * n_tokens / report.wall_s
                    if report.wall_s else 0.0)

    print(f"\n=== Gateway under {arrival} load: {len(trace)} requests, "
          f"{n_users} users, {rate_rps:.0f} rps offered ===")
    print(f"completed:  {report.completed:6d}   "
          f"rejected(429): {report.rejected}   "
          f"deadline(504): {report.deadline_misses}   "
          f"errors: {report.transport_errors}")
    print(f"latency:    p50 {summary['latency_p50_ms']:8.1f} ms   "
          f"p99 {summary['latency_p99_ms']:8.1f} ms")
    print(f"throughput: {summary['throughput_rps']:8.1f} answered rps   "
          f"{tokens_per_s:8.1f} tok/s")
    print(f"engine:     p50 {stats['engine']['latency_ms']['p50_ms']:.1f} ms "
          f"over {stats['engine']['latency_ms']['count']} served")
    print(f"identical responses: {identical}")

    if json_path:
        payload = {
            "benchmark": "gateway",
            "config": {"arrival": arrival, "users": n_users,
                       "offered_rps": rate_rps, "duration_s": duration_s,
                       "tokens_per_answer": n_tokens,
                       "max_queue": max_queue, "model": "phi-2-sim",
                       "preset": "fast"},
            "tokens_per_s": tokens_per_s,
            "identical": identical,
            **summary,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    if not identical:
        print("FAIL: HTTP responses diverged from direct engine calls")
        return 1
    if report.transport_errors or accounted != report.n_requests:
        print(f"FAIL: {report.transport_errors} transport errors, "
              f"{report.n_requests - accounted} requests unaccounted")
        return 1
    if not report.completed:
        print("FAIL: no request completed under load")
        return 1
    print("OK")
    return 0


def run_smoke() -> int:
    """Fast CI gate: identity + bounded-queue liveness at tiny scale."""
    engine, tok = build_engine(2, pretrain_steps=30)
    generation = GenerationConfig(max_new_tokens=4, temperature=0.1,
                                  seed=3, eos_id=tok.eos_id)
    trace = build_trace(
        TraceConfig(n_users=2, rate_rps=15.0, duration_s=1.0, seed=0),
        text_source(2))
    config = GatewayConfig(port=0, max_queue=8, max_batch=4)
    failures = 0
    with PromptGateway(engine, config) as gateway:
        host, port = gateway.address
        with GatewayClient(host, port) as client:
            if client.health().get("status") != "ok":
                print("FAIL health check")
                failures += 1
            identical = check_byte_identity(client, engine, generation, 2)
            print(f"{'ok  ' if identical else 'FAIL'} byte-identity "
                  f"(HTTP vs direct engine calls)")
            failures += not identical
            report = replay(client, trace, generation=generation,
                            max_workers=8)
            terminated = (report.completed + report.rejected +
                          report.deadline_misses == report.n_requests)
            survived = (report.transport_errors == 0 and report.completed
                        and terminated)
            print(f"{'ok  ' if survived else 'FAIL'} poisson replay: "
                  f"{report.completed}/{report.n_requests} answered, "
                  f"{report.rejected} rejected, "
                  f"{report.transport_errors} errors")
            failures += not survived
    if failures:
        print(f"FAIL: {failures} gateway smoke case(s)")
        return 1
    print("OK: gateway served the trace with a bounded queue, "
          "byte-identical to the engine")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast identity + liveness check (for CI)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--arrival", choices=["poisson", "bursty"],
                        default="poisson", help="arrival process")
    parser.add_argument("--users", type=int, default=8,
                        help="resident user sessions (trace population)")
    parser.add_argument("--rate", type=float, default=30.0,
                        help="offered load, requests/second")
    parser.add_argument("--duration", type=float, default=5.0,
                        help="trace length in seconds")
    parser.add_argument("--tokens", type=int, default=8,
                        help="tokens generated per answer")
    parser.add_argument("--max-queue", type=int, default=32,
                        help="gateway admission-queue bound")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke:
        return run_smoke()
    if args.quick:
        return run_load(args.arrival, min(args.users, 4),
                        min(args.rate, 15.0), min(args.duration, 2.0),
                        min(args.tokens, 6), 30, args.max_queue, args.json)
    return run_load(args.arrival, args.users, args.rate, args.duration,
                    args.tokens, 60, args.max_queue, args.json)


if __name__ == "__main__":
    sys.exit(main())
