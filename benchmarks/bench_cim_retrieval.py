"""Vectorized TileBank CiM simulation vs the per-tile reference.

The retrieval hot path of the serving engine: every query is a scaled
search over NVM crossbars.  The per-tile reference walks a Python grid of
``CrossbarArray`` objects (one small matvec + one ADC pass per tile, per
query); the vectorized ``TileBank`` layout evaluates whole query batches
with one GEMM and one vectorized ADC pass per row-tile group.  Both
program bit-identical conductances, so this benchmark is pure simulation
throughput: the speedup is dispatch amortisation, not different physics.

Two gates:

* ``query_batch`` with 32 queries must beat 32 sequential ``query`` calls
  on the reference layout by ``--min-batched-speedup`` (default 5x), at
  the paper's 384x128 subarray geometry.
* vectorized single-query ``matvec`` must beat the per-tile reference by
  ``--min-matvec-speedup`` (default 3x) at a 96x48 subarray geometry.
  Small subarrays are the dispatch-bound regime (IR drop keeps practical
  crossbars at 48-128 rows, so fine tilings are realistic); at 384x128
  both layouts stream the same conductance bytes and converge to the
  memory bandwidth floor, so that geometry is reported but not gated.

Usage:
    PYTHONPATH=src python benchmarks/bench_cim_retrieval.py           # timing
    PYTHONPATH=src python benchmarks/bench_cim_retrieval.py --smoke   # CI gate
    PYTHONPATH=src python benchmarks/bench_cim_retrieval.py --quick \
        --json BENCH_cim_retrieval.json                               # artifact
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.cim import CiMMatrix
from repro.nvm import get_device
from repro.retrieval import CiMSearchEngine, SSA_CONFIG

PAPER_GEOMETRY = (384, 128)
GATE_GEOMETRY = (96, 48)


def best_of(fn, reps: int, rounds: int = 3) -> float:
    """Best per-call seconds over ``rounds`` timing loops."""
    fn()
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            fn()
        best = min(best, (time.perf_counter() - start) / reps)
    return best


def make_store(n_ovts: int, tokens: int = 12, code_dim: int = 48,
               seed: int = 0) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(tokens, code_dim)).astype(np.float32)
            for _ in range(n_ovts)]


def make_queries(count: int, code_dim: int = 48,
                 seed: int = 1) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [rng.normal(size=(10, code_dim)).astype(np.float32)
            for _ in range(count)]


def build_engine(ovts: list[np.ndarray], *, vectorized: bool,
                 seed: int = 2) -> CiMSearchEngine:
    engine = CiMSearchEngine(get_device("NVM-3"), sigma=0.1,
                             config=SSA_CONFIG, vectorized=vectorized,
                             rng=np.random.default_rng(seed))
    engine.build(ovts)
    return engine


def bench_matvec(rows: int, cols: int, reps: int) -> dict:
    """Single-query matvec, vectorized vs reference, one geometry."""
    rng = np.random.default_rng(3)
    w = rng.normal(size=(768, 64)).astype(np.float32)
    x = rng.normal(size=768).astype(np.float32)
    times = {}
    for vectorized in (False, True):
        matrix = CiMMatrix(w, get_device("NVM-3"), sigma=0.1, rows=rows,
                           cols=cols, rng=np.random.default_rng(4),
                           vectorized=vectorized)
        key = "vectorized" if vectorized else "reference"
        times[key] = best_of(lambda m=matrix: m.matvec(x), reps)
    return {
        "geometry": f"{rows}x{cols}",
        "reference_us": times["reference"] * 1e6,
        "vectorized_us": times["vectorized"] * 1e6,
        "speedup": times["reference"] / times["vectorized"],
    }


def check_equivalence(n_ovts: int, n_queries: int) -> bool:
    """Scores agree across layouts and across batch widths."""
    ovts = make_store(n_ovts)
    queries = make_queries(n_queries)
    reference = build_engine(ovts, vectorized=False)
    vectorized = build_engine(ovts, vectorized=True)
    batched = vectorized.query_batch(queries)
    ok = True
    sequential = np.stack([vectorized.query(q) for q in queries])
    if not np.array_equal(batched, sequential):
        print("FAIL: batched scores differ from sequential (vectorized)")
        ok = False
    ref_scores = np.stack([reference.query(q) for q in queries])
    if not np.allclose(batched, ref_scores, rtol=1e-3, atol=1e-3):
        print("FAIL: vectorized scores drift from the per-tile reference")
        ok = False
    if vectorized.retrieve_batch(queries) != \
            [reference.retrieve(q) for q in queries]:
        print("FAIL: batched retrieval picks different OVTs")
        ok = False
    return ok


def run(n_ovts: int, batch_sizes: list[int], reps_matvec: int,
        reps_query: int, min_batched: float, min_matvec: float,
        json_path: str | None) -> int:
    ovts = make_store(n_ovts)
    reference = build_engine(ovts, vectorized=False)
    vectorized = build_engine(ovts, vectorized=True)
    queries = make_queries(max(batch_sizes))

    print(f"=== CiM retrieval: {n_ovts} OVTs, SSA scales "
          f"{SSA_CONFIG.scales}, NVM-3, sigma 0.1 ===")

    matvec_reports = [
        bench_matvec(*PAPER_GEOMETRY, reps_matvec),
        bench_matvec(*GATE_GEOMETRY, reps_matvec),
    ]
    for report in matvec_reports:
        print(f"matvec {report['geometry']:>8}: "
              f"reference {report['reference_us']:8.1f} us  "
              f"vectorized {report['vectorized_us']:8.1f} us  "
              f"-> {report['speedup']:5.2f}x")
    gated_matvec = matvec_reports[-1]

    t_sequential = best_of(
        lambda: [reference.query(q) for q in queries], reps_query)
    query_reports = []
    for size in batch_sizes:
        chunk = queries[:size]
        t_batched = best_of(
            lambda c=chunk: vectorized.query_batch(c), reps_query)
        # Normalise to the full query set so sizes compare directly.
        per_query_batched = t_batched / size
        speedup = (t_sequential / len(queries)) / per_query_batched
        query_reports.append({
            "batch_size": size,
            "batched_ms": t_batched * 1e3,
            "per_query_us": per_query_batched * 1e6,
            "speedup_vs_sequential_reference": speedup,
        })
        print(f"query_batch({size:3d}): {t_batched * 1e3:8.2f} ms  "
              f"({per_query_batched * 1e6:8.1f} us/query)  "
              f"-> {speedup:5.2f}x vs sequential reference")
    print(f"sequential reference ({len(queries)} queries): "
          f"{t_sequential * 1e3:8.2f} ms")

    equivalent = check_equivalence(min(n_ovts, 16), 6)
    batched_speedup = query_reports[-1]["speedup_vs_sequential_reference"]

    if json_path:
        payload = {
            "benchmark": "cim_retrieval",
            "config": {"n_ovts": n_ovts, "device": "NVM-3", "sigma": 0.1,
                       "scales": list(SSA_CONFIG.scales),
                       "paper_geometry": "x".join(map(str, PAPER_GEOMETRY)),
                       "gate_geometry": "x".join(map(str, GATE_GEOMETRY))},
            "matvec": matvec_reports,
            "query_batch": query_reports,
            "batched_speedup": batched_speedup,
            "matvec_speedup": gated_matvec["speedup"],
            "equivalent": equivalent,
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {json_path}")

    failures = 0
    if not equivalent:
        failures += 1
    if batched_speedup < min_batched:
        print(f"FAIL: batched speedup {batched_speedup:.2f}x below "
              f"required {min_batched}x")
        failures += 1
    if gated_matvec["speedup"] < min_matvec:
        print(f"FAIL: matvec speedup {gated_matvec['speedup']:.2f}x at "
              f"{gated_matvec['geometry']} below required {min_matvec}x")
        failures += 1
    if failures:
        return 1
    print("OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast gated run for CI")
    parser.add_argument("--quick", action="store_true",
                        help="reduced timing run (CI perf artifact)")
    parser.add_argument("--ovts", type=int, default=64,
                        help="stored OVTs (columns per scale store)")
    parser.add_argument("--min-batched-speedup", type=float, default=5.0,
                        help="required 32-query batched speedup over the "
                             "sequential per-tile reference")
    parser.add_argument("--min-matvec-speedup", type=float, default=3.0,
                        help="required vectorized matvec speedup at the "
                             "gate geometry")
    parser.add_argument("--json", type=str, default=None,
                        help="write machine-readable results here")
    args = parser.parse_args(argv)
    if args.smoke or args.quick:
        reps_matvec, reps_query = 20, 2
        batch_sizes = [1, 8, 32]
    else:
        reps_matvec, reps_query = 100, 5
        batch_sizes = [1, 8, 32]
    return run(args.ovts, batch_sizes, reps_matvec, reps_query,
               args.min_batched_speedup, args.min_matvec_speedup,
               args.json)


if __name__ == "__main__":
    sys.exit(main())
