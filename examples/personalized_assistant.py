"""A personalised movie assistant: why one4all prompts fail under domain
shift, and how OVT retrieval fixes it.

Two users with different tastes interact with the same frozen edge LLM.
A one4all soft prompt trained on each user's most recent session forgets
their earlier domains; NVCiM-PT accumulates one OVT per domain in NVM and
retrieves the right one per query.

Run:  python examples/personalized_assistant.py
"""

import numpy as np

from repro import (
    FrameworkConfig,
    GenerationConfig,
    PromptServeEngine,
    QueryRequest,
    TuneRequest,
    build_corpus,
    build_tokenizer,
    load_pretrained_model,
    make_dataset,
    make_user,
)
from repro.eval import score_output
from repro.tuning import TuningConfig, VanillaPromptTuner, generate_with_artifact


def main() -> None:
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    model = load_pretrained_model("gemma-2b-sim", corpus,
                                  tokenizer.vocab_size, seed=0)
    dataset = make_dataset("LaMP-2")
    config = FrameworkConfig(buffer_capacity=20, device_name="NVM-4",
                             sigma=0.1)
    generation = GenerationConfig(max_new_tokens=8, temperature=0.1,
                                  eos_id=tokenizer.eos_id)

    # One engine serves both users' personal OVT libraries over the one
    # shared frozen base model.
    engine = PromptServeEngine(model, tokenizer, config)

    for user_id in (3, 7):
        user = make_user(user_id, seed=0)
        domains = dataset.user_domains(user)
        print(f"\n--- user {user_id} (topics: "
              f"{', '.join(user.preferred_topics)}) ---")

        # Domain-shifted sessions; keep the last session for the one4all
        # baseline.
        last_session = []
        for domain in domains:
            last_session = dataset.generate(user, config.buffer_capacity,
                                            seed=user_id, domains=[domain])
            engine.submit(TuneRequest(user_id=user_id,
                                      samples=tuple(last_session)))

        one4all = VanillaPromptTuner(model, tokenizer,
                                     TuningConfig()).fit(last_session)

        queries = dataset.generate(user, 9, seed=500 + user_id)
        responses = engine.answer_batch(
            [QueryRequest(user_id=user_id, text=q.input_text,
                          generation=generation) for q in queries])
        scores = {"one4all (latest buffer)": [], "NVCiM-PT": []}
        for query, response in zip(queries, responses):
            baseline = generate_with_artifact(model, tokenizer, one4all,
                                              query.input_text, generation)
            scores["one4all (latest buffer)"].append(
                score_output("accuracy", baseline, query.target_text))
            scores["NVCiM-PT"].append(
                score_output("accuracy", response.answer, query.target_text))
        for name, values in scores.items():
            print(f"  {name:24s}: accuracy {np.mean(values):.2f}")


if __name__ == "__main__":
    main()
