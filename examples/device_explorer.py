"""Explore NVM technologies: accuracy under each Table II device plus the
latency/energy the CiM search saves over a CPU.

One OVT library is trained once and then deployed on all five devices —
exactly how the paper's Table I reuses the same prompts across NVMs.

Run:  python examples/device_explorer.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    FrameworkConfig,
    GenerationConfig,
    available_devices,
    build_corpus,
    build_tokenizer,
    get_device,
    load_pretrained_model,
    make_dataset,
    make_user,
)
from repro.cim import retrieval_cost
from repro.core import NVCiMDeployment, OVTTrainingPipeline
from repro.eval import score_output


def main() -> None:
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    model = load_pretrained_model("phi-2-sim", corpus, tokenizer.vocab_size,
                                  seed=0)
    dataset = make_dataset("LaMP-2")
    user = make_user(1, seed=0)
    config = FrameworkConfig(buffer_capacity=20, sigma=0.1)

    pipeline = OVTTrainingPipeline(model, tokenizer, config)
    for domain in dataset.user_domains(user):
        for sample in dataset.generate(user, config.buffer_capacity,
                                       seed=3, domains=[domain]):
            pipeline.observe(sample)
    queries = dataset.generate(user, 8, seed=77)
    generation = GenerationConfig(max_new_tokens=6, temperature=0.1,
                                  eos_id=tokenizer.eos_id)

    print(f"{'device':8s} {'tech':6s} {'levels':>6s} {'accuracy':>9s}")
    for device_name in available_devices():
        device = get_device(device_name)
        deployment = NVCiMDeployment(
            model, tokenizer, pipeline.library,
            replace(config, device_name=device_name))
        scores = [score_output("accuracy",
                               deployment.answer(q.input_text, generation),
                               q.target_text)
                  for q in queries]
        print(f"{device_name:8s} {device.kind:6s} {device.n_levels:>6d} "
              f"{np.mean(scores):>9.2f}")

    print("\nretrieval cost at 10,000 stored OVTs (paper Fig. 5 model):")
    for backend in ("RRAM", "FeFET", "CPU"):
        report = retrieval_cost(backend, 10_000)
        print(f"  {backend:6s}: {report.latency_ns / 1e3:10.1f} us   "
              f"{report.energy_pj / 1e6:10.2f} uJ")


if __name__ == "__main__":
    main()
