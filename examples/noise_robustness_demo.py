"""Noise-aware training in action (paper Eq. 4).

Trains the same user's OVTs twice — with and without noise injection —
and compares what survives an NVM round-trip as device variation grows.

Run:  python examples/noise_robustness_demo.py
"""

from dataclasses import replace

import numpy as np

from repro import (
    FrameworkConfig,
    GenerationConfig,
    build_corpus,
    build_tokenizer,
    load_pretrained_model,
    make_dataset,
    make_user,
)
from repro.core import NVCiMDeployment, OVTTrainingPipeline
from repro.eval import score_output

SIGMAS = (0.025, 0.075, 0.125)


def main() -> None:
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    model = load_pretrained_model("phi-2-sim", corpus, tokenizer.vocab_size,
                                  seed=0)
    dataset = make_dataset("LaMP-5")
    user = make_user(2, seed=0)
    generation = GenerationConfig(max_new_tokens=8, temperature=0.1,
                                  eos_id=tokenizer.eos_id)
    queries = dataset.generate(user, 8, seed=42)

    libraries = {}
    for noise_aware in (False, True):
        config = FrameworkConfig(buffer_capacity=20, noise_aware=noise_aware)
        pipeline = OVTTrainingPipeline(model, tokenizer, config)
        for domain in dataset.user_domains(user):
            for sample in dataset.generate(user, config.buffer_capacity,
                                           seed=9, domains=[domain]):
                pipeline.observe(sample)
        libraries[noise_aware] = (config, pipeline.library)

    print(f"{'sigma':>6s} {'plain PT':>10s} {'noise-aware':>12s}")
    for sigma in SIGMAS:
        row = []
        for noise_aware in (False, True):
            config, library = libraries[noise_aware]
            deployment = NVCiMDeployment(model, tokenizer, library,
                                         replace(config, sigma=sigma))
            scores = [score_output("rouge1",
                                   deployment.answer(q.input_text, generation),
                                   q.target_text)
                      for q in queries]
            row.append(float(np.mean(scores)))
        print(f"{sigma:>6.3f} {row[0]:>10.3f} {row[1]:>12.3f}")
    print("\n(noise-aware training should hold up better as sigma grows)")


if __name__ == "__main__":
    main()
