"""Multi-user serving: one shared edge LLM, many personal OVT libraries.

The paper's deployment target is an edge device serving several users, each
with their own OVT library programmed onto NVM.  This demo drives the
serving engine the way a request router would:

* interleaved training traffic from four users (``submit_batch``),
* an interleaved query batch (``answer_batch``) that the engine regroups
  per user so each user's crossbars are programmed once,
* per-response telemetry (selected OVT, scores, analytic latency/energy),
* a bounded session cache: with ``max_sessions=3``, the fourth user evicts
  the least-recently-used library, modelling limited on-device NVM.

Run:  python examples/multi_user_serving.py
"""

from repro import (
    FrameworkConfig,
    GenerationConfig,
    PromptServeEngine,
    QueryRequest,
    TuneRequest,
    build_corpus,
    build_tokenizer,
    load_pretrained_model,
    make_dataset,
    make_user,
)

USER_IDS = (0, 1, 2, 3)


def main() -> None:
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    print("pretraining phi-2-sim on the synthetic corpus ...")
    model = load_pretrained_model("phi-2-sim", corpus, tokenizer.vocab_size,
                                  seed=0)
    dataset = make_dataset("LaMP-2")
    config = FrameworkConfig.preset("table1", buffer_capacity=10,
                                    tuning={"steps": 20, "lr": 0.05})
    engine = PromptServeEngine(model, tokenizer, config, max_sessions=3)

    # --- training traffic, interleaved across users ---------------------
    tune_requests = [
        TuneRequest(user_id=uid,
                    samples=tuple(dataset.generate(make_user(uid, seed=0),
                                                   config.buffer_capacity,
                                                   seed=uid)))
        for uid in USER_IDS
    ]
    for response in engine.submit_batch(tune_requests):
        print(f"  user {response.user_id}: {response.accepted} samples -> "
              f"{response.library_size} OVTs "
              f"({response.epochs_fired} epoch(s))")
    print(f"resident sessions (LRU -> MRU): {engine.active_users()} "
          f"(user {USER_IDS[0]} was evicted: "
          f"{not engine.has_session(USER_IDS[0])})")

    # --- one interleaved query batch ------------------------------------
    generation = GenerationConfig(max_new_tokens=6, temperature=0.1,
                                  eos_id=tokenizer.eos_id)
    requests = []
    for uid in engine.active_users():
        for sample in dataset.generate(make_user(uid, seed=0), 2, seed=77):
            requests.append(QueryRequest(user_id=uid, text=sample.input_text,
                                         generation=generation))
    requests = requests[::2] + requests[1::2]   # interleave users

    for response in engine.answer_batch(requests):
        print(f"  user {response.user_id}: {response.text!r}\n"
              f"    -> {response.answer!r}  "
              f"[OVT #{response.ovt_index}/{response.n_ovts}, "
              f"{response.backend}: {response.latency_us:.2f} us, "
              f"{response.energy_pj / 1e3:.1f} nJ]")

    print("engine stats:", engine.stats())


if __name__ == "__main__":
    main()
