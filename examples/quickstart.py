"""Quickstart: personalise an edge LLM with NVCiM-PT in ~a minute.

Builds the synthetic world (tokenizer, corpus), pretrains a small edge-LLM
stand-in, then drives the serving engine: one user's interactions stream in
as TuneRequests, and fresh queries come back as QueryResponses whose
telemetry shows the NVM-side retrieval (selected OVT, similarity scores,
latency/energy of the in-memory search).

Run:  python examples/quickstart.py
"""

from repro import (
    FrameworkConfig,
    GenerationConfig,
    PromptServeEngine,
    QueryRequest,
    TuneRequest,
    build_corpus,
    build_tokenizer,
    load_pretrained_model,
    make_dataset,
    make_user,
)

USER_ID = 0


def main() -> None:
    # 1. The substrate: tokenizer, pretraining corpus, pretrained edge LLM.
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    print("pretraining phi-2-sim on the synthetic corpus ...")
    model = load_pretrained_model("phi-2-sim", corpus, tokenizer.vocab_size,
                                  seed=0)

    # 2. The serving engine: shared base model + per-user OVT libraries on
    #    NVM.  The "table1" preset is the paper's main configuration.
    config = FrameworkConfig.preset("table1")
    engine = PromptServeEngine(model, tokenizer, config)

    # 3. Stream one user's interactions (domain-shifted sessions).
    user = make_user(USER_ID, seed=0)
    dataset = make_dataset("LaMP-2")
    print(f"user {USER_ID} prefers topics: {', '.join(user.preferred_topics)}")
    for domain in dataset.user_domains(user):
        session_data = dataset.generate(user, config.buffer_capacity, seed=1,
                                        domains=[domain])
        response = engine.submit(TuneRequest(user_id=USER_ID,
                                             samples=tuple(session_data)))
        print(f"  session on domain {domain!r}: "
              f"{response.library_size} OVTs stored so far")

    # 4. Inference: retrieval happens in-memory on the NVCiM crossbars, and
    #    every response reports what the hardware did.
    generation = GenerationConfig(max_new_tokens=10, temperature=0.1,
                                  eos_id=tokenizer.eos_id)
    queries = dataset.generate(user, 5, seed=99)
    requests = [QueryRequest(user_id=USER_ID, text=q.input_text,
                             generation=generation) for q in queries]
    correct = 0
    for query, response in zip(queries, engine.answer_batch(requests)):
        hit = response.answer.split()[:1] == [query.target_text]
        correct += hit
        print(f"  Q: {response.text}\n     -> {response.answer!r} "
              f"(expected {query.target_text!r}) {'OK' if hit else ''}\n"
              f"     [OVT #{response.ovt_index} of {response.n_ovts}, "
              f"{response.backend} search: {response.latency_us:.2f} us, "
              f"{response.energy_pj / 1e3:.1f} nJ]")
    print(f"accuracy: {correct}/{len(queries)}")


if __name__ == "__main__":
    main()
