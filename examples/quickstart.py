"""Quickstart: personalise an edge LLM with NVCiM-PT in ~a minute.

Builds the synthetic world (tokenizer, corpus), pretrains a small edge-LLM
stand-in, streams one user's interactions through the framework, and then
answers fresh queries with NVM-retrieved OVT prompts.

Run:  python examples/quickstart.py
"""

from repro import (
    FrameworkConfig,
    GenerationConfig,
    NVCiMPT,
    build_corpus,
    build_tokenizer,
    load_pretrained_model,
    make_dataset,
    make_user,
)


def main() -> None:
    # 1. The substrate: tokenizer, pretraining corpus, pretrained edge LLM.
    tokenizer = build_tokenizer()
    corpus = build_corpus(tokenizer, n_sentences=3000, seed=0)
    print("pretraining phi-2-sim on the synthetic corpus ...")
    model = load_pretrained_model("phi-2-sim", corpus, tokenizer.vocab_size,
                                  seed=0)

    # 2. The framework: buffer -> representative selection -> noise-aware
    #    prompt tuning -> autoencoder -> NVM storage.
    config = FrameworkConfig(buffer_capacity=25, device_name="NVM-3",
                             sigma=0.1)
    system = NVCiMPT(model, tokenizer, config)

    # 3. Stream one user's interactions (domain-shifted sessions).
    user = make_user(0, seed=0)
    dataset = make_dataset("LaMP-2")
    print(f"user 0 prefers topics: {', '.join(user.preferred_topics)}")
    for domain in dataset.user_domains(user):
        session = dataset.generate(user, config.buffer_capacity, seed=1,
                                   domains=[domain])
        for sample in session:
            system.observe(sample)
        print(f"  session on domain {domain!r}: "
              f"{len(system.library.ovts)} OVTs stored so far")

    # 4. Inference: retrieval happens in-memory on the NVCiM crossbars.
    generation = GenerationConfig(max_new_tokens=10, temperature=0.1,
                                  eos_id=tokenizer.eos_id)
    queries = dataset.generate(user, 5, seed=99)
    correct = 0
    for query in queries:
        answer = system.answer(query.input_text, generation)
        hit = answer.split()[:1] == [query.target_text]
        correct += hit
        print(f"  Q: {query.input_text}\n     -> {answer!r} "
              f"(expected {query.target_text!r}) {'OK' if hit else ''}")
    print(f"accuracy: {correct}/{len(queries)}")


if __name__ == "__main__":
    main()
