"""Lock discipline: LOCK-001.

The serving engine's thread-safety contract (PR 6): the gateway drives
admission, the decode loop and stats from different threads, so every
public entry point that mutates engine state must run under
``self._lock``.  This rule makes the contract structural: in any class
that owns a ``self._lock`` (or is explicitly named below), a public
method that stores into ``self.*`` state must either contain a
``with self._lock:`` block or delegate to a ``*_locked`` helper (which
by convention is only called with the lock held).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import RULES, FileContext, Rule, self_attribute_target
from .findings import Finding

__all__ = ["UnlockedPublicMutation"]

# Classes held to lock discipline even if they do not (yet) own a lock:
# the two engine facades the gateway serves from multiple threads.
LOCKED_CLASSES = ("PromptServeEngine", "ShardedPromptEngine")


def _assigns_lock(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if self_attribute_target(target) == "_lock":
                    return True
    return False


def _mutated_attrs(method: ast.FunctionDef) -> list[tuple[str, ast.AST]]:
    """(attribute, node) pairs for every store into ``self.*``."""
    mutations = []
    for node in ast.walk(method):
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        elif isinstance(node, ast.Delete):
            targets = list(node.targets)
        else:
            continue
        # Unpack tuple/list targets: `a, self.x = x, []` mutates self.x.
        flat: list[ast.AST] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            attr = self_attribute_target(target)
            if attr is not None:
                mutations.append((attr, node))
    return mutations


def _enters_lock(method: ast.FunctionDef) -> bool:
    for node in ast.walk(method):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if self_attribute_target(item.context_expr) == "_lock":
                    return True
        elif isinstance(node, ast.Call):
            func = node.func
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr.endswith("_locked")):
                return True
    return False


@RULES.register("LOCK-001")
class UnlockedPublicMutation(Rule):
    """Public methods of lock-owning classes must mutate under the lock."""

    rule_id = "LOCK-001"
    title = "public engine entry points must hold self._lock to mutate"
    default_hint = ("wrap the mutation in `with self._lock:` or delegate "
                    "to a `_..._locked` helper called under the lock")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            init = next((m for m in node.body
                         if isinstance(m, ast.FunctionDef)
                         and m.name == "__init__"), None)
            owns_lock = init is not None and _assigns_lock(init)
            if not owns_lock and node.name not in LOCKED_CLASSES:
                continue
            for method in node.body:
                if not isinstance(method, ast.FunctionDef):
                    continue
                if method.name.startswith("_"):
                    continue   # private/dunder: callers hold the lock
                mutations = _mutated_attrs(method)
                if not mutations or _enters_lock(method):
                    continue
                attrs = sorted({attr for attr, _ in mutations})
                first = min((node_ for _, node_ in mutations),
                            key=lambda n: getattr(n, "lineno", 1))
                yield self.finding(
                    ctx, first,
                    f"{node.name}.{method.name}() assigns "
                    f"self.{', self.'.join(attrs)} without entering "
                    f"self._lock; concurrent callers can observe torn "
                    f"state")
