"""The rule framework: file context, rule protocol, rule registry.

Rules are small classes registered in :data:`RULES` (the same
:class:`repro.utils.Registry` primitive the model/device/mitigation zoos
use), keyed by rule id.  The engine parses each file under ``src/repro/``
exactly once and hands every rule the same :class:`FileContext`; a rule
yields :class:`~repro.analysis.findings.Finding`s for the invariants it
enforces.  Everything here is pure stdlib ``ast`` — a rule never imports
the module it inspects, so the linter cannot be broken by (or have side
effects on) the code under analysis.

Adding a rule:

    @RULES.register("XYZ-001")
    class MyRule(Rule):
        rule_id = "XYZ-001"
        title = "one-line invariant statement"

        def check(self, ctx: FileContext):
            for node in ast.walk(ctx.tree):
                ...
                yield self.finding(ctx, node, "message", hint="fix hint")
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from ..utils import Registry
from .findings import Finding

__all__ = ["FileContext", "Rule", "RULES", "attribute_chain",
           "self_attribute_target"]


@dataclass
class FileContext:
    """One parsed source file, shared by every rule."""

    path: Path           # absolute path on disk
    rel: str             # posix path relative to the source root, "repro/..."
    source: str
    tree: ast.Module
    root: Path           # the package directory being analyzed (".../repro")

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()

    def in_dir(self, *subdirs: str) -> bool:
        """True when the file lives under any ``repro/<subdir>/``."""
        return any(self.rel.startswith(f"repro/{d}/") for d in subdirs)


class Rule:
    """Base class for lint rules; subclasses implement :meth:`check`."""

    rule_id: str = ""
    title: str = ""
    default_hint: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str, *,
                hint: str | None = None) -> Finding:
        return Finding(file=ctx.rel, line=getattr(node, "lineno", 1),
                       rule=self.rule_id, message=message,
                       hint=self.default_hint if hint is None else hint)


def _validate_rule(name: str, rule: type) -> None:
    if not (isinstance(rule, type) and issubclass(rule, Rule)):
        raise TypeError(f"rule {name!r} must be a Rule subclass")
    if rule.rule_id != name:
        raise ValueError(f"rule {name!r} declares rule_id {rule.rule_id!r}")


# Rule zoo: id -> Rule subclass.  The engine instantiates each rule once
# per run; plugins register new invariants the same decorator way the
# device/mitigation registries accept new entries.
RULES: Registry[type] = Registry("lint rule", validate=_validate_rule)


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def attribute_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def self_attribute_target(node: ast.AST) -> str | None:
    """The attribute name when ``node`` stores into ``self.<attr>``.

    Recognises plain attributes (``self.x``), subscript stores
    (``self.x[k]``), and nothing deeper — mutating ``self.x.y`` mutates
    the *referenced* object, which lock discipline cannot see statically.
    """
    if isinstance(node, ast.Subscript):
        node = node.value
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None
