"""The analysis engine: walk, check, suppress, baseline, report.

One pass over every ``*.py`` under the package root parses each file
once and hands the shared :class:`~repro.analysis.base.FileContext` to
every registered rule.  Raw findings then flow through two filters:

1. **Suppressions** — an inline ``# repro: noqa[RULE-ID] <reason>`` on
   the offending line waives that rule there.  The reason is mandatory
   (SUP-001 fires without one) and a suppression that no longer matches
   any finding is itself an error (SUP-002), so waivers cannot outlive
   the code they excused.
2. **Baseline** — a checked-in JSON of known findings
   (``analysis/baseline.json``) lets a new rule land before the tree is
   clean.  Baselined findings do not fail the run, but a baseline entry
   whose file or line no longer exists is *stale* and fails CI: the
   baseline may only burn down.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from .base import RULES, FileContext
from .findings import Finding

__all__ = ["Suppression", "Report", "run_analysis", "iter_contexts",
           "parse_suppressions", "load_baseline", "save_baseline",
           "stale_entries", "DEFAULT_BASELINE"]

# Inline waiver:  # repro: noqa[RULE-ID] reason for waiving it here
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*noqa\[([A-Z]+-\d{3})\]\s*(.*?)\s*$")

# The checked-in baseline ships next to the engine so `python -m
# repro.analysis` needs no configuration to find it.
DEFAULT_BASELINE = Path(__file__).with_name("baseline.json")


@dataclass
class Suppression:
    """One inline waiver: rule ``rule`` is excused on ``file:line``."""

    file: str
    line: int
    rule: str
    reason: str
    used: bool = False


def parse_suppressions(rel: str, source: str) -> list[Suppression]:
    """Real ``# repro: noqa[...]`` comments (tokenized, so the same text
    inside a docstring or string literal does not count)."""
    sups = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return sups
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match:
            sups.append(Suppression(file=rel, line=token.start[0],
                                    rule=match.group(1),
                                    reason=match.group(2)))
    return sups


def default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parents[1]


def iter_contexts(root: Path) -> list[FileContext]:
    """Parse every ``*.py`` under ``root`` once, in stable order."""
    root = root.resolve()
    contexts = []
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        rel = (Path(root.name) / path.relative_to(root)).as_posix()
        contexts.append(FileContext(path=path, rel=rel, source=source,
                                    tree=ast.parse(source, filename=rel),
                                    root=root))
    return contexts


def resolve_rel(root: Path, rel: str) -> Path:
    """On-disk path for a ``repro/...`` finding path (root-name prefixed)."""
    parts = Path(rel).parts
    if parts and parts[0] == root.name:
        parts = parts[1:]
    return root.joinpath(*parts)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> list[Finding]:
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return []
    return [Finding.from_dict(entry) for entry in data]


def save_baseline(path: Path, findings: list[Finding]) -> None:
    payload = [f.to_dict() for f in sorted(findings)]
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def stale_entries(baseline: list[Finding], root: Path) -> list[Finding]:
    """Baseline entries whose file vanished or line is past EOF."""
    stale = []
    n_lines: dict[str, int] = {}
    for entry in baseline:
        if entry.file not in n_lines:
            try:
                n_lines[entry.file] = len(resolve_rel(root, entry.file)
                                          .read_text(encoding="utf-8")
                                          .splitlines())
            except OSError:
                n_lines[entry.file] = -1
        count = n_lines[entry.file]
        if count < 0 or entry.line > count:
            stale.append(entry)
    return stale


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------
@dataclass
class Report:
    """Everything one analysis run produced, as data."""

    findings: list[Finding] = field(default_factory=list)    # fail the run
    suppressed: list[tuple[Finding, str]] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_baseline

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "files_checked": self.files_checked,
            "rules_run": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [{**f.to_dict(), "reason": reason}
                           for f, reason in self.suppressed],
            "baselined": [f.to_dict() for f in self.baselined],
            "stale_baseline": [f.to_dict() for f in self.stale_baseline],
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.findings:
            lines.append(finding.render())
        for entry in self.stale_baseline:
            lines.append(f"{entry.location()}: BASELINE: stale entry for "
                         f"{entry.rule} — the file/line no longer exists; "
                         f"remove it from baseline.json")
        lines.append(
            f"{len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed, "
            f"{len(self.baselined)} baselined "
            f"({len(self.stale_baseline)} stale), "
            f"{self.files_checked} file(s), "
            f"{len(self.rules_run)} rule(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The run
# ----------------------------------------------------------------------
def run_analysis(root: Path | None = None, *,
                 baseline: list[Finding] | None = None,
                 rules: dict | None = None) -> Report:
    """Check every file under ``root`` with every registered rule.

    ``baseline`` defaults to empty (pass ``load_baseline(...)`` for the
    CI behaviour); ``rules`` defaults to the full :data:`RULES` registry.
    """
    root = (root or default_root()).resolve()
    baseline = baseline or []
    rule_classes = dict(rules if rules is not None else RULES)
    instances = {rule_id: cls() for rule_id, cls in sorted(
        rule_classes.items())}

    raw: list[Finding] = []
    suppressions: list[Suppression] = []
    contexts = iter_contexts(root)
    for ctx in contexts:
        suppressions.extend(parse_suppressions(ctx.rel, ctx.source))
        for rule in instances.values():
            raw.extend(rule.check(ctx))

    report = Report(files_checked=len(contexts),
                    rules_run=tuple(instances))

    # 1. Suppressions waive same-file/line/rule findings (and must be
    #    both reasoned and load-bearing).
    by_key = {(s.file, s.line, s.rule): s for s in suppressions}
    kept: list[Finding] = []
    for finding in raw:
        sup = by_key.get(finding.key())
        if sup is not None:
            sup.used = True
            report.suppressed.append((finding, sup.reason))
        else:
            kept.append(finding)
    for sup in suppressions:
        if not sup.reason:
            kept.append(Finding(
                file=sup.file, line=sup.line, rule="SUP-001",
                message=f"suppression of {sup.rule} has no reason; "
                        f"write why the waiver is sound",
                hint="# repro: noqa[RULE-ID] <reason>"))
        if not sup.used:
            kept.append(Finding(
                file=sup.file, line=sup.line, rule="SUP-002",
                message=f"suppression of {sup.rule} matches no finding; "
                        f"the code it excused is gone — delete it",
                hint="remove the stale # repro: noqa comment"))

    # 2. Baseline absorbs known findings; stale entries are themselves
    #    failures so the baseline only ever shrinks.
    baseline_keys = {entry.key() for entry in baseline}
    for finding in sorted(kept):
        if finding.key() in baseline_keys:
            report.baselined.append(finding)
        else:
            report.findings.append(finding)
    report.stale_baseline = stale_entries(baseline, root)
    return report
