"""Determinism rules: RNG-001 and RNG-002.

Bit-identical replay (the equivalence matrices of PRs 2-5 and the
durable-session round trips of PR 7) only holds because every stochastic
draw flows from one experiment seed through the hierarchical streams in
:mod:`repro.utils.rng`.  A stray ``np.random.default_rng()`` (OS
entropy), a module-level legacy call (hidden global state), or a wall
clock read in a deterministic path silently breaks that contract —
these rules fail the diff instead of waiting for a replay test to
drift.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import RULES, FileContext, Rule, attribute_chain
from .findings import Finding

__all__ = ["NumpyRandomOutsideUtils", "WallClockInDeterministicPath"]

# Directories whose code must be a pure function of (inputs, seed).
DETERMINISTIC_DIRS = ("nvm", "cim", "llm", "retrieval", "tuning", "serve")
# The network edge may legitimately touch entropy/clocks (jitter,
# arrival processes) — but only behind an explicit, reasoned suppression.
EDGE_DIRS = ("gateway",)

# time/datetime calls that read the wall clock.  perf_counter/monotonic
# are deliberately NOT here: they feed telemetry and deadlines, never
# token streams, and the decode equivalence tests pin that.
_CLOCK_CALLS = {
    ("time", "time"), ("time", "time_ns"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
}


@RULES.register("RNG-001")
class NumpyRandomOutsideUtils(Rule):
    """No ``np.random.*`` calls outside ``repro/utils/``.

    Generators must be injected by the caller or derived through
    :func:`repro.utils.rng_from_seed` / :func:`~repro.utils.derive_rng`
    / :func:`~repro.utils.spawn_generators`, so that one experiment seed
    pins every stream and the snapshot codec can capture/restore all of
    them.  Seedless calls are nondeterministic outright; seeded calls
    outside utils bypass the stream hierarchy (two components picking
    seed 0 silently share — and correlate — their noise).
    """

    rule_id = "RNG-001"
    title = "np.random calls must flow through repro.utils.rng"
    default_hint = ("accept an injected np.random.Generator, or derive one "
                    "with utils.rng_from_seed/derive_rng/spawn_generators")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.rel.startswith("repro/utils/"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain or len(chain) < 3:
                continue
            if chain[0] not in ("np", "numpy") or chain[1] != "random":
                continue
            name = ".".join(chain)
            if chain[2] == "default_rng":
                if not node.args and not node.keywords:
                    yield self.finding(
                        ctx, node,
                        f"seedless {name}() draws from OS entropy; "
                        f"replay can never reproduce it")
                else:
                    yield self.finding(
                        ctx, node,
                        f"{name}(...) outside repro/utils bypasses the "
                        f"seed hierarchy (streams are not spawned from "
                        f"the experiment seed)")
            else:
                yield self.finding(
                    ctx, node,
                    f"{name}(...) uses numpy's legacy global-state API; "
                    f"it is invisible to snapshot/restore and to the "
                    f"seed hierarchy")


@RULES.register("RNG-002")
class WallClockInDeterministicPath(Rule):
    """No ``random`` module, ``time.time`` or ``datetime.now`` in
    deterministic paths.

    ``nvm``/``cim``/``llm``/``retrieval``/``tuning``/``serve`` must be
    pure functions of their inputs and seeds — a wall-clock read or a
    stdlib ``random`` draw there cannot be captured by a session
    snapshot and breaks byte-identical replay.  ``gateway`` code may
    keep such calls only behind an inline ``# repro: noqa[RNG-002]``
    suppression with a reason (e.g. deliberately non-deterministic
    network jitter).
    """

    rule_id = "RNG-002"
    title = "no stdlib random / wall clock in deterministic paths"
    default_hint = ("inject a seeded np.random.Generator (see utils.rng); "
                    "gateway code may instead suppress with "
                    "# repro: noqa[RNG-002] <reason>")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_dir(*DETERMINISTIC_DIRS, *EDGE_DIRS):
            return
        edge = ctx.in_dir(*EDGE_DIRS)
        where = ("gateway code (suppress with a reason if deliberate)"
                 if edge else "a deterministic path")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            ctx, node,
                            f"stdlib 'random' imported in {where}; its "
                            f"global state defeats seeded replay")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        ctx, node,
                        f"import from stdlib 'random' in {where}")
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if not chain or len(chain) < 2:
                    continue
                if chain[0] == "random":
                    yield self.finding(
                        ctx, node,
                        f"random.{'.'.join(chain[1:])}(...) in {where}")
                elif (chain[-2], chain[-1]) in _CLOCK_CALLS:
                    yield self.finding(
                        ctx, node,
                        f"{'.'.join(chain)}(...) reads the wall clock in "
                        f"{where}; results depend on when the code runs")
