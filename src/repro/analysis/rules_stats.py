"""Stats aggregation contract: STATS-001.

``ShardedPromptEngine.stats()`` merges per-worker counter dicts, and
merging is semantic: additive counters sum, ratios recompute from summed
numerators, histograms merge sample-by-sample.  The semantics live in
one pure-literal manifest (``repro/serve/stats_manifest.py``); this rule
closes the loop by checking that every key the engines *emit* is
declared there.  An undeclared key is exactly the bug the manifest
exists to prevent — a counter that shows up on one engine and silently
vanishes (or mis-aggregates) fleet-wide.

The manifest is read with ``ast.literal_eval``, never imported: the
linter must not execute serve code, and the literal-ness requirement is
itself part of the contract (checked here too).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from .base import RULES, FileContext, Rule
from .findings import Finding

__all__ = ["UndeclaredStatKey", "load_manifest"]

MANIFEST_REL = "serve/stats_manifest.py"
_STATS_CLASSES = ("PromptServeEngine", "ShardedPromptEngine")
_SCALAR_KINDS = ("additive", "capacity", "histogram", "structural")


def load_manifest(root: Path) -> dict | None:
    """The ``STATS_MANIFEST`` literal, or None when absent/non-literal."""
    path = root / MANIFEST_REL
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "STATS_MANIFEST":
                try:
                    manifest = ast.literal_eval(node.value)
                except ValueError:
                    return None
                return manifest if isinstance(manifest, dict) else None
    return None


def _emitted_keys(stats: ast.FunctionDef) -> dict[str, int]:
    """String key -> line for every key ``stats()`` can emit.

    Covers dict-literal keys (``return {"k": ...}``) and constant
    subscript stores (``aggregate["k"] = ...``).  Keys built from
    variables — e.g. the manifest-driven merge loop itself — are by
    construction declared, so they need no static check.
    """
    keys: dict[str, int] = {}
    for node in ast.walk(stats):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and key.value not in keys):
                    keys[key.value] = key.lineno
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                        and target.slice.value not in keys):
                    keys[target.slice.value] = target.lineno
    return keys


@RULES.register("STATS-001")
class UndeclaredStatKey(Rule):
    """Every engine stats() key must be declared in the stats manifest."""

    rule_id = "STATS-001"
    title = "stats() keys must be declared in serve/stats_manifest.py"
    default_hint = ("add the key to STATS_MANIFEST (or register_stat()) "
                    "with its aggregation kind: additive, capacity, "
                    "histogram, structural, or ('ratio', num, den)")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.rel.startswith("repro/serve/"):
            return
        manifest = load_manifest(ctx.root)
        if ctx.rel == f"repro/{MANIFEST_REL}":
            if manifest is None:
                anchor = ast.Pass(lineno=1, col_offset=0)
                yield self.finding(
                    ctx, anchor,
                    "STATS_MANIFEST is missing or not a pure literal; the "
                    "linter (and anything else that must not import serve "
                    "code) reads it with ast.literal_eval",
                    hint="keep STATS_MANIFEST a literal dict assignment")
                return
            # Manifest self-consistency: ratio entries must reference
            # declared additive numerators/denominators.
            for key, kind in manifest.items():
                ok = (kind in _SCALAR_KINDS
                      or (isinstance(kind, tuple) and len(kind) == 3
                          and kind[0] == "ratio"
                          and all(part in manifest for part in kind[1:])))
                if not ok:
                    anchor = ast.Pass(lineno=1, col_offset=0)
                    yield self.finding(
                        ctx, anchor,
                        f"manifest entry {key!r} has invalid kind {kind!r} "
                        f"(unknown kind, or ratio referencing undeclared "
                        f"keys)")
            return
        for node in ast.walk(ctx.tree):
            if (not isinstance(node, ast.ClassDef)
                    or node.name not in _STATS_CLASSES):
                continue
            stats = next((m for m in node.body
                          if isinstance(m, ast.FunctionDef)
                          and m.name == "stats"), None)
            if stats is None:
                continue
            if manifest is None:
                yield self.finding(
                    ctx, stats,
                    f"{node.name}.stats() cannot be checked: "
                    f"{MANIFEST_REL} is missing or not a pure literal")
                continue
            for key, line in sorted(_emitted_keys(stats).items(),
                                    key=lambda item: item[1]):
                if key in manifest:
                    continue
                anchor = ast.Pass(lineno=line, col_offset=0)
                yield self.finding(
                    ctx, anchor,
                    f"{node.name}.stats() emits {key!r} but "
                    f"STATS_MANIFEST does not declare how it aggregates "
                    f"across shards; ShardedPromptEngine.stats() would "
                    f"drop or mis-merge it")
