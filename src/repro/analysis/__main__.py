"""CLI: ``python -m repro.analysis``.

Exit status is the contract CI relies on: 0 when the tree is clean
(no new findings, every suppression reasoned and load-bearing, no stale
baseline entries), 1 otherwise.

    python -m repro.analysis                     # text report
    python -m repro.analysis --format json       # machine-readable
    python -m repro.analysis --output out.json   # also write the JSON
    python -m repro.analysis --baseline update   # re-absorb today's
                                                 # findings into baseline
    python -m repro.analysis --catalog           # docs/analysis.md source
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import engine as _engine


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint for the repro invariants: determinism, "
                    "lock discipline, snapshot completeness, codec "
                    "safety, stats aggregation.")
    parser.add_argument("--root", type=Path, default=None,
                        help="package directory to analyze (default: the "
                             "installed repro package)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt",
                        help="report format on stdout")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON report to this path")
    parser.add_argument("--baseline", choices=("check", "update"),
                        default="check",
                        help="'update' rewrites baseline.json with "
                             "today's findings instead of failing on them")
    parser.add_argument("--baseline-file", type=Path,
                        default=_engine.DEFAULT_BASELINE,
                        help="baseline JSON path (default: the checked-in "
                             "analysis/baseline.json)")
    parser.add_argument("--catalog", action="store_true",
                        help="print the markdown rule catalog (the source "
                             "of docs/analysis.md) and exit")
    args = parser.parse_args(argv)

    if args.catalog:
        from .catalog import render_catalog
        print(render_catalog(), end="")
        return 0

    baseline = _engine.load_baseline(args.baseline_file)
    report = _engine.run_analysis(args.root, baseline=baseline)

    if args.baseline == "update":
        absorbed = report.baselined + report.findings
        _engine.save_baseline(args.baseline_file, absorbed)
        print(f"baseline updated: {len(absorbed)} entr(ies) -> "
              f"{args.baseline_file}")
        return 0

    if args.fmt == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text())
    if args.output is not None:
        args.output.write_text(json.dumps(report.to_dict(), indent=2) + "\n",
                               encoding="utf-8")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
