"""Static analysis for the repro invariants.

The serving stack's correctness rests on invariants no test exercises
directly: every random draw flows from one experiment seed, engine
mutations happen under the lock, snapshots capture all ``__init__``
state, nothing deserializes through pickle, and stats keys declare how
they aggregate.  This package checks them structurally, with pure
stdlib ``ast`` — run ``python -m repro.analysis`` (see ``__main__``).

Importing the package registers the built-in rules in :data:`RULES`;
importing :mod:`repro.analysis` never imports (or executes) the code it
analyzes.
"""

from .base import RULES, FileContext, Rule
from .engine import (
    DEFAULT_BASELINE,
    Report,
    Suppression,
    load_baseline,
    run_analysis,
    save_baseline,
)
from .findings import Finding

# Importing the rule modules is what registers them.
from . import rules_rng  # noqa: F401  (registration side effect)
from . import rules_lock  # noqa: F401
from . import rules_snapshot  # noqa: F401
from . import rules_security  # noqa: F401
from . import rules_stats  # noqa: F401

__all__ = [
    "RULES",
    "Rule",
    "FileContext",
    "Finding",
    "Report",
    "Suppression",
    "run_analysis",
    "load_baseline",
    "save_baseline",
    "DEFAULT_BASELINE",
]
