"""Structured lint findings.

A :class:`Finding` is one rule violation at one source location.  It is
deliberately a plain value — JSON-serializable, orderable, hashable on
its location key — because everything downstream (the text/JSON
formatters, the suppression matcher, the checked-in baseline) works on
findings as data, not on rule internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation: rule id, location, message, fix hint."""

    file: str            # path relative to the source root, e.g. "repro/serve/engine.py"
    line: int            # 1-based line of the offending node
    rule: str            # e.g. "RNG-001"
    message: str = field(compare=False)
    hint: str = field(compare=False, default="")

    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def key(self) -> tuple[str, int, str]:
        """Identity used by suppressions and the baseline."""
        return (self.file, self.line, self.rule)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "file": self.file,
            "line": self.line,
            "message": self.message,
            "hint": self.hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        return cls(file=str(data["file"]), line=int(data["line"]),
                   rule=str(data["rule"]),
                   message=str(data.get("message", "")),
                   hint=str(data.get("hint", "")))

    def render(self) -> str:
        text = f"{self.location()}: {self.rule}: {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text
