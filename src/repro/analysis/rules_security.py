"""Codec safety: SEC-001.

PR 7 replaced pickle with a typed JSON + raw-array codec
(:mod:`repro.serve.codec`) precisely so that a spilled session file can
never execute code when loaded.  SEC-001 keeps that boundary enforced
everywhere: no ``pickle``/``marshal``/``shelve`` import and no
``eval``/``exec``/``compile`` call anywhere under ``src/repro/``.
``np.load(..., allow_pickle=True)`` counts too — it is pickle with a
numpy hat on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import RULES, FileContext, Rule, attribute_chain
from .findings import Finding

__all__ = ["NoCodeExecution"]

_BANNED_MODULES = {"pickle", "cPickle", "marshal", "shelve", "dill"}
_BANNED_BUILTINS = {"eval", "exec", "compile"}


@RULES.register("SEC-001")
class NoCodeExecution(Rule):
    """No pickle/marshal imports, no eval/exec/compile calls.

    Session state crosses process and disk boundaries; the only
    deserializers allowed are the typed ones in ``repro/serve/codec.py``.
    A pickle import anywhere is an arbitrary-code-execution path waiting
    for an attacker-controlled spill file.
    """

    rule_id = "SEC-001"
    title = "no pickle/marshal/eval/exec anywhere under src/repro/"
    default_hint = ("serialize through repro.serve.codec (typed JSON + raw "
                    "arrays); dynamic code execution has no place in the "
                    "serving stack")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    top = alias.name.split(".")[0]
                    if top in _BANNED_MODULES:
                        yield self.finding(
                            ctx, node,
                            f"import of {alias.name!r}: loading this format "
                            f"executes arbitrary code from the payload")
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] in _BANNED_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"import from {node.module!r}: loading this format "
                        f"executes arbitrary code from the payload")
            elif isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if chain is None:
                    continue
                if len(chain) == 1 and chain[0] in _BANNED_BUILTINS:
                    yield self.finding(
                        ctx, node,
                        f"{chain[0]}(...) executes dynamically built code; "
                        f"the codec boundary forbids it")
                elif chain[0].split(".")[0] in _BANNED_MODULES:
                    yield self.finding(
                        ctx, node,
                        f"{'.'.join(chain)}(...) round-trips through an "
                        f"unsafe serializer")
                elif (chain[-1] == "load"
                      and chain[0] in ("np", "numpy")
                      and any(kw.arg == "allow_pickle"
                              and not (isinstance(kw.value, ast.Constant)
                                       and kw.value.value is False)
                              for kw in node.keywords)):
                    yield self.finding(
                        ctx, node,
                        "np.load(..., allow_pickle=True) is pickle by "
                        "another name")
