"""Snapshot completeness: SNAP-001.

PR 7's guarantee — a spilled session restores bit-identically — only
holds while ``snapshot()/restore()`` cover *every* piece of mutable
state.  The failure mode is silent: someone adds ``self.new_counter``
to ``__init__``, snapshots keep round-tripping (they just drop it), and
the bug surfaces weeks later as a counter that resets across eviction.

For every class that defines ``snapshot()``, each instance attribute
assigned in ``__init__`` must be *mentioned* somewhere in the class's
snapshot-family methods (``snapshot``, ``restore``,
``restore_counters``, ``from_snapshot``, ``_check_snapshot``) — as a
``self.<attr>`` access or as a string key — or be listed in an explicit
class-level ``_SNAPSHOT_EXCLUDED`` tuple documenting why it does not
travel (config re-supplied by the caller, derived caches rebuilt
lazily, ...).
"""

from __future__ import annotations

import ast
from typing import Iterator

from .base import RULES, FileContext, Rule
from .findings import Finding

__all__ = ["SnapshotCompleteness", "SNAPSHOT_METHODS"]

SNAPSHOT_METHODS = ("snapshot", "restore", "restore_counters",
                    "from_snapshot", "_check_snapshot")


def _init_attrs(init: ast.FunctionDef) -> dict[str, int]:
    """Attribute -> first assignment line for every ``self.x = ...``."""
    attrs: dict[str, int] = {}
    for node in ast.walk(init):
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        flat: list[ast.AST] = []
        for target in targets:
            if isinstance(target, (ast.Tuple, ast.List)):
                flat.extend(target.elts)
            else:
                flat.append(target)
        for target in flat:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in attrs):
                attrs[target.attr] = node.lineno
    return attrs


def _mentioned_names(methods: list[ast.FunctionDef]) -> set[str]:
    """Every ``self.<attr>`` name and string constant in the methods."""
    names: set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                names.add(node.attr)
            elif isinstance(node, ast.Constant) and isinstance(node.value,
                                                               str):
                names.add(node.value)
    return names


def _excluded(cls: ast.ClassDef) -> set[str]:
    """Names in a class-level ``_SNAPSHOT_EXCLUDED`` tuple/list."""
    for node in cls.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if (isinstance(target, ast.Name)
                    and target.id == "_SNAPSHOT_EXCLUDED"
                    and isinstance(node.value, (ast.Tuple, ast.List))):
                return {elt.value for elt in node.value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)}
    return set()


@RULES.register("SNAP-001")
class SnapshotCompleteness(Rule):
    """``__init__`` state must travel through snapshot/restore."""

    rule_id = "SNAP-001"
    title = "every __init__ attribute must be snapshotted or excluded"
    default_hint = ("capture the attribute in snapshot()/restore(), or add "
                    "it to the class's _SNAPSHOT_EXCLUDED tuple with a "
                    "comment saying why it does not travel")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {m.name: m for m in node.body
                       if isinstance(m, ast.FunctionDef)}
            if "snapshot" not in methods or "__init__" not in methods:
                continue
            family = [methods[name] for name in SNAPSHOT_METHODS
                      if name in methods]
            covered = _mentioned_names(family) | _excluded(node)
            for attr, line in sorted(_init_attrs(methods["__init__"]).items(),
                                     key=lambda item: item[1]):
                if attr in covered:
                    continue
                anchor = ast.copy_location(ast.Pass(), methods["__init__"])
                anchor.lineno = line
                yield self.finding(
                    ctx, anchor,
                    f"{node.name}.__init__ assigns self.{attr} but "
                    f"snapshot()/restore() never mention it and it is "
                    f"not in _SNAPSHOT_EXCLUDED; the attribute will "
                    f"silently reset on a spill/restore cycle")
