"""Edge memory pressure of storing OVTs in DRAM/SSD (paper Fig. 2).

The paper motivates NVCiM by showing that (a) OVT volume grows linearly
with user data and strains DRAM, and (b) shuttling OVTs between SSD and
DRAM costs tens of seconds at scale.  Both curves are analytic; the
parameters below use the paper's scale (full-size LLM virtual tokens).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OVTStorageModel", "PAPER_SCALE_STORAGE"]


@dataclass(frozen=True)
class OVTStorageModel:
    """Size/bandwidth model for a population of stored OVTs."""

    n_virtual_tokens: int = 20        # tokens per OVT
    hidden_dim: int = 2560            # Phi-2 class hidden size
    bytes_per_value: int = 2          # fp16
    metadata_bytes: int = 4096        # keys, ids, alignment
    ssd_bandwidth_gb_s: float = 0.25  # edge-class SSD sequential read
    dram_capacity_gb: float = 8.0     # Jetson Orin class shared DRAM

    def __post_init__(self):
        if self.n_virtual_tokens <= 0 or self.hidden_dim <= 0:
            raise ValueError("token count and hidden dim must be positive")

    @property
    def bytes_per_ovt(self) -> int:
        return (self.n_virtual_tokens * self.hidden_dim * self.bytes_per_value
                + self.metadata_bytes)

    def memory_bytes(self, n_ovts: int) -> float:
        """DRAM bytes needed to keep ``n_ovts`` resident."""
        if n_ovts < 0:
            raise ValueError("n_ovts must be non-negative")
        return float(n_ovts) * self.bytes_per_ovt

    def memory_mb(self, n_ovts: int) -> float:
        return self.memory_bytes(n_ovts) / 1e6

    def dram_fraction(self, n_ovts: int) -> float:
        """Fraction of device DRAM consumed (can exceed 1)."""
        return self.memory_bytes(n_ovts) / (self.dram_capacity_gb * 1e9)

    def transfer_time_s(self, n_ovts: int) -> float:
        """Seconds to move ``n_ovts`` between SSD and DRAM."""
        return self.memory_bytes(n_ovts) / (self.ssd_bandwidth_gb_s * 1e9)


PAPER_SCALE_STORAGE = OVTStorageModel()
