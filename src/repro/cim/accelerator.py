"""NVCiM accelerator: bit-sliced matrix storage and in-memory GMM.

A :class:`CiMMatrix` is a float matrix held on NVM: values are quantized to
int16, bit-sliced into base-2^bits digits (one digit per cell, paper
Fig. 4), and tiled over 384x128 crossbars.  Matrix-vector products run
slice-by-slice in the arrays and are shift-added digitally, which is
exactly how the paper's scaled-search GMM executes.

Two storage layouts implement the same physics:

* ``vectorized=True`` (default) — all tiles live in one
  :class:`~repro.nvm.crossbar.TileBank` stack ordered slice-major
  ``(slice, row_tile, col_tile)``.  Programming is a single vectorized
  noise application, and :meth:`CiMMatrix.matmat` evaluates a whole batch
  of queries with one batched matmul plus one vectorized ADC quantization
  — the serving engine's batched-retrieval hot path.
* ``vectorized=False`` — the per-tile reference: a Python grid of
  :class:`~repro.nvm.crossbar.CrossbarArray` objects, one small matvec per
  tile.  Because every tile (in both layouts) draws programming noise from
  its own spawned generator, the reference programs to *bit-identical*
  conductances, and read-backs agree exactly; batched query outputs match
  the reference to float tolerance.

Noise-mitigation baselines plug in via hooks: ``post_program`` (e.g.
selective write-verify re-pulses cells), ``correct_output`` (CxDNN /
CorrectNet compensation applied to single or batched MVM outputs) and
``correct_read`` / ``correct_read_columns`` for full and column-range
read-backs.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..nvm.crossbar import CrossbarArray, CrossbarStats, TileBank, TileView
from ..nvm.device_models import NVMDevice
from ..nvm.quantize import Int16Codec, slice_to_digits, slice_weights
from ..utils import rng_from_seed, spawn_generators

__all__ = ["CiMMatrix", "MitigationHooks", "NullMitigation"]

_OFFSET = 32768  # excess code used by the int16 bit-slicing


class MitigationHooks(Protocol):
    """Interface the noise-mitigation baselines implement."""

    name: str

    def post_program(self, matrix: "CiMMatrix") -> None:
        """Run after programming (may verify/re-program cells)."""

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        """Transform values before quantization (e.g. outlier clipping)."""

    def correct_output(self, matrix: "CiMMatrix",
                       outputs: np.ndarray) -> np.ndarray:
        """Correct MVM outputs — one vector (n,) or a batch (B, n)."""

    def correct_read(self, matrix: "CiMMatrix",
                     values: np.ndarray) -> np.ndarray:
        """Correct a full read-back of the stored matrix."""

    def correct_read_columns(self, matrix: "CiMMatrix", values: np.ndarray,
                             col0: int, col1: int) -> np.ndarray:
        """Correct a column-range read-back (columns ``[col0, col1)``).

        Optional for backward compatibility: mitigations that only
        implement ``correct_read`` still work — :meth:`CiMMatrix.
        read_columns` routes the slice through the full-width correction.
        """


class NullMitigation:
    """No mitigation: store and read raw (the paper's \"No-Miti\")."""

    name = "none"

    def post_program(self, matrix: "CiMMatrix") -> None:
        return None

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        return values

    def correct_output(self, matrix: "CiMMatrix",
                       outputs: np.ndarray) -> np.ndarray:
        return outputs

    def correct_read(self, matrix: "CiMMatrix",
                     values: np.ndarray) -> np.ndarray:
        return values

    def correct_read_columns(self, matrix: "CiMMatrix", values: np.ndarray,
                             col0: int, col1: int) -> np.ndarray:
        return values


class CiMMatrix:
    """A (d, n) float matrix stored bit-sliced on NVM crossbars."""

    def __init__(
        self,
        values: np.ndarray,
        device: NVMDevice,
        *,
        sigma: float = 0.1,
        rows: int = 384,
        cols: int = 128,
        adc_bits: int = 8,
        mitigation: MitigationHooks | None = None,
        rng: np.random.Generator | None = None,
        vectorized: bool = True,
    ):
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2:
            raise ValueError("CiMMatrix stores 2-D matrices")
        self.device = device
        self.sigma = sigma
        self.subarray_rows = rows
        self.subarray_cols = cols
        self.mitigation = mitigation or NullMitigation()
        self.vectorized = vectorized
        self._rng = rng or rng_from_seed(0)

        prepared = self.mitigation.prepare_values(values)
        self.shape = prepared.shape
        self.codec = Int16Codec.fit(prepared)
        self._ints = self.codec.encode(prepared)
        self._digits = slice_to_digits(self._ints, device.bits_per_cell)
        self.n_slices = self._digits.shape[0]
        self._adc_bits = adc_bits
        d, n = self.shape
        self.n_row_tiles = -(-d // rows)
        self.n_col_tiles = -(-n // cols)
        self._tiles: list[list[list[CrossbarArray]]] = []  # [slice][row][col]
        self.bank: TileBank | None = None
        self._chunk_map: np.ndarray | None = None
        # Calibration data some mitigations fill in during post_program.
        self.calibration: dict[str, np.ndarray] = {}
        self._program()
        self.mitigation.post_program(self)

    # ------------------------------------------------------------------
    # Programming and geometry
    # ------------------------------------------------------------------
    def _tiled_digits(self) -> np.ndarray:
        """Digit planes as a zero-padded (n_tiles, rows, cols) stack.

        Tiles are ordered slice-major — ``(slice, row_tile, col_tile)`` in
        C order — the canonical order both layouts also use when spawning
        per-tile generators.
        """
        d, n = self.shape
        rows, cols = self.subarray_rows, self.subarray_cols
        padded = np.zeros(
            (self.n_slices, self.n_row_tiles * rows, self.n_col_tiles * cols),
            dtype=np.int64)
        padded[:, :d, :n] = self._digits
        stack = padded.reshape(self.n_slices, self.n_row_tiles, rows,
                               self.n_col_tiles, cols)
        return stack.transpose(0, 1, 3, 2, 4).reshape(-1, rows, cols)

    def _program(self) -> None:
        tile_count = self.n_slices * self.n_row_tiles * self.n_col_tiles
        # One spawned generator per tile, derived hierarchically (matrix ->
        # bit-slice -> tile, in slice-major order): programming noise is
        # independent of tile iteration order and identical between the
        # vectorized bank and the per-tile reference, and a slice's
        # streams do not depend on how the other slices are tiled.
        per_slice = self.n_row_tiles * self.n_col_tiles
        rngs = [tile_rng
                for slice_rng in spawn_generators(self._rng, self.n_slices)
                for tile_rng in spawn_generators(slice_rng, per_slice)]
        levels = self._tiled_digits()
        if self.vectorized:
            self.bank = TileBank(self.device, tile_count,
                                 rows=self.subarray_rows,
                                 cols=self.subarray_cols,
                                 sigma=self.sigma, adc_bits=self._adc_bits,
                                 rngs=rngs)
            self.bank.program(levels)
            return
        flat = 0
        for _ in range(self.n_slices):
            row_tiles = []
            for _ in range(self.n_row_tiles):
                col_tiles = []
                for _ in range(self.n_col_tiles):
                    tile = CrossbarArray(self.device,
                                         rows=self.subarray_rows,
                                         cols=self.subarray_cols,
                                         sigma=self.sigma,
                                         adc_bits=self._adc_bits,
                                         rng=rngs[flat])
                    tile.program(levels[flat])
                    col_tiles.append(tile)
                    flat += 1
                row_tiles.append(col_tiles)
            self._tiles.append(row_tiles)

    @property
    def n_subarrays(self) -> int:
        return self.n_slices * self.n_row_tiles * self.n_col_tiles

    def _chunk_index(self) -> np.ndarray:
        """Input-chunk group of each flat tile: its row-tile index."""
        if self._chunk_map is None:
            per_slice = np.repeat(np.arange(self.n_row_tiles),
                                  self.n_col_tiles)
            self._chunk_map = np.tile(per_slice, self.n_slices)
        return self._chunk_map

    def slice_tile_indices(self, slice_index: int) -> np.ndarray:
        """Flat bank indices of every tile holding ``slice_index`` digits."""
        per_slice = self.n_row_tiles * self.n_col_tiles
        if not 0 <= slice_index < self.n_slices:
            raise IndexError(f"slice {slice_index} out of range "
                             f"[0, {self.n_slices})")
        start = slice_index * per_slice
        return np.arange(start, start + per_slice)

    def iter_tiles(self):
        """Yield every crossbar tile (used by write-verify mitigation).

        On the vectorized layout these are :class:`TileView` adapters over
        the bank; on the reference layout, the tile objects themselves.
        """
        for _, tile in self.iter_tiles_with_slice():
            yield tile

    def iter_tiles_with_slice(self):
        """Yield (slice_index, tile) pairs; slice 0 holds the LSB digits."""
        if self.vectorized:
            per_slice = self.n_row_tiles * self.n_col_tiles
            for flat in range(self.n_subarrays):
                yield flat // per_slice, TileView(self.bank, flat)
            return
        for slice_index, row_tiles in enumerate(self._tiles):
            for col_tiles in row_tiles:
                for tile in col_tiles:
                    yield slice_index, tile

    def aggregate_stats(self) -> CrossbarStats:
        """Operation counters summed over every tile.

        The vectorized layout sums the bank's counter vectors directly
        (this runs inside ``PromptServeEngine.stats()``, so it must not
        walk Python tile objects per call).
        """
        if self.vectorized:
            return self.bank.aggregate_stats()
        total = CrossbarStats()
        for tile in self._iter_reference_tiles():
            total.add(tile.stats)
        return total

    def _iter_reference_tiles(self):
        for row_tiles in self._tiles:
            for col_tiles in row_tiles:
                yield from col_tiles

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, *, quantize_output: bool = True,
               corrected: bool = True) -> np.ndarray:
        """In-memory ``x @ W`` with device noise; returns float (n,).

        ``corrected=False`` skips the mitigation's output correction
        (mitigations use it during calibration).  On the vectorized layout
        this is :meth:`matmat` with a batch of one, so single and batched
        queries share one code path (and one set of counters semantics).
        """
        x = np.asarray(x, dtype=np.float32).reshape(-1)
        d, n = self.shape
        if x.size != d:
            raise ValueError(f"input of {x.size} does not match matrix rows {d}")
        if self.vectorized:
            return self.matmat(x[None, :], quantize_output=quantize_output,
                               corrected=corrected)[0]
        level_gain = self.device.n_levels - 1
        total = np.zeros(n, dtype=np.float64)
        weights = slice_weights(self.device.bits_per_cell, self.n_slices)
        for s, row_tiles in enumerate(self._tiles):
            plane = np.zeros(n, dtype=np.float64)
            for r_index, col_tiles in enumerate(row_tiles):
                r0 = r_index * self.subarray_rows
                chunk = np.zeros(self.subarray_rows, dtype=np.float32)
                piece = x[r0:r0 + self.subarray_rows]
                chunk[:piece.size] = piece
                for c_index, tile in enumerate(col_tiles):
                    c0 = c_index * self.subarray_cols
                    out = tile.matvec(chunk, quantize_output=quantize_output)
                    width = min(self.subarray_cols, n - c0)
                    plane[c0:c0 + width] += out[:width] * level_gain
            total += plane * weights[s]
        # Remove the excess-32768 offset: every stored word carries +OFFSET.
        total -= _OFFSET * float(x.sum())
        outputs = (total * self.codec.scale).astype(np.float32)
        if not corrected:
            return outputs
        return self.mitigation.correct_output(self, outputs)

    def matmat(self, queries: np.ndarray, *, quantize_output: bool = True,
               corrected: bool = True) -> np.ndarray:
        """Batched in-memory product ``X @ W`` for ``X`` of shape (B, d).

        The vectorized layout evaluates the whole batch against every tile
        with one batched matmul and one vectorized ADC pass; the reference
        layout runs :meth:`matvec` per query.  Per-query physics is
        unchanged either way: each query still bills one MVM per tile and
        ``cols`` conversions per tile, so energy counters scale with the
        batch width exactly as B sequential queries would.
        """
        queries = np.asarray(queries, dtype=np.float32)
        if queries.ndim != 2:
            raise ValueError("matmat expects a (batch, rows) query matrix")
        d, n = self.shape
        if queries.shape[1] != d:
            raise ValueError(
                f"inputs of {queries.shape[1]} do not match matrix rows {d}")
        if queries.shape[0] == 0:
            raise ValueError("matmat needs at least one query")
        if not self.vectorized:
            outputs = np.stack([
                self.matvec(row, quantize_output=quantize_output,
                            corrected=False) for row in queries])
            if not corrected:
                return outputs
            return self.mitigation.correct_output(self, outputs)

        batch = queries.shape[0]
        n_rt, n_ct = self.n_row_tiles, self.n_col_tiles
        rows, cols = self.subarray_rows, self.subarray_cols
        n_slices = self.n_slices
        # Row chunks, zero-padded to the tile grid: (n_rt, B, rows).
        chunks = np.zeros((batch, n_rt * rows), dtype=np.float32)
        chunks[:, :d] = queries
        chunks = np.ascontiguousarray(
            chunks.reshape(batch, n_rt, rows).transpose(1, 0, 2))
        # One GEMM + one vectorized ADC pass per row-tile group; a group's
        # result blocks its columns per (slice, col_tile) in flat order.
        grouped = self.bank.matmat_grouped(chunks, self._chunk_index(),
                                           quantize_output=quantize_output)
        # Shift-add: sum row-tile planes, weight the slices, crop padding.
        planes = grouped[0].reshape(batch, n_slices, n_ct * cols)
        planes = planes.astype(np.float64)
        for part in grouped[1:]:
            planes += part.reshape(batch, n_slices, n_ct * cols)
        weights = slice_weights(self.device.bits_per_cell, n_slices)
        weights = weights * (self.device.n_levels - 1)
        total = np.tensordot(planes, weights, axes=(1, 0))[:, :n]
        total -= _OFFSET * queries.sum(axis=1, dtype=np.float64)[:, None]
        outputs = (total * self.codec.scale).astype(np.float32)
        if not corrected:
            return outputs
        return self.mitigation.correct_output(self, outputs)

    def read_matrix(self, *, corrected: bool = True) -> np.ndarray:
        """Read the stored matrix back (noisy), shape (d, n) float32."""
        d, n = self.shape
        value = np.zeros((d, n), dtype=np.float64)
        weights = slice_weights(self.device.bits_per_cell, self.n_slices)
        if self.vectorized:
            digits = self.bank.read_cells()
            grid = digits.reshape(self.n_slices, self.n_row_tiles,
                                  self.n_col_tiles, self.subarray_rows,
                                  self.subarray_cols)
            for s in range(self.n_slices):
                full = grid[s].transpose(0, 2, 1, 3).reshape(
                    self.n_row_tiles * self.subarray_rows,
                    self.n_col_tiles * self.subarray_cols)
                value += full[:d, :n] * weights[s]
        else:
            for s, row_tiles in enumerate(self._tiles):
                for r_index, col_tiles in enumerate(row_tiles):
                    r0 = r_index * self.subarray_rows
                    height = min(self.subarray_rows, d - r0)
                    for c_index, tile in enumerate(col_tiles):
                        c0 = c_index * self.subarray_cols
                        width = min(self.subarray_cols, n - c0)
                        digits = tile.read_cells()
                        value[r0:r0 + height, c0:c0 + width] += (
                            digits[:height, :width] * weights[s]
                        )
        value -= _OFFSET
        decoded = self.codec.decode(value)
        if not corrected:
            return decoded
        return self.mitigation.correct_read(self, decoded)

    def read_columns(self, col0: int, col1: int, *,
                     corrected: bool = True) -> np.ndarray:
        """Read back only columns ``[col0, col1)``, shape (d, col1-col0).

        Touches (and bills ``cell_reads`` for) only the cells covering the
        requested columns in the tiles that hold them — the restore path's
        read, which a full :meth:`read_matrix` would overcount by the
        whole store.  Values equal the same columns of
        :meth:`read_matrix` exactly.
        """
        d, n = self.shape
        if not 0 <= col0 < col1 <= n:
            raise ValueError(f"column range [{col0}, {col1}) outside "
                             f"[0, {n})")
        cols = self.subarray_cols
        value = np.zeros((d, col1 - col0), dtype=np.float64)
        weights = slice_weights(self.device.bits_per_cell, self.n_slices)
        for ct in range(col0 // cols, (col1 - 1) // cols + 1):
            lo, hi = max(col0 - ct * cols, 0), min(col1 - ct * cols, cols)
            out0 = ct * cols + lo - col0
            if self.vectorized:
                # Flat bank index is (slice * n_rt + row_tile) * n_ct + ct.
                tiles = (np.arange(self.n_slices * self.n_row_tiles)
                         * self.n_col_tiles + ct)
                digits = self.bank.read_cells(tiles=tiles, col0=lo, col1=hi)
                digits = digits.reshape(self.n_slices,
                                        self.n_row_tiles * self.subarray_rows,
                                        hi - lo)
                for s in range(self.n_slices):
                    value[:, out0:out0 + hi - lo] += (
                        digits[s, :d] * weights[s])
            else:
                for s, row_tiles in enumerate(self._tiles):
                    for r_index, col_tiles in enumerate(row_tiles):
                        r0 = r_index * self.subarray_rows
                        height = min(self.subarray_rows, d - r0)
                        digits = col_tiles[ct].read_cells_range(lo, hi)
                        value[r0:r0 + height, out0:out0 + hi - lo] += (
                            digits[:height] * weights[s])
        value -= _OFFSET
        decoded = self.codec.decode(value)
        if not corrected:
            return decoded
        hook = getattr(self.mitigation, "correct_read_columns", None)
        if hook is not None:
            return hook(self, decoded, col0, col1)
        # Mitigation predates column-range reads: route the slice through
        # its full-width read correction (column-wise corrections ignore
        # the zero padding outside the requested range).
        padded = np.zeros(self.shape, dtype=decoded.dtype)
        padded[:, col0:col1] = decoded
        return self.mitigation.correct_read(self, padded)[:, col0:col1]

    def ideal_matrix(self) -> np.ndarray:
        """The noise-free stored values (after int16 quantization)."""
        return self.codec.decode(self._ints)

    # ------------------------------------------------------------------
    # Durable state
    # ------------------------------------------------------------------
    SNAPSHOT_VERSION = 1

    def snapshot(self, *, include_state: bool = True) -> dict:
        """Versioned capture of the stored matrix's durable state.

        ``include_state=True`` captures everything
        :meth:`from_snapshot` needs to rebuild this matrix bit-identically
        *without* reprogramming: the int16 codewords, the tile
        conductances and generator states (via the bank / per-tile
        snapshots), mitigation calibration, and cumulative counters.
        ``include_state=False`` is the compact recipe form: geometry and
        counters only, for callers that re-program deterministically and
        then :meth:`restore` the counters on top.
        """
        snap = {
            "version": self.SNAPSHOT_VERSION,
            "shape": [int(d) for d in self.shape],
            "subarray_rows": self.subarray_rows,
            "subarray_cols": self.subarray_cols,
            "sigma": self.sigma,
            "adc_bits": self._adc_bits,
            "n_slices": self.n_slices,
            "vectorized": self.vectorized,
            "mitigation": self.mitigation.name,
        }
        if self.vectorized:
            snap["bank"] = self.bank.snapshot(include_state=include_state)
        else:
            snap["tiles"] = [tile.snapshot(include_state=include_state)
                             for tile in self._iter_reference_tiles()]
        if include_state:
            snap["codec_scale"] = float(self.codec.scale)
            snap["ints"] = self._ints.copy()
            snap["calibration"] = {key: value.copy()
                                   for key, value in self.calibration.items()}
        return snap

    def restore(self, snap: dict) -> None:
        """Apply a :meth:`snapshot` onto this (already built) matrix.

        A counters-only snapshot re-seats the operation counters (the
        recipe restore path); a full snapshot additionally restores the
        codewords, conductances, generator states and calibration.
        """
        self._check_snapshot(snap)
        if self.vectorized:
            self.bank.restore(snap["bank"])
        else:
            for tile, tile_snap in zip(self._iter_reference_tiles(),
                                       snap["tiles"]):
                tile.restore(tile_snap)
        if "ints" in snap:
            self.codec = Int16Codec(scale=float(snap["codec_scale"]))
            self._ints = np.asarray(snap["ints"], dtype=np.int16).copy()
            self._digits = slice_to_digits(self._ints,
                                           self.device.bits_per_cell)
            self.calibration = {key: np.asarray(value).copy()
                                for key, value in snap["calibration"].items()}

    def _check_snapshot(self, snap: dict) -> None:
        if snap.get("version") != self.SNAPSHOT_VERSION:
            raise ValueError(
                f"unsupported CiMMatrix snapshot version "
                f"{snap.get('version')!r}")
        if tuple(snap["shape"]) != tuple(self.shape):
            raise ValueError(
                f"snapshot shape {tuple(snap['shape'])} does not match "
                f"stored matrix {self.shape}")
        if bool(snap["vectorized"]) != self.vectorized:
            raise ValueError("snapshot layout does not match this matrix "
                             "(vectorized flag differs)")

    @classmethod
    def from_snapshot(cls, snap: dict, device: NVMDevice, *,
                      mitigation: MitigationHooks | None = None,
                      ) -> "CiMMatrix":
        """Rebuild a matrix from a full :meth:`snapshot`, bit-identically.

        No programming happens: conductances, counters and generator
        states come straight from the snapshot, so the restore neither
        redraws noise nor bills a single write pulse.  ``device`` and
        ``mitigation`` are reconstructed by the caller (they are config,
        not state — the snapshot records only the mitigation's name).
        """
        if "ints" not in snap:
            raise ValueError(
                "counters-only snapshot cannot rebuild a CiMMatrix; "
                "capture with include_state=True or replay programming")
        self = object.__new__(cls)
        self.device = device
        self.sigma = float(snap["sigma"])
        self.subarray_rows = int(snap["subarray_rows"])
        self.subarray_cols = int(snap["subarray_cols"])
        self.mitigation = mitigation or NullMitigation()
        if self.mitigation.name != snap["mitigation"]:
            raise ValueError(
                f"snapshot was captured with mitigation "
                f"{snap['mitigation']!r}, got {self.mitigation.name!r}")
        self.vectorized = bool(snap["vectorized"])
        self._rng = np.random.default_rng(0)  # repro: noqa[RNG-001] unused post-build
        self.shape = tuple(int(d) for d in snap["shape"])
        self.codec = Int16Codec(scale=float(snap["codec_scale"]))
        self._ints = np.asarray(snap["ints"], dtype=np.int16).copy()
        self._digits = slice_to_digits(self._ints, device.bits_per_cell)
        self.n_slices = int(snap["n_slices"])
        self._adc_bits = int(snap["adc_bits"])
        d, n = self.shape
        self.n_row_tiles = -(-d // self.subarray_rows)
        self.n_col_tiles = -(-n // self.subarray_cols)
        self._tiles = []
        self.bank = None
        self._chunk_map = None
        self.calibration = {}
        tile_count = self.n_slices * self.n_row_tiles * self.n_col_tiles
        if self.vectorized:
            self.bank = TileBank(device, tile_count,
                                 rows=self.subarray_rows,
                                 cols=self.subarray_cols,
                                 sigma=self.sigma, adc_bits=self._adc_bits)
        else:
            for _ in range(self.n_slices):
                row_tiles = []
                for _ in range(self.n_row_tiles):
                    row_tiles.append([
                        CrossbarArray(device, rows=self.subarray_rows,
                                      cols=self.subarray_cols,
                                      sigma=self.sigma,
                                      adc_bits=self._adc_bits)
                        for _ in range(self.n_col_tiles)])
                self._tiles.append(row_tiles)
        self.restore(snap)
        return self
