"""NVCiM accelerator: bit-sliced matrix storage and in-memory GMM.

A :class:`CiMMatrix` is a float matrix held on NVM: values are quantized to
int16, bit-sliced into base-2^bits digits (one digit per cell, paper
Fig. 4), and tiled over 384x128 crossbars.  Matrix-vector products run
slice-by-slice in the arrays and are shift-added digitally, which is
exactly how the paper's scaled-search GMM executes.

Noise-mitigation baselines plug in via two hooks: ``post_program`` (e.g.
selective write-verify re-pulses cells) and ``correct_output`` (e.g.
CxDNN / CorrectNet output compensation).
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from ..nvm.crossbar import CrossbarArray, CrossbarStats
from ..nvm.device_models import NVMDevice
from ..nvm.quantize import Int16Codec, slice_to_digits

__all__ = ["CiMMatrix", "MitigationHooks", "NullMitigation"]

_OFFSET = 32768  # excess code used by the int16 bit-slicing


class MitigationHooks(Protocol):
    """Interface the noise-mitigation baselines implement."""

    name: str

    def post_program(self, matrix: "CiMMatrix") -> None:
        """Run after programming (may verify/re-program cells)."""

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        """Transform values before quantization (e.g. outlier clipping)."""

    def correct_output(self, matrix: "CiMMatrix",
                       outputs: np.ndarray) -> np.ndarray:
        """Correct an MVM output vector (per-column compensation)."""

    def correct_read(self, matrix: "CiMMatrix",
                     values: np.ndarray) -> np.ndarray:
        """Correct a full read-back of the stored matrix."""


class NullMitigation:
    """No mitigation: store and read raw (the paper's \"No-Miti\")."""

    name = "none"

    def post_program(self, matrix: "CiMMatrix") -> None:
        return None

    def prepare_values(self, values: np.ndarray) -> np.ndarray:
        return values

    def correct_output(self, matrix: "CiMMatrix",
                       outputs: np.ndarray) -> np.ndarray:
        return outputs

    def correct_read(self, matrix: "CiMMatrix",
                     values: np.ndarray) -> np.ndarray:
        return values


class CiMMatrix:
    """A (d, n) float matrix stored bit-sliced on NVM crossbars."""

    def __init__(
        self,
        values: np.ndarray,
        device: NVMDevice,
        *,
        sigma: float = 0.1,
        rows: int = 384,
        cols: int = 128,
        adc_bits: int = 8,
        mitigation: MitigationHooks | None = None,
        rng: np.random.Generator | None = None,
    ):
        values = np.asarray(values, dtype=np.float32)
        if values.ndim != 2:
            raise ValueError("CiMMatrix stores 2-D matrices")
        self.device = device
        self.sigma = sigma
        self.subarray_rows = rows
        self.subarray_cols = cols
        self.mitigation = mitigation or NullMitigation()
        self._rng = rng or np.random.default_rng(0)

        prepared = self.mitigation.prepare_values(values)
        self.shape = prepared.shape
        self.codec = Int16Codec.fit(prepared)
        self._ints = self.codec.encode(prepared)
        self._digits = slice_to_digits(self._ints, device.bits_per_cell)
        self.n_slices = self._digits.shape[0]
        self._adc_bits = adc_bits
        self._tiles: list[list[list[CrossbarArray]]] = []  # [slice][row][col]
        # Calibration data some mitigations fill in during post_program.
        self.calibration: dict[str, np.ndarray] = {}
        self._program()
        self.mitigation.post_program(self)

    # ------------------------------------------------------------------
    # Programming and geometry
    # ------------------------------------------------------------------
    def _program(self) -> None:
        d, n = self.shape
        for digit_plane in self._digits:
            row_tiles = []
            for r0 in range(0, d, self.subarray_rows):
                col_tiles = []
                for c0 in range(0, n, self.subarray_cols):
                    block = digit_plane[r0:r0 + self.subarray_rows,
                                        c0:c0 + self.subarray_cols]
                    padded = np.zeros((self.subarray_rows, self.subarray_cols),
                                      dtype=np.int64)
                    padded[:block.shape[0], :block.shape[1]] = block
                    tile = CrossbarArray(self.device,
                                         rows=self.subarray_rows,
                                         cols=self.subarray_cols,
                                         sigma=self.sigma,
                                         adc_bits=self._adc_bits,
                                         rng=self._rng)
                    tile.program(padded)
                    col_tiles.append(tile)
                row_tiles.append(col_tiles)
            self._tiles.append(row_tiles)

    @property
    def n_subarrays(self) -> int:
        return sum(len(col_tiles) for row_tiles in self._tiles
                   for col_tiles in row_tiles)

    def iter_tiles(self):
        """Yield every crossbar tile (used by write-verify mitigation)."""
        for row_tiles in self._tiles:
            for col_tiles in row_tiles:
                yield from col_tiles

    def iter_tiles_with_slice(self):
        """Yield (slice_index, tile) pairs; slice 0 holds the LSB digits."""
        for slice_index, row_tiles in enumerate(self._tiles):
            for col_tiles in row_tiles:
                for tile in col_tiles:
                    yield slice_index, tile

    def aggregate_stats(self) -> CrossbarStats:
        total = CrossbarStats()
        for tile in self.iter_tiles():
            total.cells_programmed += tile.stats.cells_programmed
            total.write_pulses += tile.stats.write_pulses
            total.mvm_ops += tile.stats.mvm_ops
            total.adc_conversions += tile.stats.adc_conversions
            total.cell_reads += tile.stats.cell_reads
        return total

    # ------------------------------------------------------------------
    # Compute
    # ------------------------------------------------------------------
    def matvec(self, x: np.ndarray, *, quantize_output: bool = True,
               corrected: bool = True) -> np.ndarray:
        """In-memory ``x @ W`` with device noise; returns float (n,).

        ``corrected=False`` skips the mitigation's output correction
        (mitigations use it during calibration).
        """
        x = np.asarray(x, dtype=np.float32).reshape(-1)
        d, n = self.shape
        if x.size != d:
            raise ValueError(f"input of {x.size} does not match matrix rows {d}")
        level_gain = self.device.n_levels - 1
        base = float(2 ** self.device.bits_per_cell)
        total = np.zeros(n, dtype=np.float64)
        for s, row_tiles in enumerate(self._tiles):
            plane = np.zeros(n, dtype=np.float64)
            for r_index, col_tiles in enumerate(row_tiles):
                r0 = r_index * self.subarray_rows
                chunk = np.zeros(self.subarray_rows, dtype=np.float32)
                piece = x[r0:r0 + self.subarray_rows]
                chunk[:piece.size] = piece
                for c_index, tile in enumerate(col_tiles):
                    c0 = c_index * self.subarray_cols
                    out = tile.matvec(chunk, quantize_output=quantize_output)
                    width = min(self.subarray_cols, n - c0)
                    plane[c0:c0 + width] += out[:width] * level_gain
            total += plane * (base ** s)
        # Remove the excess-32768 offset: every stored word carries +OFFSET.
        total -= _OFFSET * float(x.sum())
        outputs = (total * self.codec.scale).astype(np.float32)
        if not corrected:
            return outputs
        return self.mitigation.correct_output(self, outputs)

    def read_matrix(self, *, corrected: bool = True) -> np.ndarray:
        """Read the stored matrix back (noisy), shape (d, n) float32."""
        d, n = self.shape
        value = np.zeros((d, n), dtype=np.float64)
        base = float(2 ** self.device.bits_per_cell)
        for s, row_tiles in enumerate(self._tiles):
            for r_index, col_tiles in enumerate(row_tiles):
                r0 = r_index * self.subarray_rows
                height = min(self.subarray_rows, d - r0)
                for c_index, tile in enumerate(col_tiles):
                    c0 = c_index * self.subarray_cols
                    width = min(self.subarray_cols, n - c0)
                    digits = tile.read_cells()
                    value[r0:r0 + height, c0:c0 + width] += (
                        digits[:height, :width] * (base ** s)
                    )
        value -= _OFFSET
        decoded = self.codec.decode(value)
        if not corrected:
            return decoded
        return self.mitigation.correct_read(self, decoded)

    def ideal_matrix(self) -> np.ndarray:
        """The noise-free stored values (after int16 quantization)."""
        return self.codec.decode(self._ints)
