"""Computing-in-memory architecture: accelerator, cost and memory models."""

from .accelerator import CiMMatrix, MitigationHooks, NullMitigation
from .energy import (
    CIM_TECH,
    CPU_JETSON_ORIN,
    CiMCostModel,
    CpuCostModel,
    RetrievalCostReport,
    retrieval_cost,
)
from .memory_model import PAPER_SCALE_STORAGE, OVTStorageModel

__all__ = [
    "CiMMatrix", "MitigationHooks", "NullMitigation",
    "CiMCostModel", "CpuCostModel", "RetrievalCostReport", "retrieval_cost",
    "CIM_TECH", "CPU_JETSON_ORIN",
    "OVTStorageModel", "PAPER_SCALE_STORAGE",
]
