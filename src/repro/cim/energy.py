"""Latency and energy models for OVT retrieval (paper Fig. 5).

The paper reports NeuroSim-derived numbers for the crossbar array plus
peripheral circuits at the 22nm node, compared against a Jetson Orin CPU.
We reproduce that with an analytic model: per-subarray read latency/energy
constants for RRAM and FeFET (NeuroSim-magnitude values), an ADC budget,
and a CPU + DRAM cost model for the software baseline.  Absolute numbers
are order-of-magnitude; the *ratios* (the figure's message: ~up to 120x
latency and ~60x energy advantage) are what the model is calibrated to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CiMCostModel", "CpuCostModel", "RetrievalCostReport",
           "retrieval_cost", "CIM_TECH", "CPU_JETSON_ORIN"]


@dataclass(frozen=True)
class CiMCostModel:
    """Per-operation costs of one NVCiM technology at 22nm."""

    name: str
    array_read_latency_ns: float     # one subarray MVM (row-parallel read)
    cell_read_energy_fj: float       # per cell per MVM
    adc_energy_pj: float             # per 8-bit conversion
    adc_time_ns: float               # per conversion
    adcs_per_subarray: int = 8       # columns share ADCs
    parallel_subarrays: int = 32     # bank-level parallelism
    periphery_energy_pj: float = 1200.0  # buffers/interconnect per tile op

    def mvm_latency_ns(self, n_subarrays: int, rows: int = 384,
                       cols: int = 128) -> float:
        """Latency of one GMM step over ``n_subarrays`` tiles."""
        if n_subarrays <= 0:
            raise ValueError("n_subarrays must be positive")
        adc_serial = cols / self.adcs_per_subarray
        per_tile = self.array_read_latency_ns + adc_serial * self.adc_time_ns
        waves = int(np.ceil(n_subarrays / self.parallel_subarrays))
        return per_tile * waves

    def mvm_energy_pj(self, n_subarrays: int, rows: int = 384,
                      cols: int = 128) -> float:
        """Energy of one GMM step over ``n_subarrays`` tiles."""
        cells = rows * cols
        per_tile = (cells * self.cell_read_energy_fj * 1e-3
                    + cols * self.adc_energy_pj
                    + self.periphery_energy_pj)
        return per_tile * n_subarrays


@dataclass(frozen=True)
class CpuCostModel:
    """Software retrieval on an edge CPU (Jetson Orin class)."""

    name: str
    effective_gmacs_per_s: float     # sustained MAC throughput
    energy_per_mac_pj: float
    dram_bandwidth_gb_s: float
    dram_energy_pj_per_byte: float

    def latency_ns(self, macs: float, bytes_moved: float) -> float:
        compute = macs / (self.effective_gmacs_per_s * 1e9) * 1e9
        memory = bytes_moved / (self.dram_bandwidth_gb_s * 1e9) * 1e9
        # Compute and streaming overlap imperfectly on a CPU; take max plus
        # a fraction of the smaller term.
        return max(compute, memory) + 0.3 * min(compute, memory)

    def energy_pj(self, macs: float, bytes_moved: float) -> float:
        return macs * self.energy_per_mac_pj + bytes_moved * self.dram_energy_pj_per_byte


# NeuroSim-magnitude constants, 22nm node (system level: array + ADC +
# buffers/interconnect), calibrated so the CPU-vs-CiM ratios land in the
# paper's reported band (up to ~120x latency, ~60x energy at 1e5 OVTs).
CIM_TECH: dict[str, CiMCostModel] = {
    "RRAM": CiMCostModel(name="RRAM", array_read_latency_ns=12.0,
                         cell_read_energy_fj=0.30, adc_energy_pj=2.5,
                         adc_time_ns=4.0),
    "FeFET": CiMCostModel(name="FeFET", array_read_latency_ns=9.0,
                          cell_read_energy_fj=0.20, adc_energy_pj=2.5,
                          adc_time_ns=4.0),
}

# Jetson Orin CPU cluster (not the GPU): 12x A78AE with NEON, LPDDR5
# shared bus at realistic sustained efficiency.
CPU_JETSON_ORIN = CpuCostModel(name="JetsonOrinCPU",
                               effective_gmacs_per_s=30.0,
                               energy_per_mac_pj=4.0,
                               dram_bandwidth_gb_s=40.0,
                               dram_energy_pj_per_byte=10.0)


@dataclass(frozen=True)
class RetrievalCostReport:
    """Cost of retrieving among ``n_ovts`` candidates.

    ``latency_ns``/``energy_pj`` are totals for ``n_queries`` retrievals;
    the default batch of one keeps the report per-query, which is what the
    serving telemetry attaches to each answer.  Batching amortises host
    dispatch, not the analog physics: every query still activates every
    tile once per scale, so totals scale linearly with the batch width.
    """

    backend: str
    n_ovts: int
    latency_ns: float
    energy_pj: float
    n_queries: int = 1

    @property
    def latency_s(self) -> float:
        return self.latency_ns * 1e-9

    @property
    def energy_j(self) -> float:
        return self.energy_pj * 1e-12

    def per_query(self) -> "RetrievalCostReport":
        """The same cost normalised to a single retrieval."""
        if self.n_queries == 1:
            return self
        return RetrievalCostReport(
            backend=self.backend,
            n_ovts=self.n_ovts,
            latency_ns=self.latency_ns / self.n_queries,
            energy_pj=self.energy_pj / self.n_queries,
            n_queries=1,
        )


def _search_geometry(n_ovts: int, code_rows: int, n_slices: int,
                     rows: int = 384, cols: int = 128) -> int:
    """Subarrays needed to hold the scaled-search matrices for all OVTs."""
    row_tiles = int(np.ceil(code_rows / rows)) * n_slices
    col_tiles = int(np.ceil(n_ovts / cols))
    return row_tiles * col_tiles


def retrieval_cost(
    backend: str,
    n_ovts: int,
    *,
    code_rows: int = 768,          # 16 tokens x 48 dims (scale-1 vectors)
    n_slices: int = 8,             # int16 on 2-bit cells
    scales: tuple[int, ...] = (1, 2, 4),
    bytes_per_ovt: float = 1536.0,  # 16 x 48 x int16
    n_queries: int = 1,
) -> RetrievalCostReport:
    """Cost of scaled-search queries over ``n_ovts`` stored OVTs.

    ``backend`` is "RRAM", "FeFET" or "CPU".  ``n_queries`` prices a
    batch: the analog (or CPU) work per query is unchanged — a batched
    GMM still performs one MVM per tile per query — so totals scale
    linearly and :meth:`RetrievalCostReport.per_query` recovers the
    single-query figures the serving telemetry reports.
    """
    if n_ovts <= 0:
        raise ValueError("n_ovts must be positive")
    if n_queries <= 0:
        raise ValueError("n_queries must be positive")
    if backend in CIM_TECH:
        tech = CIM_TECH[backend]
        latency = 0.0
        energy = 0.0
        for scale in scales:
            tiles = _search_geometry(n_ovts, code_rows // scale, n_slices)
            latency += tech.mvm_latency_ns(tiles)
            energy += tech.mvm_energy_pj(tiles)
        return RetrievalCostReport(backend, n_ovts, latency * n_queries,
                                   energy * n_queries, n_queries)
    if backend == "CPU":
        values_per_ovt = sum(code_rows // s for s in scales)
        macs = float(n_ovts) * values_per_ovt
        bytes_moved = macs * 2.0  # int16 stream of every scaled copy
        latency = CPU_JETSON_ORIN.latency_ns(macs, bytes_moved)
        energy = CPU_JETSON_ORIN.energy_pj(macs, bytes_moved)
        return RetrievalCostReport(backend, n_ovts, latency * n_queries,
                                   energy * n_queries, n_queries)
    raise ValueError(f"unknown backend {backend!r}; use RRAM, FeFET or CPU")
