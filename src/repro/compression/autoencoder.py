"""OVT autoencoder (paper Section III-D-1).

Reshapes virtual tokens into an NVM-compatible encoding space: each
d_model-dimensional row maps to a 48-dimensional code that is then stored
as int16 on 2-bit cells (48 dims x 8 bit-slices = the 384 rows of one
subarray).  Pre-trained on user-generated embeddings and updated with the
non-representative remainder whenever the buffer is drained, following the
paper's Deep-Compression-inspired design (train, quantize-aware refine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ag import Adam, Linear, Module, Tensor, mse_loss, no_grad
from ..utils import rng_from_seed

__all__ = ["AutoencoderConfig", "OVTAutoencoder"]


@dataclass(frozen=True)
class AutoencoderConfig:
    """Architecture and training settings for the OVT autoencoder."""

    input_dim: int
    code_dim: int = 48
    hidden_dim: int = 128
    lr: float = 3e-3
    pretrain_steps: int = 300
    update_steps: int = 60
    batch_size: int = 32
    quant_noise: float = 1e-4   # int16 LSB-scale noise for quantize-aware AE
    gram_weight: float = 0.5    # inner-product (retrieval geometry) loss
    seed: int = 0

    def __post_init__(self):
        if self.input_dim <= 0 or self.code_dim <= 0 or self.hidden_dim <= 0:
            raise ValueError("dimensions must be positive")


class OVTAutoencoder(Module):
    """Two-layer tanh encoder/decoder between model space and NVM space."""

    def __init__(self, config: AutoencoderConfig):
        super().__init__()
        rng = rng_from_seed(config.seed)
        self.config = config
        self.enc1 = Linear(config.input_dim, config.hidden_dim, rng=rng)
        self.enc2 = Linear(config.hidden_dim, config.code_dim, rng=rng)
        self.dec1 = Linear(config.code_dim, config.hidden_dim, rng=rng)
        self.dec2 = Linear(config.hidden_dim, config.input_dim, rng=rng)
        self._trained = False

    # ------------------------------------------------------------------
    def encode_tensor(self, x: Tensor) -> Tensor:
        return self.enc2(self.enc1(x).tanh())

    def decode_tensor(self, code: Tensor) -> Tensor:
        return self.dec2(self.dec1(code).tanh())

    def encode(self, rows: np.ndarray) -> np.ndarray:
        """Encode (n, input_dim) rows to (n, code_dim) codes."""
        rows = self._check_rows(rows)
        with no_grad():
            return self.encode_tensor(Tensor(rows)).data.copy()

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Decode (n, code_dim) codes back to model space."""
        codes = np.asarray(codes, dtype=np.float32)
        if codes.ndim != 2 or codes.shape[1] != self.config.code_dim:
            raise ValueError(
                f"expected (n, {self.config.code_dim}) codes, got {codes.shape}"
            )
        with no_grad():
            return self.decode_tensor(Tensor(codes)).data.copy()

    def reconstruction_error(self, rows: np.ndarray) -> float:
        """RMS reconstruction error on ``rows``."""
        decoded = self.decode(self.encode(rows))
        return float(np.sqrt(np.mean((decoded - rows) ** 2)))

    # ------------------------------------------------------------------
    # Matrix-level API with digital scale metadata.  Virtual tokens drift
    # to magnitudes far above the embedding rows the autoencoder trains
    # on, so matrices are normalised to unit peak before encoding and the
    # scale travels digitally (exactly like a quantization codec scale).
    # ------------------------------------------------------------------
    @staticmethod
    def matrix_scale(matrix: np.ndarray) -> float:
        """Peak magnitude used to normalise a token matrix."""
        peak = float(np.abs(matrix).max())
        return peak if peak > 0 else 1.0

    def encode_matrix(self, matrix: np.ndarray) -> tuple[np.ndarray, float]:
        """Encode a (tokens, input_dim) matrix; returns (codes, scale)."""
        scale = self.matrix_scale(matrix)
        return self.encode(np.asarray(matrix, dtype=np.float32) / scale), scale

    def decode_matrix(self, codes: np.ndarray, scale: float) -> np.ndarray:
        """Invert :meth:`encode_matrix`."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        return self.decode(codes) * scale

    # ------------------------------------------------------------------
    def fit(self, rows: np.ndarray, *, steps: int | None = None) -> list[float]:
        """(Pre)train on embedding rows; returns the loss history."""
        rows = self._check_rows(rows)
        steps = steps or self.config.pretrain_steps
        rng = rng_from_seed(self.config.seed + 1)
        optimizer = Adam(self.parameters(), lr=self.config.lr)
        history = []
        for _ in range(steps):
            count = min(self.config.batch_size, rows.shape[0])
            picks = rng.choice(rows.shape[0], size=count, replace=False)
            batch = Tensor(rows[picks])
            optimizer.zero_grad()
            code = self.encode_tensor(batch)
            if self.config.quant_noise > 0:
                noise = rng.normal(0.0, self.config.quant_noise,
                                   code.shape).astype(np.float32)
                code = code + Tensor(noise)
            out = self.decode_tensor(code)
            loss = mse_loss(out, batch)
            if self.config.gram_weight > 0:
                # Retrieval runs dot products in code space, so the encoder
                # must preserve inner products: match the Gram matrices.
                gram_in = batch @ batch.transpose(1, 0)
                gram_code = code @ code.transpose(1, 0)
                loss = loss + mse_loss(gram_code, gram_in) * self.config.gram_weight
            loss.backward()
            optimizer.step()
            history.append(float(loss.data))
        self._trained = True
        return history

    def update(self, rows: np.ndarray) -> list[float]:
        """Incremental update with new user data (buffer remainder)."""
        return self.fit(rows, steps=self.config.update_steps)

    @property
    def is_trained(self) -> bool:
        return self._trained

    def _check_rows(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.float32)
        if rows.ndim != 2 or rows.shape[1] != self.config.input_dim:
            raise ValueError(
                f"expected (n, {self.config.input_dim}) rows, got {rows.shape}"
            )
        if rows.shape[0] == 0:
            raise ValueError("need at least one row")
        return rows
