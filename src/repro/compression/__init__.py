"""Autoencoder-based OVT compression into the NVM encoding space."""

from .autoencoder import AutoencoderConfig, OVTAutoencoder

__all__ = ["AutoencoderConfig", "OVTAutoencoder"]
