"""Trace-driven traffic: synthetic arrival processes and a replay harness.

The load side of the serving story.  A trace is built *ahead of time*
(deterministic under a seed) from three ingredients:

* **Arrival process** — Poisson (exponential inter-arrivals at a target
  rate) or bursty (a two-state Markov-modulated Poisson process: quiet
  base load punctuated by bursts at ``burst_factor`` × the base rate,
  the shape that actually breaks queues).
* **Population** — thousands of synthetic users with Zipf-skewed
  popularity (rank-``alpha`` power law), so a handful of hot users
  dominate exactly as real traffic does and the engine's LRU/session
  machinery gets exercised, not idealised.
* **Payloads** — a per-user text source (any callable), typically the
  LaMP query generator.

:func:`replay` then fires the trace **open-loop** against a gateway
through :class:`~repro.gateway.client.GatewayClient`: requests launch at
their trace timestamps whether or not earlier ones completed (that is
what makes overload measurable), from a thread pool, and every outcome —
success, 429 rejection, 504 deadline miss, transport error — lands in a
:class:`TraceReport` with p50/p99 latency and throughput.
"""

from __future__ import annotations

import concurrent.futures
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..llm.generation import GenerationConfig
from .client import DeadlineExceeded, GatewayClient, GatewayError
from ..utils import rng_from_seed

__all__ = ["TraceConfig", "TraceEvent", "zipf_weights", "build_trace",
           "RequestRecord", "TraceReport", "replay"]


@dataclass(frozen=True)
class TraceConfig:
    """Shape of one synthetic traffic trace."""

    n_users: int = 1000
    zipf_alpha: float = 1.1       # popularity skew (1.0–1.3 is web-like)
    rate_rps: float = 20.0        # mean arrival rate, requests/second
    duration_s: float = 10.0
    arrival: str = "poisson"      # "poisson" | "bursty"
    burst_factor: float = 8.0     # burst rate = rate_rps * burst_factor
    burst_fraction: float = 0.2   # long-run fraction of time in burst state
    mean_burst_s: float = 0.5     # mean burst episode length
    deadline_ms: float | None = None   # attach an SLO to every request
    seed: int = 0

    def __post_init__(self):
        if self.n_users <= 0:
            raise ValueError("n_users must be positive")
        if self.rate_rps <= 0 or self.duration_s <= 0:
            raise ValueError("rate_rps and duration_s must be positive")
        if self.arrival not in ("poisson", "bursty"):
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected 'poisson' or 'bursty'")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")


@dataclass(frozen=True)
class TraceEvent:
    """One scheduled request."""

    at_s: float                   # offset from trace start
    user_id: int
    text: str
    deadline_ms: float | None = None


def zipf_weights(n_users: int, alpha: float) -> np.ndarray:
    """Normalized rank-``alpha`` power-law popularity over ``n_users``."""
    ranks = np.arange(1, n_users + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    return weights / weights.sum()


def _arrival_times(config: TraceConfig, rng: np.random.Generator,
                   ) -> list[float]:
    if config.arrival == "poisson":
        times: list[float] = []
        t = rng.exponential(1.0 / config.rate_rps)
        while t < config.duration_s:
            times.append(t)
            t += rng.exponential(1.0 / config.rate_rps)
        return times
    # Bursty: two-state MMPP.  The base (quiet) rate is chosen so the
    # long-run mean equals rate_rps given the burst dwell fraction:
    #   mean = (1-f) * base + f * base * burst_factor
    f = config.burst_fraction
    base_rate = config.rate_rps / ((1.0 - f) + f * config.burst_factor)
    burst_rate = base_rate * config.burst_factor
    mean_quiet_s = config.mean_burst_s * (1.0 - f) / f
    times = []
    t = 0.0
    in_burst = False
    while t < config.duration_s:
        dwell = rng.exponential(
            config.mean_burst_s if in_burst else mean_quiet_s)
        phase_end = min(t + dwell, config.duration_s)
        rate = burst_rate if in_burst else base_rate
        arrival = t + rng.exponential(1.0 / rate)
        while arrival < phase_end:
            times.append(arrival)
            arrival += rng.exponential(1.0 / rate)
        t = phase_end
        in_burst = not in_burst
    return times


def build_trace(
    config: TraceConfig,
    text_for: Callable[[int, int], str] | Sequence[str],
) -> list[TraceEvent]:
    """Materialise a deterministic trace from the config and a text source.

    ``text_for`` is either a callable ``(user_id, k) -> str`` (``k``
    counts that user's requests so far) or a plain sequence cycled by
    event index.  Same config + same source ⇒ the identical trace.
    """
    rng = rng_from_seed(config.seed)
    times = _arrival_times(config, rng)
    weights = zipf_weights(config.n_users, config.zipf_alpha)
    users = rng.choice(config.n_users, size=len(times), p=weights)
    per_user_count: dict[int, int] = {}
    events: list[TraceEvent] = []
    for index, (at, user) in enumerate(zip(times, users)):
        user = int(user)
        if callable(text_for):
            k = per_user_count.get(user, 0)
            per_user_count[user] = k + 1
            text = text_for(user, k)
        else:
            text = text_for[index % len(text_for)]
        events.append(TraceEvent(at_s=float(at), user_id=user, text=text,
                                 deadline_ms=config.deadline_ms))
    return events


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RequestRecord:
    """Client-side outcome of one replayed request."""

    user_id: int
    scheduled_at_s: float
    latency_s: float
    status: int          # HTTP status; 0 = transport failure
    answer: str = ""
    error: str = ""

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class TraceReport:
    """Aggregate view of one replay (latency in seconds)."""

    records: list[RequestRecord] = field(default_factory=list)
    wall_s: float = 0.0

    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(r.ok for r in self.records)

    @property
    def rejected(self) -> int:
        return sum(r.status == 429 for r in self.records)

    @property
    def deadline_misses(self) -> int:
        return sum(r.status == 504 for r in self.records)

    @property
    def transport_errors(self) -> int:
        return sum(r.status == 0 for r in self.records)

    def _latencies(self, ok_only: bool = True) -> np.ndarray:
        values = [r.latency_s for r in self.records if r.ok or not ok_only]
        return np.asarray(values if values else [0.0])

    def p50_s(self) -> float:
        return float(np.percentile(self._latencies(), 50))

    def p99_s(self) -> float:
        return float(np.percentile(self._latencies(), 99))

    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s else 0.0

    def summary(self) -> dict:
        """JSON-ready digest (the bench artifact payload)."""
        return {
            "requests": self.n_requests,
            "completed": self.completed,
            "rejected_429": self.rejected,
            "deadline_misses_504": self.deadline_misses,
            "transport_errors": self.transport_errors,
            "latency_p50_ms": self.p50_s() * 1e3,
            "latency_p99_ms": self.p99_s() * 1e3,
            "throughput_rps": self.throughput_rps(),
            "wall_s": self.wall_s,
        }


def replay(
    client: GatewayClient,
    trace: Sequence[TraceEvent],
    *,
    generation: GenerationConfig | None = None,
    max_workers: int = 16,
    speed: float = 1.0,
) -> TraceReport:
    """Fire a trace at the gateway open-loop; returns the outcome report.

    ``speed`` scales trace time (2.0 replays twice as fast).  Requests
    are launched at their scheduled instants from a thread pool;
    completions, rejections (429 after the client's retry budget),
    deadline misses (504), and transport failures are all recorded
    rather than raised — overload is data here, not an error.
    """
    if speed <= 0:
        raise ValueError("speed must be positive")
    report = TraceReport()
    results: list[RequestRecord | None] = [None] * len(trace)

    def fire(index: int, event: TraceEvent) -> None:
        started = time.perf_counter()
        status, answer, error = 0, "", ""
        try:
            response = client.query(
                event.user_id, event.text, generation=generation,
                request_id=f"trace-{index}",
                deadline_ms=event.deadline_ms)
            status, answer = 200, response.answer
        except DeadlineExceeded as exc:
            status, answer = 504, exc.partial_answer
        except GatewayError as exc:
            status, error = exc.status, str(exc)
        except Exception as exc:   # transport-level surprise
            error = f"{type(exc).__name__}: {exc}"
        results[index] = RequestRecord(
            user_id=event.user_id, scheduled_at_s=event.at_s,
            latency_s=time.perf_counter() - started,
            status=status, answer=answer, error=error)

    start = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers) as pool:
        futures = []
        for index, event in enumerate(trace):
            target = start + event.at_s / speed
            delay = target - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            futures.append(pool.submit(fire, index, event))
        for future in futures:
            future.result()
    report.records = [r for r in results if r is not None]
    report.wall_s = time.perf_counter() - start
    return report
