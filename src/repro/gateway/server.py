"""The async HTTP serving gateway in front of :class:`PromptServeEngine`.

Architecture — three kinds of thread around one engine:

* **Event-loop thread** — an asyncio HTTP/1.1 server (pure stdlib, see
  :mod:`repro.gateway.http`).  Handlers parse and validate payloads,
  apply *acceptance* control (a bounded queue; 429 + ``Retry-After``
  when full), then park on a future.  Handlers never touch the engine's
  hot path, so slow decodes cannot stall accepts, health checks, or
  rejections.
* **Worker thread** — the decode driver.  It owns the serving hot loop:
  each tick it expires queued requests past their deadline, lets the
  admission policy (:mod:`repro.gateway.scheduler`) pick which queued
  queries take the free decode-batch slots, feeds them to
  ``engine.begin_query``, runs one ``engine.run_decode_round`` (every
  in-flight answer advances one token in a single batched forward), and
  resolves the futures of retired generations back into the event loop.
* **Executor threads** — tune and stats requests run the engine's
  (internally locked) training/stats entry points off the event loop,
  interleaving with decode rounds at round boundaries.

Backpressure is two-layered by design: the gateway's queue bounds
*accepted-but-unadmitted* work (HTTP 429 with a ``Retry-After`` hint
derived from observed service time), while the engine's own
``max_pending`` bounds decoder occupancy — the policy decides who
crosses from one to the other each round.

Cancellation: a client that disconnects while its query is queued or
decoding frees its slot within one round (the generation retires with
the tokens produced so far); a request that misses its deadline gets a
structured 504 carrying the partial answer.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass

from ..serve import PromptServeEngine, QueryResponse, QueueFull
from .http import HTTPError, HTTPRequest, read_request, render_response
from .scheduler import AdmissionPolicy, QueuedQuery, build_policy
from .validation import (
    ValidationError,
    parse_query_request,
    parse_tune_request,
)

__all__ = ["GatewayConfig", "PromptGateway", "query_response_to_dict",
           "query_response_from_dict"]


@dataclass(frozen=True)
class GatewayConfig:
    """Deployment knobs of one gateway instance."""

    host: str = "127.0.0.1"
    port: int = 0                 # 0 = bind an ephemeral port
    max_queue: int = 64           # accepted-but-unadmitted bound (429 beyond)
    max_batch: int = 8            # decode-batch slots the worker keeps full
    policy: str = "fifo"          # round-admission policy name
    fair_share: int = 2           # per-user slot cap (deadline policy)
    default_deadline_s: float | None = None   # SLO when the request has none
    retry_after_s: float | None = None   # fixed 429 hint; None = estimated
    idle_wait_s: float = 0.02     # worker sleep when nothing is pending

    def __post_init__(self):
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if self.max_batch <= 0:
            raise ValueError("max_batch must be positive")


def query_response_to_dict(response: QueryResponse, *,
                           finish_reason: str | None = None) -> dict:
    """The JSON wire form of a :class:`QueryResponse`.

    Floats serialize via ``repr`` (exact round-trip), so a response
    rebuilt with :func:`query_response_from_dict` compares equal to the
    in-process original — the gateway's byte-identical contract.
    """
    payload = {
        "user_id": response.user_id,
        "text": response.text,
        "answer": response.answer,
        "ovt_index": response.ovt_index,
        "scores": list(response.scores),
        "n_ovts": response.n_ovts,
        "backend": response.backend,
        "latency_ns": response.latency_ns,
        "energy_pj": response.energy_pj,
        "request_id": response.request_id,
    }
    if finish_reason is not None:
        payload["finish_reason"] = finish_reason
    return payload


def query_response_from_dict(payload: dict) -> QueryResponse:
    """Rebuild the typed response a direct engine call would have returned."""
    return QueryResponse(
        user_id=payload["user_id"],
        text=payload["text"],
        answer=payload["answer"],
        ovt_index=payload["ovt_index"],
        scores=tuple(float(s) for s in payload["scores"]),
        n_ovts=payload["n_ovts"],
        backend=payload["backend"],
        latency_ns=payload["latency_ns"],
        energy_pj=payload["energy_pj"],
        request_id=payload["request_id"],
    )


class PromptGateway:
    """HTTP front-end + admission control + decode-loop driver.

    Usage::

        gateway = PromptGateway(engine, GatewayConfig(port=0)).start()
        host, port = gateway.address
        ...                       # curl / GatewayClient traffic
        gateway.stop()

    Endpoints: ``POST /v1/tune``, ``POST /v1/query`` (body may carry
    ``deadline_ms``), ``GET /v1/stats``, ``GET /healthz``.
    """

    def __init__(self, engine: PromptServeEngine,
                 config: GatewayConfig | None = None, *,
                 policy: AdmissionPolicy | None = None):
        self.engine = engine
        self.config = config if config is not None else GatewayConfig()
        if policy is None:
            kwargs = ({"fair_share": self.config.fair_share}
                      if self.config.policy == "deadline" else {})
            policy = build_policy(self.config.policy, **kwargs)
        self.policy = policy
        self.address: tuple[str, int] | None = None
        # -- accepted-but-unadmitted queue (event loop appends, worker
        #    drains); one lock covers the queue and the admitted list.
        self._qlock = threading.Lock()
        self._queue: deque[QueuedQuery] = deque()
        self._admitted: list[tuple[QueuedQuery, object]] = []
        self._sequence = itertools.count()
        self._work = threading.Event()
        self._stop = threading.Event()
        # -- counters (worker/loop threads; ints, so GIL-atomic enough
        #    for telemetry)
        self.started_at: float | None = None
        self.http_requests = 0
        self.accepted = 0
        self.rejected = 0            # 429s at the gateway queue
        self.completed = 0
        self.validation_failures = 0
        self.deadline_misses = 0     # 504s (queued or mid-decode)
        self.disconnects = 0         # client gone before the answer
        self._service_ewma_s: float | None = None
        # -- runtime
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop_thread: threading.Thread | None = None
        self._worker_thread: threading.Thread | None = None
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PromptGateway":
        """Bind, start serving, and return once the port is live."""
        if self._loop_thread is not None:
            raise RuntimeError("gateway already started")
        ready = threading.Event()
        self._loop_thread = threading.Thread(
            target=self._run_event_loop, args=(ready,),
            name="gateway-http", daemon=True)
        self._loop_thread.start()
        ready.wait(timeout=10.0)
        if self._startup_error is not None:
            raise RuntimeError("gateway failed to start") \
                from self._startup_error
        if self.address is None:
            raise RuntimeError("gateway did not bind within 10s")
        self._worker_thread = threading.Thread(
            target=self._worker_loop, name="gateway-worker", daemon=True)
        self._worker_thread.start()
        self.started_at = time.monotonic()
        return self

    def stop(self) -> None:
        """Stop accepting, shed queued work (503), and join the threads."""
        self._stop.set()
        self._work.set()
        if self._worker_thread is not None:
            self._worker_thread.join(timeout=10.0)
        if self._loop is not None and self._shutdown is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._shutdown.set)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=10.0)

    def __enter__(self) -> "PromptGateway":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Event-loop thread
    # ------------------------------------------------------------------
    def _run_event_loop(self, ready: threading.Event) -> None:
        try:
            asyncio.run(self._serve(ready))
        except BaseException as error:   # surface bind failures to start()
            self._startup_error = error
        finally:
            ready.set()

    async def _serve(self, ready: threading.Event) -> None:
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port)
        self.address = server.sockets[0].getsockname()[:2]
        ready.set()
        async with server:
            await self._shutdown.wait()

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while not self._stop.is_set():
                try:
                    request = await read_request(reader)
                except HTTPError as error:
                    writer.write(render_response(
                        error.status, error.body(), keep_alive=False))
                    await writer.drain()
                    return
                if request is None:
                    return
                self.http_requests += 1
                keep_alive = request.keep_alive
                status, payload, extra = await self._dispatch(request, reader)
                writer.write(render_response(status, payload,
                                             keep_alive=keep_alive,
                                             extra_headers=extra))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: HTTPRequest,
                        reader: asyncio.StreamReader,
                        ) -> tuple[int, dict, dict | None]:
        try:
            route = (request.method, request.path)
            if route == ("POST", "/v1/query"):
                return await self._handle_query(request, reader)
            if route == ("POST", "/v1/tune"):
                return await self._handle_tune(request)
            if route == ("GET", "/v1/stats"):
                return await self._handle_stats()
            if route == ("GET", "/healthz"):
                return 200, {"status": "ok",
                             "uptime_s": (time.monotonic() - self.started_at
                                          if self.started_at else 0.0)}, None
            if request.path in ("/v1/query", "/v1/tune", "/v1/stats",
                                "/healthz"):
                return 405, {"error": f"method {request.method} not "
                                      f"allowed for {request.path}",
                             "status": 405}, None
            return 404, {"error": f"no route for {request.path}",
                         "status": 404}, None
        except ValidationError as error:
            self.validation_failures += 1
            return error.status, error.body(), None
        except HTTPError as error:
            extra = None
            if error.retry_after is not None:
                extra = {"Retry-After": f"{error.retry_after:.2f}"}
            return error.status, error.body(), extra
        except asyncio.CancelledError:
            raise
        except (ConnectionResetError, BrokenPipeError):
            raise   # client gone: close the connection, write nothing
        except Exception as error:
            # Defensive catch-all: an engine bug answers 500, it never
            # tears down the connection loop with a raw traceback.
            return 500, {"error": f"internal error: "
                                  f"{type(error).__name__}: {error}",
                         "status": 500}, None

    # -- query ---------------------------------------------------------
    async def _handle_query(self, request: HTTPRequest,
                            reader: asyncio.StreamReader,
                            ) -> tuple[int, dict, dict | None]:
        payload = request.json()
        deadline_s = self._parse_deadline(payload)
        query = parse_query_request(payload)
        now = time.monotonic()
        deadline = None
        if deadline_s is not None:
            deadline = now + deadline_s
        elif self.config.default_deadline_s is not None:
            deadline = now + self.config.default_deadline_s
        with self._qlock:
            if self._stop.is_set():
                raise HTTPError(503, "gateway shutting down")
            if len(self._queue) >= self.config.max_queue:
                self.rejected += 1
                raise HTTPError(429, "request queue full",
                                retry_after=self._retry_after_hint())
            future = self._loop.create_future()
            queued = QueuedQuery(
                request=query, sequence=next(self._sequence),
                enqueued_at=now, deadline=deadline,
                complete=self._completer(future))
            self._queue.append(queued)
            self.accepted += 1
        self._work.set()
        return await self._await_answer(queued, future, reader)

    def _parse_deadline(self, payload: dict) -> float | None:
        value = payload.get("deadline_ms")
        if value is None:
            return None
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            raise ValidationError("deadline_ms",
                                  "'deadline_ms' must be a positive number")
        return float(value) / 1e3

    def _completer(self, future: asyncio.Future):
        """A thread-safe resolver the worker calls with the final triple."""
        loop = self._loop

        def resolve(status: int, payload: dict,
                    extra: dict | None = None) -> None:
            def _set() -> None:
                if not future.done():
                    future.set_result((status, payload, extra))
            with contextlib.suppress(RuntimeError):   # loop already closed
                loop.call_soon_threadsafe(_set)

        return resolve

    async def _await_answer(self, queued: QueuedQuery,
                            future: asyncio.Future,
                            reader: asyncio.StreamReader,
                            ) -> tuple[int, dict, dict | None]:
        """Wait for the worker's answer, watching for client disconnect.

        The watch reads one byte: HTTP/1.1 keep-alive clients never send
        a second request before this response, so bytes here mean either
        EOF (disconnect) or pipelining, which the gateway does not
        support — both cancel the in-flight generation and free its
        batch slot within one round.
        """
        answer_task = asyncio.ensure_future(future)
        watch_task = asyncio.ensure_future(reader.read(1))
        try:
            done, _ = await asyncio.wait(
                {answer_task, watch_task},
                return_when=asyncio.FIRST_COMPLETED)
            if answer_task in done:
                return answer_task.result()
            # Peer vanished (or tried to pipeline) mid-generation.
            queued.cancelled = True
            self.disconnects += 1
            self._work.set()
            raise ConnectionResetError("client disconnected mid-query")
        finally:
            for task in (answer_task, watch_task):
                if not task.done():
                    task.cancel()
                    with contextlib.suppress(asyncio.CancelledError,
                                             Exception):
                        await task

    def _retry_after_hint(self) -> float:
        if self.config.retry_after_s is not None:
            return self.config.retry_after_s
        service = self._service_ewma_s if self._service_ewma_s else 0.5
        backlog = len(self._queue) + len(self._admitted)
        return round(
            max(0.05, service * max(1, backlog) / self.config.max_batch), 2)

    # -- tune / stats (engine entry points are internally locked) ------
    async def _handle_tune(self, request: HTTPRequest,
                           ) -> tuple[int, dict, dict | None]:
        tune = parse_tune_request(request.json())
        response = await self._loop.run_in_executor(
            None, self.engine.submit, tune)
        return 200, {
            "user_id": response.user_id,
            "accepted": response.accepted,
            "epochs_fired": response.epochs_fired,
            "library_size": response.library_size,
            "request_id": response.request_id,
        }, None

    async def _handle_stats(self) -> tuple[int, dict, dict | None]:
        engine_stats = await self._loop.run_in_executor(
            None, self.engine.stats)
        with self._qlock:
            gateway_stats = {
                "queue_depth": len(self._queue),
                "in_flight": len(self._admitted),
                "max_queue": self.config.max_queue,
                "max_batch": self.config.max_batch,
                "policy": self.policy.name,
                "http_requests": self.http_requests,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "validation_failures": self.validation_failures,
                "deadline_misses": self.deadline_misses,
                "disconnects": self.disconnects,
            }
        return 200, {"gateway": gateway_stats, "engine": engine_stats}, None

    # ------------------------------------------------------------------
    # Worker thread — the decode driver
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            try:
                busy = self._tick()
            except Exception as error:
                # A tick must never silently kill the decode driver:
                # answer every in-flight request with a 500 and keep
                # serving the queue.
                self._shed_admitted(error)
                busy = True
            if not busy:
                self._work.wait(timeout=self.config.idle_wait_s)
                self._work.clear()
        self._shed_all()

    def _shed_admitted(self, error: Exception) -> None:
        with self._qlock:
            admitted = list(self._admitted)
            self._admitted = []
        for queued, pending in admitted:
            with contextlib.suppress(Exception):
                self.engine.cancel_query(pending)
            queued.complete(500, {
                "error": f"decode failed: {type(error).__name__}: {error}",
                "status": 500})

    def _tick(self) -> bool:
        """One worker iteration; returns True when it did any work."""
        now = time.monotonic()
        self._drop_dead_queued(now)
        admitted_now = self._admit(now)
        self._cancel_disconnected()
        progressed = self._drive_round()
        resolved = self._resolve_finished()
        return bool(admitted_now or progressed or resolved)

    def _drop_dead_queued(self, now: float) -> None:
        """Shed queued entries that were cancelled or missed their SLO."""
        with self._qlock:
            dead = [q for q in self._queue
                    if q.cancelled or (q.deadline is not None
                                       and now >= q.deadline)]
            for queued in dead:
                self._queue.remove(queued)
        for queued in dead:
            if queued.cancelled:
                continue   # disconnect: nobody is waiting for the reply
            self.deadline_misses += 1
            queued.complete(504, {
                "error": "deadline exceeded before admission",
                "status": 504,
                "user_id": queued.request.user_id,
                "request_id": queued.request.request_id,
                "partial_answer": "",
                "finish_reason": "deadline",
            })

    def _admit(self, now: float) -> int:
        """Policy-selected queued queries take the free decode slots."""
        with self._qlock:
            slots = self.config.max_batch - len(self._admitted)
            if slots <= 0 or not self._queue:
                return 0
            in_flight: dict[int, int] = {}
            for queued, _ in self._admitted:
                in_flight[queued.user_id] = \
                    in_flight.get(queued.user_id, 0) + 1
            picks = self.policy.select(list(self._queue), slots, now,
                                       in_flight)
            for queued in picks:
                self._queue.remove(queued)
        admitted = 0
        for queued in picks:
            try:
                pending = self.engine.begin_query(queued.request,
                                                  deadline=queued.deadline)
            except KeyError as error:
                queued.complete(404, {"error": str(error), "status": 404,
                                      "user_id": queued.request.user_id,
                                      "request_id":
                                          queued.request.request_id})
            except QueueFull:
                queued.complete(429, {"error": "engine at capacity",
                                      "status": 429},
                                {"Retry-After":
                                     f"{self._retry_after_hint():.2f}"})
            except Exception as error:
                queued.complete(500, {"error": f"admission failed: "
                                               f"{type(error).__name__}: "
                                               f"{error}",
                                      "status": 500})
            else:
                with self._qlock:
                    self._admitted.append((queued, pending))
                admitted += 1
        return admitted

    def _cancel_disconnected(self) -> None:
        with self._qlock:
            gone = [(q, p) for q, p in self._admitted if q.cancelled]
        for queued, pending in gone:
            self.engine.cancel_query(pending)   # no-op if already done

    def _drive_round(self) -> bool:
        with self._qlock:
            live = any(not p.done for _, p in self._admitted)
        if not live:
            return False
        self.engine.run_decode_round()
        return True

    def _resolve_finished(self) -> int:
        with self._qlock:
            finished = [(q, p) for q, p in self._admitted if p.done]
            self._admitted = [(q, p) for q, p in self._admitted
                              if not p.done]
        for queued, pending in finished:
            self._observe_service(queued)
            response = pending.response
            if queued.cancelled:
                continue   # disconnect: reply socket is gone
            if pending.finish_reason == "deadline":
                self.deadline_misses += 1
                queued.complete(504, {
                    "error": "deadline exceeded",
                    "status": 504,
                    "user_id": response.user_id,
                    "request_id": response.request_id,
                    "partial_answer": response.answer,
                    "finish_reason": "deadline",
                })
            else:
                self.completed += 1
                queued.complete(200, query_response_to_dict(
                    response, finish_reason=pending.finish_reason))
        return len(finished)

    def _observe_service(self, queued: QueuedQuery) -> None:
        service = time.monotonic() - queued.enqueued_at
        if self._service_ewma_s is None:
            self._service_ewma_s = service
        else:
            self._service_ewma_s += 0.2 * (service - self._service_ewma_s)

    def _shed_all(self) -> None:
        """On shutdown: answer everything still waiting with 503."""
        with self._qlock:
            queued = list(self._queue)
            admitted = list(self._admitted)
            self._queue.clear()
            self._admitted = []
        for entry in queued:
            entry.complete(503, {"error": "gateway shutting down",
                                 "status": 503})
        for entry, pending in admitted:
            self.engine.cancel_query(pending)
            entry.complete(503, {"error": "gateway shutting down",
                                 "status": 503})
