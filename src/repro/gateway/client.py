"""A blocking gateway client: connection pooling, timeouts, retries.

The client side of the serving edge.  Built on stdlib ``http.client``
(keep-alive HTTP/1.1 connections) with:

* **Connection pooling** — completed keep-alive connections return to a
  bounded pool; concurrent callers (the load generator drives this from
  a thread pool) each check one out, so steady-state traffic performs no
  TCP handshakes.
* **Timeouts** — one socket timeout bounds connect/send/receive.
* **Retry with jittered exponential backoff** — 429/503 responses (the
  gateway's backpressure signals) honour ``Retry-After`` and retry up to
  a budget; transport errors retry only when re-sending is safe
  (queries are repeatable, tune submissions are not — a half-sent tune
  must surface, not silently double-train).

Errors are typed: :class:`GatewayError` carries the HTTP status and the
structured body (including the ``field`` of a 400 validation failure);
:class:`DeadlineExceeded` adds the partial answer of a 504.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time

import numpy as np
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..data.lamp import Sample
from ..llm.generation import GenerationConfig
from ..serve import QueryResponse, TuneResponse
from ..utils import rng_from_seed
from .server import query_response_from_dict
from .validation import generation_to_dict

__all__ = ["GatewayClient", "GatewayError", "DeadlineExceeded",
           "RetryPolicy"]


class GatewayError(Exception):
    """A non-2xx gateway answer (or transport failure after retries)."""

    def __init__(self, status: int, payload: dict | None = None,
                 message: str | None = None):
        self.status = status
        self.payload = payload or {}
        self.field = self.payload.get("field")
        super().__init__(message or self.payload.get("error")
                         or f"gateway answered {status}")


class DeadlineExceeded(GatewayError):
    """A 504: the deadline passed; ``partial_answer`` holds the prefix."""

    def __init__(self, payload: dict):
        super().__init__(504, payload)
        self.partial_answer = payload.get("partial_answer", "")


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff shape for 429/503 (and safe transport) retries."""

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5          # uniform extra fraction of the delay
    retry_statuses: tuple[int, ...] = (429, 503)

    def delay(self, attempt: int, retry_after: float | None,
              rng: np.random.Generator) -> float:
        """Delay before retry ``attempt`` (0-based), jittered.

        ``rng`` only needs a ``.random()`` method — an injected
        ``np.random.Generator`` in production, anything duck-compatible
        in tests."""
        backoff = min(self.backoff_cap_s,
                      self.backoff_base_s * (2.0 ** attempt))
        if retry_after is not None:
            backoff = max(backoff, retry_after)
        return backoff * (1.0 + self.jitter * rng.random())


class GatewayClient:
    """Pooled, retrying HTTP client for one :class:`PromptGateway`."""

    def __init__(self, host: str, port: int, *,
                 timeout_s: float = 60.0,
                 pool_size: int = 8,
                 retry: RetryPolicy | None = None,
                 seed: int | None = None,
                 rng: np.random.Generator | None = None):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.pool_size = pool_size
        self.retry = retry if retry is not None else RetryPolicy()
        # Backoff jitter draws from a seeded generator so a replayed
        # trace sleeps the same schedule; callers may inject their own
        # stream (e.g. one spawned per client by the load harness).
        self._rng = rng if rng is not None else rng_from_seed(
            0 if seed is None else seed)
        self._pool: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()
        self.retries = 0          # total retry sleeps taken
        self.requests_sent = 0

    # ------------------------------------------------------------------
    # Pool
    # ------------------------------------------------------------------
    def _checkout(self) -> http.client.HTTPConnection:
        with self._lock:
            if self._pool:
                return self._pool.pop()
        return http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout_s)

    def _checkin(self, connection: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._pool) < self.pool_size:
                self._pool.append(connection)
                return
        connection.close()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, []
        for connection in pool:
            connection.close()

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Transport with retry
    # ------------------------------------------------------------------
    def _once(self, method: str, path: str, payload: dict | None,
              ) -> tuple[int, dict, float | None]:
        connection = self._checkout()
        try:
            body = (json.dumps(payload).encode("utf-8")
                    if payload is not None else None)
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            retry_after = None
            header = response.getheader("Retry-After")
            if header is not None:
                try:
                    retry_after = max(0.0, float(header))
                except ValueError:
                    pass
            try:
                decoded = json.loads(data) if data else {}
            except json.JSONDecodeError:
                decoded = {}
            if not isinstance(decoded, dict):
                decoded = {}
            if response.will_close:
                connection.close()
            else:
                self._checkin(connection)
            return response.status, decoded, retry_after
        except BaseException:
            connection.close()
            raise

    def _request(self, method: str, path: str, payload: dict | None = None,
                 *, retry_transport: bool = True) -> dict:
        """One logical request; retries per policy; raises GatewayError."""
        last_error: Exception | None = None
        for attempt in range(max(1, self.retry.max_attempts)):
            retry_after = None
            try:
                self.requests_sent += 1
                status, decoded, retry_after = self._once(method, path,
                                                          payload)
            except (ConnectionError, socket.timeout, TimeoutError,
                    http.client.HTTPException, OSError) as error:
                last_error = error
                if not retry_transport:
                    raise GatewayError(
                        0, None, f"transport failure (not retried: "
                                 f"request may have been processed): "
                                 f"{error}") from error
            else:
                if status < 300:
                    return decoded
                if status == 504:
                    raise DeadlineExceeded(decoded)
                if status not in self.retry.retry_statuses:
                    raise GatewayError(status, decoded)
                last_error = GatewayError(status, decoded)
            if attempt + 1 >= max(1, self.retry.max_attempts):
                break
            self.retries += 1
            time.sleep(self.retry.delay(attempt, retry_after, self._rng))
        if isinstance(last_error, GatewayError):
            raise last_error
        raise GatewayError(0, None,
                           f"transport failure after "
                           f"{self.retry.max_attempts} attempts: "
                           f"{last_error}") from last_error

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/v1/stats")

    def tune(self, user_id: int,
             samples: Iterable[Sample] | Sequence[dict], *,
             request_id: str = "") -> TuneResponse:
        """Submit one user's training samples (Sample objects or dicts)."""
        wire_samples = []
        for sample in samples:
            if isinstance(sample, Sample):
                wire_samples.append({
                    "task": sample.task,
                    "input_text": sample.input_text,
                    "target_text": sample.target_text,
                    "domain": sample.domain,
                })
            else:
                wire_samples.append(dict(sample))
        payload = {"user_id": user_id, "samples": wire_samples,
                   "request_id": request_id}
        # A tune that half-sent must not silently re-send: the server may
        # have absorbed the samples, and training twice changes the
        # library.  429/503 answers are still retried (the engine never
        # saw the request).
        decoded = self._request("POST", "/v1/tune", payload,
                                retry_transport=False)
        return TuneResponse(
            user_id=decoded["user_id"],
            accepted=decoded["accepted"],
            epochs_fired=decoded["epochs_fired"],
            library_size=decoded["library_size"],
            request_id=decoded.get("request_id", ""),
        )

    def query(self, user_id: int, text: str, *,
              generation: GenerationConfig | None = None,
              request_id: str = "",
              deadline_ms: float | None = None) -> QueryResponse:
        """Ask one query; returns the same typed :class:`QueryResponse`
        a direct ``engine.query`` call would (byte-identical fields)."""
        payload: dict = {"user_id": user_id, "text": text,
                         "request_id": request_id}
        if generation is not None:
            payload["generation"] = generation_to_dict(generation)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        decoded = self._request("POST", "/v1/query", payload)
        return query_response_from_dict(decoded)
