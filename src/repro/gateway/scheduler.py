"""Round-admission policies for the gateway's bounded request queue.

The gateway separates *acceptance* (did the HTTP request get a seat in
the bounded queue, or a 429?) from *round admission* (which queued
queries join the engine's continuous-batching decoder when slots free
up).  This module owns the second decision as a pluggable policy:

* :class:`FIFOPolicy` — the reference: strict arrival order.
* :class:`DeadlineFairPolicy` — earliest-deadline-first with a per-user
  in-flight cap, so one chatty user under load can neither starve
  deadline-critical requests nor monopolise the decode batch.

Policies are registered in a string-keyed
:class:`~repro.utils.Registry` (``register_policy`` /
``build_policy``), the same extensibility shape as the model/device/
mitigation zoos, so deployments can plug in their own scheduler without
touching the gateway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..serve import QueryRequest
from ..utils import Registry

__all__ = ["QueuedQuery", "AdmissionPolicy", "FIFOPolicy",
           "DeadlineFairPolicy", "register_policy", "build_policy",
           "available_policies"]


@dataclass
class QueuedQuery:
    """One accepted query waiting for a decode-batch slot.

    ``deadline`` is an absolute ``time.monotonic()`` timestamp (None =
    no SLO).  ``sequence`` orders ties and preserves FIFO among equals.
    ``cancelled`` flips when the HTTP client disconnects while still
    queued — the worker then drops the entry without admitting it.
    """

    request: QueryRequest
    sequence: int
    enqueued_at: float
    deadline: float | None = None
    cancelled: bool = False
    # Opaque completion callback the gateway attaches (resolves the
    # HTTP handler's future); policies never touch it.
    complete: Callable | None = field(default=None, repr=False)

    @property
    def user_id(self) -> int:
        return self.request.user_id


class AdmissionPolicy:
    """Decides which queued queries take the free decode-batch slots.

    ``select`` sees the queue in arrival order, the number of free
    slots, the current monotonic time, and the per-user count of
    generations already in flight; it returns the entries to admit this
    round, at most ``slots`` of them, in admission order.  It must not
    mutate the queue.
    """

    name = "base"

    def select(self, queued: Sequence[QueuedQuery], slots: int, now: float,
               in_flight: Mapping[int, int]) -> list[QueuedQuery]:
        raise NotImplementedError


class FIFOPolicy(AdmissionPolicy):
    """Strict arrival order — the reference policy."""

    name = "fifo"

    def select(self, queued: Sequence[QueuedQuery], slots: int, now: float,
               in_flight: Mapping[int, int]) -> list[QueuedQuery]:
        return list(queued[:max(0, slots)])


class DeadlineFairPolicy(AdmissionPolicy):
    """Earliest-deadline-first admission with a per-user fairness cap.

    Candidates sort by (deadline, arrival): a request whose SLO expires
    soonest is admitted first, and deadline-free requests (treated as
    infinitely patient) fall back to arrival order among themselves.  A
    user already holding ``fair_share`` or more batch slots (queued
    admissions this round included) yields to other users; capped
    entries are reconsidered in a second pass so slots never go idle
    when there is work — the cap shapes *order*, it does not reject.
    """

    name = "deadline"

    def __init__(self, fair_share: int = 2):
        if fair_share <= 0:
            raise ValueError("fair_share must be positive")
        self.fair_share = fair_share

    def select(self, queued: Sequence[QueuedQuery], slots: int, now: float,
               in_flight: Mapping[int, int]) -> list[QueuedQuery]:
        slots = max(0, slots)
        if not slots or not queued:
            return []
        candidates = sorted(
            queued,
            key=lambda q: (q.deadline if q.deadline is not None else math.inf,
                           q.sequence))
        holding = dict(in_flight)
        picked: list[QueuedQuery] = []
        deferred: list[QueuedQuery] = []
        for query in candidates:
            if len(picked) >= slots:
                break
            if holding.get(query.user_id, 0) >= self.fair_share:
                deferred.append(query)
                continue
            picked.append(query)
            holding[query.user_id] = holding.get(query.user_id, 0) + 1
        # Second pass: fill remaining slots from capped users (EDF order)
        # rather than leaving batch slots empty.
        for query in deferred:
            if len(picked) >= slots:
                break
            picked.append(query)
        return picked


POLICIES: Registry[Callable[[], AdmissionPolicy]] = Registry(
    "gateway admission policy")
POLICIES.register("fifo", FIFOPolicy)
POLICIES.register("deadline", DeadlineFairPolicy)


def register_policy(name: str, factory: Callable[[], AdmissionPolicy]):
    """Plug in a custom admission policy under ``name``."""
    return POLICIES.register(name, factory)


def build_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate a registered policy by name."""
    return POLICIES[name](**kwargs)


def available_policies() -> list[str]:
    return POLICIES.names()
