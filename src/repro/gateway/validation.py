"""Typed validation of JSON payloads into serving-API request objects.

Everything that arrives over the wire is untrusted: these parsers turn a
decoded JSON object into a :class:`~repro.serve.QueryRequest` /
:class:`~repro.serve.TuneRequest`, and *any* malformed field — wrong
type, missing key, out-of-range value — raises :class:`ValidationError`
naming the offending field.  The gateway renders that as a structured
HTTP 400 (``{"error": ..., "field": ...}``); a raw traceback never
crosses the socket.
"""

from __future__ import annotations

import math
from typing import Any

from ..data.lamp import Sample
from ..llm.generation import GenerationConfig
from ..serve import QueryRequest, TuneRequest
from .http import HTTPError

__all__ = ["ValidationError", "parse_query_request", "parse_tune_request",
           "generation_to_dict"]


class ValidationError(HTTPError):
    """A malformed request field; maps to a structured HTTP 400."""

    def __init__(self, field: str, message: str):
        super().__init__(400, message, field=field)


def _require(payload: dict, field: str) -> Any:
    if field not in payload:
        raise ValidationError(field, f"missing required field {field!r}")
    return payload[field]


def _as_int(value: Any, field: str) -> int:
    # bool is an int subclass; reject it explicitly (true/false user ids
    # are always a client bug, not a convenience).
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(field, f"{field!r} must be an integer, "
                                     f"got {type(value).__name__}")
    return value


def _as_float(value: Any, field: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValidationError(field, f"{field!r} must be a number, "
                                     f"got {type(value).__name__}")
    value = float(value)
    if not math.isfinite(value):
        raise ValidationError(field, f"{field!r} must be finite")
    return value


def _as_str(value: Any, field: str, *, allow_empty: bool = False) -> str:
    if not isinstance(value, str):
        raise ValidationError(field, f"{field!r} must be a string, "
                                     f"got {type(value).__name__}")
    if not value and not allow_empty:
        raise ValidationError(field, f"{field!r} must be non-empty")
    return value


def _parse_generation(payload: Any) -> GenerationConfig:
    if not isinstance(payload, dict):
        raise ValidationError("generation",
                              "'generation' must be a JSON object")
    known = {"max_new_tokens", "temperature", "seed", "eos_id"}
    for key in payload:
        if key not in known:
            raise ValidationError(f"generation.{key}",
                                  f"unknown generation field {key!r}")
    kwargs: dict[str, Any] = {}
    if "max_new_tokens" in payload:
        kwargs["max_new_tokens"] = _as_int(payload["max_new_tokens"],
                                           "generation.max_new_tokens")
    if "temperature" in payload:
        kwargs["temperature"] = _as_float(payload["temperature"],
                                          "generation.temperature")
    if "seed" in payload:
        kwargs["seed"] = _as_int(payload["seed"], "generation.seed")
    if "eos_id" in payload and payload["eos_id"] is not None:
        kwargs["eos_id"] = _as_int(payload["eos_id"], "generation.eos_id")
    try:
        return GenerationConfig(**kwargs)
    except ValueError as error:
        raise ValidationError("generation", str(error)) from None


def parse_query_request(payload: dict) -> QueryRequest:
    """``{"user_id": int, "text": str[, "generation": {...},
    "request_id": str]}`` → :class:`QueryRequest`."""
    user_id = _as_int(_require(payload, "user_id"), "user_id")
    text = _as_str(_require(payload, "text"), "text")
    generation = None
    if payload.get("generation") is not None:
        generation = _parse_generation(payload["generation"])
    request_id = _as_str(payload.get("request_id", ""), "request_id",
                         allow_empty=True)
    try:
        return QueryRequest(user_id=user_id, text=text,
                            generation=generation, request_id=request_id)
    except ValueError as error:   # dataclass-level invariants
        raise ValidationError("text", str(error)) from None


def _parse_sample(payload: Any, user_id: int, index: int) -> Sample:
    field = f"samples[{index}]"
    if not isinstance(payload, dict):
        raise ValidationError(field, f"{field} must be a JSON object")
    for key in ("input_text", "target_text"):
        if key not in payload:
            raise ValidationError(f"{field}.{key}",
                                  f"missing required field {field}.{key!r}")
    return Sample(
        task=_as_str(payload.get("task", "http"), f"{field}.task"),
        user_id=user_id,
        input_text=_as_str(payload["input_text"], f"{field}.input_text"),
        target_text=_as_str(payload["target_text"], f"{field}.target_text",
                            allow_empty=True),
        domain=_as_str(payload.get("domain", "http"), f"{field}.domain"),
    )


def parse_tune_request(payload: dict) -> TuneRequest:
    """``{"user_id": int, "samples": [{"input_text": ..., "target_text":
    ...}, ...][, "request_id": str]}`` → :class:`TuneRequest`."""
    user_id = _as_int(_require(payload, "user_id"), "user_id")
    samples = _require(payload, "samples")
    if not isinstance(samples, list) or not samples:
        raise ValidationError("samples",
                              "'samples' must be a non-empty array")
    parsed = tuple(_parse_sample(sample, user_id, index)
                   for index, sample in enumerate(samples))
    request_id = _as_str(payload.get("request_id", ""), "request_id",
                         allow_empty=True)
    try:
        return TuneRequest(user_id=user_id, samples=parsed,
                           request_id=request_id)
    except ValueError as error:
        raise ValidationError("samples", str(error)) from None


def generation_to_dict(config: GenerationConfig) -> dict:
    """The wire form of a :class:`GenerationConfig` (client side)."""
    return {"max_new_tokens": config.max_new_tokens,
            "temperature": config.temperature,
            "seed": config.seed,
            "eos_id": config.eos_id}
