"""A minimal HTTP/1.1 wire implementation over asyncio streams.

The gateway deliberately avoids third-party web frameworks (the repo's
only runtime dependency is numpy), so this module implements exactly the
slice of HTTP/1.1 the serving edge needs: request-line + header parsing,
``Content-Length`` bodies, keep-alive connection reuse, and JSON response
serialization.  Both the asyncio server (:mod:`repro.gateway.server`) and
the blocking pooled client (:mod:`repro.gateway.client`) speak through
the same parser, so the two sides cannot drift.

Limits are explicit and conservative: header block and body sizes are
bounded (an edge box fronting an LLM should never buffer megabytes of
headers), and any malformed input raises :class:`HTTPError` with the
status the peer should see — never a raw traceback.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = ["HTTPError", "HTTPRequest", "HTTPResponse", "read_request",
           "read_response", "render_request", "render_response",
           "STATUS_REASONS"]

MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(Exception):
    """A protocol-level failure carrying the HTTP status to answer with.

    ``field`` names the offending request field for validation failures
    (the structured-400 contract); ``retry_after`` becomes a
    ``Retry-After`` header (the 429 backpressure contract).
    """

    def __init__(self, status: int, message: str, *,
                 field: str | None = None,
                 retry_after: float | None = None):
        super().__init__(message)
        self.status = status
        self.message = message
        self.field = field
        self.retry_after = retry_after

    def body(self) -> dict:
        payload = {"error": self.message, "status": self.status}
        if self.field is not None:
            payload["field"] = self.field
        return payload


@dataclass
class HTTPRequest:
    """One parsed request: method, split path, lowered headers, raw body."""

    method: str
    path: str
    query: str = ""
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"

    def json(self) -> dict:
        """The body decoded as a JSON object; HTTP 400 on anything else."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object",
                            field="body")
        try:
            payload = json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise HTTPError(400, f"malformed JSON body: {error}",
                            field="body") from None
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object",
                            field="body")
        return payload


@dataclass
class HTTPResponse:
    """One parsed response (client side)."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive") != "close"

    @property
    def retry_after(self) -> float | None:
        value = self.headers.get("retry-after")
        if value is None:
            return None
        try:
            return max(0.0, float(value))
        except ValueError:
            return None

    def json(self) -> dict:
        try:
            payload = json.loads(self.body) if self.body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return {}
        return payload if isinstance(payload, dict) else {}


# ----------------------------------------------------------------------
# Parsing (server side reads requests; the client reuses the header logic)
# ----------------------------------------------------------------------
def _parse_headers(lines: list[bytes]) -> dict[str, str]:
    headers: dict[str, str] = {}
    for line in lines:
        name, sep, value = line.partition(b":")
        if not sep or not name.strip():
            raise HTTPError(400, f"malformed header line: {line[:60]!r}")
        headers[name.strip().decode("latin-1").lower()] = \
            value.strip().decode("latin-1")
    return headers


def _split_head(head: bytes) -> tuple[bytes, list[bytes]]:
    lines = head.split(b"\r\n")
    return lines[0], [line for line in lines[1:] if line]


def _content_length(headers: dict[str, str]) -> int:
    value = headers.get("content-length", "0")
    try:
        length = int(value)
    except ValueError:
        raise HTTPError(400, f"invalid Content-Length: {value!r}") from None
    if length < 0:
        raise HTTPError(400, f"invalid Content-Length: {value!r}")
    if length > MAX_BODY_BYTES:
        raise HTTPError(413, f"body of {length} bytes exceeds the "
                             f"{MAX_BODY_BYTES}-byte limit")
    return length


async def _read_head(reader: asyncio.StreamReader) -> bytes | None:
    """The request/status line + headers, or None on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None   # peer closed between requests: normal keep-alive
        raise HTTPError(400, "connection closed mid-request") from None
    except asyncio.LimitOverrunError:
        raise HTTPError(413, "header block too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPError(413, "header block too large")
    return head[:-4]


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Parse one request off the stream; None when the peer closed."""
    head = await _read_head(reader)
    if head is None:
        return None
    request_line, header_lines = _split_head(head)
    parts = request_line.split()
    if len(parts) != 3:
        raise HTTPError(400, f"malformed request line: {request_line[:60]!r}")
    method, target, version = parts
    if not version.startswith(b"HTTP/1."):
        raise HTTPError(400, f"unsupported protocol {version[:20]!r}")
    path, _, query = target.decode("latin-1").partition("?")
    headers = _parse_headers(header_lines)
    body = b""
    length = _content_length(headers)
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "connection closed mid-body") from None
    return HTTPRequest(method=method.decode("latin-1").upper(), path=path,
                       query=query, headers=headers, body=body)


async def read_response(reader: asyncio.StreamReader) -> HTTPResponse:
    """Parse one response off the stream (async client side)."""
    head = await _read_head(reader)
    if head is None:
        raise HTTPError(503, "server closed the connection")
    status_line, header_lines = _split_head(head)
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
        raise HTTPError(503, f"malformed status line: {status_line[:60]!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise HTTPError(503,
                        f"malformed status line: {status_line[:60]!r}") \
            from None
    headers = _parse_headers(header_lines)
    body = b""
    length = _content_length(headers)
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(503, "server closed the connection mid-body") \
                from None
    return HTTPResponse(status=status, headers=headers, body=body)


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_response(status: int, payload: dict | bytes, *,
                    keep_alive: bool = True,
                    extra_headers: dict[str, str] | None = None) -> bytes:
    """Serialize one response; dict payloads become JSON."""
    if isinstance(payload, dict):
        body = json.dumps(payload).encode("utf-8")
        content_type = "application/json"
    else:
        body = payload
        content_type = "application/octet-stream"
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             f"Content-Length: {len(body)}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_request(method: str, path: str, payload: dict | None = None, *,
                   host: str = "localhost",
                   keep_alive: bool = True) -> bytes:
    """Serialize one request; a dict payload becomes a JSON body."""
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    lines = [f"{method.upper()} {path} HTTP/1.1",
             f"Host: {host}",
             f"Connection: {'keep-alive' if keep_alive else 'close'}"]
    if body:
        lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
