"""Async serving gateway: the HTTP edge in front of the serving engine.

This package turns :class:`~repro.serve.PromptServeEngine` into a
network service without adding dependencies: a minimal HTTP/1.1 layer on
asyncio streams (:mod:`~repro.gateway.http`), typed request validation
(:mod:`~repro.gateway.validation`), pluggable round-admission policies
(:mod:`~repro.gateway.scheduler`), the server itself
(:mod:`~repro.gateway.server`) with bounded-queue admission control and
a worker thread driving the engine's continuous-batching decode rounds,
a pooled retrying client (:mod:`~repro.gateway.client`), and a
trace-driven load generator (:mod:`~repro.gateway.traffic`).

The wire contract is exact: a query answered over HTTP is byte-identical
to the same ``engine.query`` call made in-process.
"""

from .client import (DeadlineExceeded, GatewayClient, GatewayError,
                     RetryPolicy)
from .scheduler import (AdmissionPolicy, DeadlineFairPolicy, FIFOPolicy,
                        QueuedQuery, available_policies, build_policy,
                        register_policy)
from .server import (GatewayConfig, PromptGateway, query_response_from_dict,
                     query_response_to_dict)
from .traffic import (RequestRecord, TraceConfig, TraceEvent, TraceReport,
                      build_trace, replay, zipf_weights)
from .validation import (ValidationError, parse_query_request,
                         parse_tune_request)

__all__ = [
    "PromptGateway", "GatewayConfig",
    "GatewayClient", "GatewayError", "DeadlineExceeded", "RetryPolicy",
    "AdmissionPolicy", "FIFOPolicy", "DeadlineFairPolicy", "QueuedQuery",
    "register_policy", "build_policy", "available_policies",
    "TraceConfig", "TraceEvent", "TraceReport", "RequestRecord",
    "build_trace", "replay", "zipf_weights",
    "ValidationError", "parse_query_request", "parse_tune_request",
    "query_response_to_dict", "query_response_from_dict",
]
