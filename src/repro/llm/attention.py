"""Multi-head causal self-attention with external key/value prefixes.

The KV-prefix hook is what makes prefix tuning and P-tuning v2 possible:
both inject trained ``(key, value)`` matrices that every query position may
attend to, ahead of the causal window.
"""

from __future__ import annotations

import numpy as np

from ..ag import Linear, Module, Tensor, cat, softmax

__all__ = ["MultiHeadSelfAttention", "KVPrefix"]

# A per-layer prefix: (keys, values), each of shape (batch, heads, P, d_head).
KVPrefix = tuple[Tensor, Tensor]

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard causal self-attention; optional KV prefix of length P."""

    def __init__(self, d_model: int, n_heads: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        rng = rng or np.random.default_rng(0)
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, prefix_kv: KVPrefix | None = None) -> Tensor:
        """Attend over ``x`` (batch, T, d_model), optionally over a prefix.

        Prefix keys/values are visible to *all* query positions; the causal
        mask applies only among the real tokens.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)

        prefix_len = 0
        if prefix_kv is not None:
            pk, pv = prefix_kv
            if pk.shape != pv.shape:
                raise ValueError("prefix keys/values must share a shape")
            if pk.shape[1] != self.n_heads or pk.shape[3] != self.d_head:
                raise ValueError(
                    f"prefix shaped {pk.shape} incompatible with "
                    f"{self.n_heads} heads of size {self.d_head}"
                )
            prefix_len = pk.shape[2]
            k = cat([pk, k], axis=2)
            v = cat([pv, v], axis=2)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.d_head))
        mask = self._causal_mask(length, prefix_len)
        scores = scores.masked_fill(mask, _NEG_INF)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (batch, heads, T, d_head)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.d_model)
        return self.out_proj(merged)

    @staticmethod
    def _causal_mask(length: int, prefix_len: int) -> np.ndarray:
        """Boolean mask, True = blocked. Shape (T, P+T), prefix never blocked."""
        token_part = np.triu(np.ones((length, length), dtype=bool), k=1)
        if prefix_len == 0:
            return token_part
        prefix_part = np.zeros((length, prefix_len), dtype=bool)
        return np.concatenate([prefix_part, token_part], axis=1)
