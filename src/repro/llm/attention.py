"""Multi-head causal self-attention with external key/value prefixes.

The KV-prefix hook is what makes prefix tuning and P-tuning v2 possible:
both inject trained ``(key, value)`` matrices that every query position may
attend to, ahead of the causal window.

The *past-KV* hook is what makes incremental decoding possible: a decode
step feeds only the newest token plus the keys/values of everything already
processed (``past_kv``), and the layer returns the extended cache so the
next step can do the same.  Prefixes and past-KVs compose: the prefix is
constant trained conditioning re-attached every call, while the past cache
accumulates real positions.

:meth:`MultiHeadSelfAttention.decode_step` is the cross-sequence batched
variant of that decode path: one new token per sequence, each sequence
carrying its own (ragged-length) past.  The projections run as one batched
matmul — numpy evaluates stacked ``(B, 1, d)`` matmuls slice-by-slice, so
every row is bitwise what the single-sequence call computes — while the
softmax/context core runs per sequence over *compact* keys.  A padded
key-mask formulation would be mathematically equivalent but not
bit-identical (masked entries change the length, and therefore the
association order, of numpy's reductions), and bit-identity with the
sequential reference is the contract the serving engine's batched decode
is built on.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ag import Linear, Module, Tensor, cat, softmax
from ..utils import rng_from_seed

__all__ = ["MultiHeadSelfAttention", "KVPrefix"]

# A per-layer prefix: (keys, values), each of shape (batch, heads, P, d_head).
KVPrefix = tuple[Tensor, Tensor]

_NEG_INF = -1e9


class MultiHeadSelfAttention(Module):
    """Standard causal self-attention; optional KV prefix of length P."""

    def __init__(self, d_model: int, n_heads: int, *,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if d_model % n_heads != 0:
            raise ValueError(f"d_model={d_model} not divisible by n_heads={n_heads}")
        rng = rng or rng_from_seed(0)
        self.d_model = d_model
        self.n_heads = n_heads
        self.d_head = d_model // n_heads
        self.q_proj = Linear(d_model, d_model, rng=rng)
        self.k_proj = Linear(d_model, d_model, rng=rng)
        self.v_proj = Linear(d_model, d_model, rng=rng)
        self.out_proj = Linear(d_model, d_model, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, length: int) -> Tensor:
        return x.reshape(batch, length, self.n_heads, self.d_head).transpose(0, 2, 1, 3)

    def _check_kv(self, k: Tensor, v: Tensor, what: str) -> None:
        if k.shape != v.shape:
            raise ValueError(f"{what} keys/values must share a shape")
        if k.shape[1] != self.n_heads or k.shape[3] != self.d_head:
            raise ValueError(
                f"{what} shaped {k.shape} incompatible with "
                f"{self.n_heads} heads of size {self.d_head}"
            )

    def forward(
        self,
        x: Tensor,
        prefix_kv: KVPrefix | None = None,
        past_kv: KVPrefix | None = None,
        use_cache: bool = False,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor | tuple[Tensor, KVPrefix]:
        """Attend over ``x`` (batch, T, d_model), optionally over a prefix.

        Prefix keys/values are visible to *all* query positions; the causal
        mask applies only among the real tokens.

        ``past_kv`` carries the keys/values of previously processed
        positions (cached tokens, *excluding* any prefix), each shaped
        (batch, heads, T_past, d_head); the queries in ``x`` then occupy
        positions ``T_past .. T_past+T-1`` of the causal window.  With
        ``use_cache=True`` the return value is ``(output, (k, v))`` where
        ``(k, v)`` extend ``past_kv`` with this call's positions — pass
        them back as the next step's ``past_kv``.

        ``key_padding_mask`` is a boolean (batch, T_past + T) array, True at
        padded token positions: those keys receive zero attention weight
        from every query.  Prefix keys are trained conditioning and are
        never padded, so the mask covers only the real token positions.
        """
        batch, length, _ = x.shape
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)

        past_len = 0
        if past_kv is not None:
            past_k, past_v = past_kv
            self._check_kv(past_k, past_v, "past")
            past_len = past_k.shape[2]
            k = cat([past_k, k], axis=2)
            v = cat([past_v, v], axis=2)
        present = (k, v) if use_cache else None

        prefix_len = 0
        if prefix_kv is not None:
            pk, pv = prefix_kv
            self._check_kv(pk, pv, "prefix")
            prefix_len = pk.shape[2]
            k = cat([pk, k], axis=2)
            v = cat([pv, v], axis=2)

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(self.d_head))
        mask = self._causal_mask(length, prefix_len, past_len)
        if key_padding_mask is not None:
            padded = np.asarray(key_padding_mask, dtype=bool)
            if padded.shape != (batch, past_len + length):
                raise ValueError(
                    f"key_padding_mask shaped {padded.shape} incompatible "
                    f"with batch {batch} and {past_len + length} token keys"
                )
            if prefix_len:
                padded = np.concatenate(
                    [np.zeros((batch, prefix_len), dtype=bool), padded], axis=1)
            mask = mask[None, None, :, :] | padded[:, None, None, :]
        scores = scores.masked_fill(mask, _NEG_INF)
        weights = softmax(scores, axis=-1)
        context = weights @ v  # (batch, heads, T, d_head)
        merged = context.transpose(0, 2, 1, 3).reshape(batch, length, self.d_model)
        out = self.out_proj(merged)
        if use_cache:
            return out, present
        return out

    def decode_step(
        self,
        x: Tensor,
        past: Sequence[KVPrefix],
        prefix_kv: Sequence[KVPrefix | None] | None = None,
    ) -> tuple[Tensor, list[KVPrefix]]:
        """One decode round over ``B`` independent sequences at once.

        ``x`` is (B, 1, d_model) — the newest token of each sequence —
        and ``past[i]`` carries sequence ``i``'s cached keys/values, shaped
        (1, heads, L_i, d_head) with ragged ``L_i``.  ``prefix_kv``
        optionally carries each sequence's trained KV prefix (entries may
        be None), re-attached ahead of the cache exactly as in
        :meth:`forward`.

        Returns ``(out, present)`` where ``out`` is (B, 1, d_model) and
        ``present[i]`` extends ``past[i]`` by this round's position.  Every
        row of ``out`` is bit-identical to calling :meth:`forward` with
        that sequence alone: the projections are stacked matmuls (numpy
        evaluates them slice-by-slice), and the attention core runs per
        sequence over compact keys so no padded reduction can drift.
        """
        batch, length, _ = x.shape
        if length != 1:
            raise ValueError(
                f"decode_step advances one token per sequence, got {length}"
            )
        if len(past) != batch:
            raise ValueError(
                f"{len(past)} past caches for a batch of {batch} tokens"
            )
        if prefix_kv is not None and len(prefix_kv) != batch:
            raise ValueError(
                f"{len(prefix_kv)} prefixes for a batch of {batch} tokens"
            )
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)
        q_data, k_data, v_data = q.data, k.data, v.data
        scale = np.float32(1.0 / np.sqrt(self.d_head))

        contexts: list[np.ndarray] = []
        present: list[KVPrefix] = []
        for i in range(batch):
            past_k, past_v = past[i]
            self._check_kv(past_k, past_v, "past")
            keys = np.concatenate([past_k.data, k_data[i:i + 1]], axis=2)
            values = np.concatenate([past_v.data, v_data[i:i + 1]], axis=2)
            present.append((Tensor(keys), Tensor(values)))
            if prefix_kv is not None and prefix_kv[i] is not None:
                pk, pv = prefix_kv[i]
                self._check_kv(pk, pv, "prefix")
                keys = np.concatenate([pk.data, keys], axis=2)
                values = np.concatenate([pv.data, values], axis=2)
            scores = np.matmul(q_data[i:i + 1], keys.swapaxes(-1, -2)) * scale
            # A single new token sees the whole prefix and every cached
            # position, so the causal mask is all-visible here; the softmax
            # mirrors ag.softmax's exact operation sequence.
            scores -= scores.max(axis=-1, keepdims=True)
            np.exp(scores, out=scores)
            scores /= scores.sum(axis=-1, keepdims=True)
            contexts.append(np.matmul(scores, values))

        merged = (np.concatenate(contexts, axis=0)
                  .transpose(0, 2, 1, 3)
                  .reshape(batch, length, self.d_model))
        return self.out_proj(Tensor(merged)), present

    def decode_span_step(
        self,
        x: Tensor,
        past: Sequence[KVPrefix],
        spans: Sequence[int],
        prefix_kv: Sequence[KVPrefix | None] | None = None,
    ) -> tuple[Tensor, list[KVPrefix]]:
        """Ragged multi-position decode over ``B`` independent sequences.

        The speculative-verify generalisation of :meth:`decode_step`:
        sequence ``s`` contributes ``spans[s] >= 1`` *new* positions, laid
        out contiguously in ``x`` of shape ``(sum(spans), 1, d_model)`` —
        every new position occupies its own batch slice of length 1, so
        the stacked projections evaluate slice-by-slice exactly as the
        single-token path does.  The attention core runs per *position*
        over that sequence's compact cache plus the earlier positions of
        its own span (causality inside the span), mirroring the operation
        sequence of :meth:`decode_step` bit for bit.  Every output row is
        therefore bit-identical to stepping that sequence one token at a
        time through :meth:`decode_step` — the property that makes
        speculative greedy decoding token-identical to the sequential
        reference rather than merely close.

        Returns ``(out, present)`` with ``out`` shaped like ``x`` and
        ``present[s]`` extending ``past[s]`` by all ``spans[s]`` positions
        (the caller truncates rejected suffixes via
        :meth:`~repro.llm.kv_cache.KVCache.truncate`).
        """
        batch, length, _ = x.shape
        if length != 1:
            raise ValueError(
                f"decode_span_step stacks positions on the batch axis, "
                f"got length {length}"
            )
        spans = [int(span) for span in spans]
        if any(span < 1 for span in spans):
            raise ValueError(f"spans must be >= 1, got {spans}")
        if sum(spans) != batch:
            raise ValueError(
                f"spans {spans} cover {sum(spans)} rows for {batch} inputs"
            )
        if len(past) != len(spans):
            raise ValueError(
                f"{len(past)} past caches for {len(spans)} spans"
            )
        if prefix_kv is not None and len(prefix_kv) != len(spans):
            raise ValueError(
                f"{len(prefix_kv)} prefixes for {len(spans)} spans"
            )
        q = self._split_heads(self.q_proj(x), batch, length)
        k = self._split_heads(self.k_proj(x), batch, length)
        v = self._split_heads(self.v_proj(x), batch, length)
        q_data, k_data, v_data = q.data, k.data, v.data
        scale = np.float32(1.0 / np.sqrt(self.d_head))

        contexts = np.empty((batch, self.n_heads, 1, self.d_head),
                            dtype=q_data.dtype)
        present: list[KVPrefix] = []
        row = 0
        for s, span in enumerate(spans):
            past_k, past_v = past[s]
            self._check_kv(past_k, past_v, "past")
            past_len = past_k.shape[2]
            prefix = None
            prefix_len = 0
            if prefix_kv is not None and prefix_kv[s] is not None:
                prefix = prefix_kv[s]
                self._check_kv(prefix[0], prefix[1], "prefix")
                prefix_len = prefix[0].shape[2]
            # One buffer per sequence instead of per-row concatenation:
            # row ``i`` attends over the slice [:, :, :prefix+past+i+1, :],
            # whose per-head 2-D blocks have exactly the values *and*
            # memory layout (row stride d_head) of the freshly
            # concatenated array decode_step would build — the matmul
            # inputs, hence outputs, stay bitwise those of the
            # one-token-at-a-time path, while the O(T) copy of the past
            # is paid once per sequence instead of once per row.
            base_at = prefix_len + past_len
            total = base_at + span
            buf_k = np.empty((1, self.n_heads, total, self.d_head),
                             dtype=k_data.dtype)
            buf_v = np.empty_like(buf_k)
            if prefix is not None:
                buf_k[:, :, :prefix_len] = prefix[0].data
                buf_v[:, :, :prefix_len] = prefix[1].data
            buf_k[:, :, prefix_len:base_at] = past_k.data
            buf_v[:, :, prefix_len:base_at] = past_v.data
            buf_k[0, :, base_at:] = \
                k_data[row:row + span, :, 0, :].transpose(1, 0, 2)
            buf_v[0, :, base_at:] = \
                v_data[row:row + span, :, 0, :].transpose(1, 0, 2)
            for i in range(span):
                at = base_at + i
                attn_keys = buf_k[:, :, :at + 1]
                attn_values = buf_v[:, :, :at + 1]
                scores = np.matmul(q_data[row:row + 1],
                                   attn_keys.swapaxes(-1, -2)) * scale
                # All-visible: one new query position sees the prefix,
                # the cache, and its span predecessors (already in the
                # buffer); the inline softmax mirrors ag.softmax's exact
                # operation sequence, as in decode_step.
                scores -= scores.max(axis=-1, keepdims=True)
                np.exp(scores, out=scores)
                scores /= scores.sum(axis=-1, keepdims=True)
                np.matmul(scores, attn_values, out=contexts[row:row + 1])
                row += 1
            if prefix is None:
                # The buffer is exactly the extended cache — no copy.
                present.append((Tensor(buf_k), Tensor(buf_v)))
            else:
                present.append(
                    (Tensor(np.ascontiguousarray(buf_k[:, :, prefix_len:])),
                     Tensor(np.ascontiguousarray(buf_v[:, :, prefix_len:]))))

        merged = (contexts
                  .transpose(0, 2, 1, 3)
                  .reshape(batch, length, self.d_model))
        return self.out_proj(Tensor(merged)), present

    @staticmethod
    def _causal_mask(length: int, prefix_len: int,
                     past_len: int = 0) -> np.ndarray:
        """Boolean mask, True = blocked. Shape (T, P+T_past+T).

        Query ``i`` sits at absolute position ``past_len + i``; it sees the
        whole prefix, every cached position, and tokens up to itself.
        """
        token_part = np.triu(np.ones((length, past_len + length), dtype=bool),
                             k=past_len + 1)
        if prefix_len == 0:
            return token_part
        prefix_part = np.zeros((length, prefix_len), dtype=bool)
        return np.concatenate([prefix_part, token_part], axis=1)
