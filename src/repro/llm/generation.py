"""Autoregressive text generation for the edge-LLM stand-ins.

Matches the paper's inference settings: temperature 0.1 (near-greedy) and at
most 100 generated tokens.  Generation optionally consumes the two prompt
conditioning mechanisms (soft-prompt embeddings and per-layer KV prefixes).

Decoding is incremental by default: the prompt (soft prompt included) is
run through the model once with ``use_cache=True`` (*prefill*), and every
subsequent token is a single-position forward against the growing
:class:`~repro.llm.kv_cache.KVCache` — O(T) per step instead of re-running
the whole sequence.  ``use_cache=False`` keeps the original full-reforward
loop; both paths emit identical token ids under identical seeds.

The prefill/decode split is also public (:func:`prefill`,
:func:`decode_from`) so the serving engine can run a prompt's prefill once
and reuse it across repeated queries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ag import Tensor, cat, no_grad
from .attention import KVPrefix
from .kv_cache import KVCache
from .transformer import TinyCausalLM

__all__ = ["GenerationConfig", "PrefillState", "generate", "prefill",
           "decode_from"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling parameters (paper defaults: temperature 0.1, 100 tokens)."""

    max_new_tokens: int = 100
    temperature: float = 0.1
    seed: int = 0
    eos_id: int | None = None

    def __post_init__(self):
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")


@dataclass(frozen=True)
class PrefillState:
    """One prompt run through the model, ready to decode from.

    Reusable: :func:`decode_from` never mutates the state or its cache, so
    one prefill can seed any number of decodes (different seeds,
    temperatures, budgets).  The KV prefix the prompt was conditioned on is
    recorded here and re-attached on every decode step — callers cannot
    accidentally decode with mismatched conditioning.
    """

    cache: KVCache
    last_logits: np.ndarray   # (vocab,) logits of the final prompt position
    n_tokens: int             # real prompt tokens
    virtual_len: int          # soft-prompt rows occupying the context window
    prefix_kv: list[KVPrefix] | None = None

    @property
    def seq_len(self) -> int:
        """Positions consumed so far (virtual + real)."""
        return self.cache.seq_len


def _sample(logits: np.ndarray, temperature: float,
            rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    # float64 throughout: float32 probabilities can miss rng.choice's
    # sum-to-1 tolerance on large vocabularies.
    scaled = (logits.astype(np.float64) - logits.max()) / temperature
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def _check_room(model: TinyCausalLM, n_tokens: int, virtual_len: int) -> None:
    """Reject prompts that leave no room to generate a single token."""
    if n_tokens + virtual_len >= model.config.max_seq_len:
        raise ValueError(
            f"prompt of {n_tokens} tokens plus soft prompt of {virtual_len} "
            f"rows leaves no room to generate within "
            f"max_seq_len={model.config.max_seq_len}"
        )


def _virtual_len(soft_prompt: Tensor | np.ndarray | None) -> int:
    if soft_prompt is None:
        return 0
    data = soft_prompt.data if isinstance(soft_prompt, Tensor) else soft_prompt
    return np.asarray(data).shape[0]


def _embed_with_soft_prompt(model: TinyCausalLM, ids: np.ndarray,
                            soft_prompt: Tensor | np.ndarray) -> Tensor:
    """(1, P+T, d_model) embeddings: soft-prompt rows then token embeddings."""
    prompt = soft_prompt if isinstance(soft_prompt, Tensor) else Tensor(soft_prompt)
    token_emb = model.embed(ids[None, :])
    return cat([prompt.reshape(1, *prompt.shape), token_emb], axis=1)


def prefill(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    *,
    soft_prompt: Tensor | np.ndarray | None = None,
    prefix_kv: list[KVPrefix] | None = None,
) -> PrefillState:
    """Run the prompt once with a KV cache and return the decode-ready state.

    Raises ``ValueError`` when the prompt (plus soft-prompt rows) already
    fills the context window — there would be no room to generate.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    if token_ids.size == 0:
        raise ValueError("prefill() needs at least one prompt token")
    virtual_len = _virtual_len(soft_prompt)
    _check_room(model, token_ids.size, virtual_len)
    # Toggle train/eval only when needed, so decoding a model already in
    # eval mode writes no shared module state.  Module mode (unlike grad
    # mode) is not thread-local: callers that decode concurrently must keep
    # the model pinned to eval, as the serving engine does.
    was_training = model.training
    if was_training:
        model.eval()
    try:
        with no_grad():
            if soft_prompt is None:
                logits, cache = model(token_ids[None, :], prefix_kv=prefix_kv,
                                      use_cache=True)
            else:
                full = _embed_with_soft_prompt(model, token_ids, soft_prompt)
                logits, cache = model(embeddings=full, prefix_kv=prefix_kv,
                                      use_cache=True)
    finally:
        if was_training:
            model.train()
    return PrefillState(cache=cache, last_logits=logits.data[0, -1].copy(),
                        n_tokens=int(token_ids.size), virtual_len=virtual_len,
                        prefix_kv=prefix_kv)


def decode_from(
    model: TinyCausalLM,
    state: PrefillState,
    config: GenerationConfig = GenerationConfig(),
) -> np.ndarray:
    """Sample a continuation from a :class:`PrefillState`, one token per step.

    The KV prefix recorded at prefill time is re-attached on every step —
    it is constant conditioning, not part of the cache.  The state itself
    is left untouched (decode again for another sample).
    """
    rng = np.random.default_rng(config.seed)
    budget = model.config.max_seq_len - state.virtual_len
    total = state.n_tokens
    logits = state.last_logits
    cache = state.cache
    generated: list[int] = []
    was_training = model.training
    if was_training:
        model.eval()
    try:
        with no_grad():
            for _ in range(config.max_new_tokens):
                if total >= budget:
                    break
                if generated:
                    step_out, cache = model(
                        np.array([[generated[-1]]], dtype=np.int64),
                        prefix_kv=state.prefix_kv, past_kv=cache,
                        use_cache=True)
                    logits = step_out.data[0, -1]
                next_id = _sample(logits, config.temperature, rng)
                if config.eos_id is not None and next_id == config.eos_id:
                    break
                generated.append(next_id)
                total += 1
    finally:
        if was_training:
            model.train()
    return np.asarray(generated, dtype=np.int64)


def generate(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    config: GenerationConfig = GenerationConfig(),
    *,
    soft_prompt: Tensor | np.ndarray | None = None,
    prefix_kv: list[KVPrefix] | None = None,
    use_cache: bool = True,
) -> np.ndarray:
    """Generate a continuation of ``token_ids`` (1-D array of ids).

    Args:
        model: the language model (used in eval mode, no gradients).
        token_ids: the user-input ids.
        config: sampling parameters.
        soft_prompt: optional (P, d_model) virtual-token matrix prepended to
            the input embeddings — the OVT path of the paper.
        prefix_kv: optional per-layer KV prefixes (prefix tuning path).
        use_cache: incremental decoding (prefill once, then one-position
            steps).  ``False`` re-runs the full sequence every step; both
            paths produce identical ids under identical seeds.

    Returns:
        The generated ids only (prompt excluded), stopping at ``eos_id``.

    Raises:
        ValueError: when the prompt (plus soft-prompt rows) already fills
            the model's context window, leaving no room to generate.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    if use_cache:
        state = prefill(model, token_ids, soft_prompt=soft_prompt,
                        prefix_kv=prefix_kv)   # validates prompt and room
        return decode_from(model, state, config)
    if token_ids.size == 0:
        raise ValueError("generate() needs at least one prompt token")
    _check_room(model, token_ids.size, _virtual_len(soft_prompt))
    return _generate_uncached(model, token_ids, config,
                              soft_prompt=soft_prompt, prefix_kv=prefix_kv)


def _generate_uncached(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    config: GenerationConfig,
    *,
    soft_prompt: Tensor | np.ndarray | None,
    prefix_kv: list[KVPrefix] | None,
) -> np.ndarray:
    """Reference full-reforward loop (the pre-cache behaviour)."""
    rng = np.random.default_rng(config.seed)
    was_training = model.training
    if was_training:
        model.eval()
    prompt_len = _virtual_len(soft_prompt)
    generated: list[int] = []
    try:
        with no_grad():
            ids = token_ids.copy()
            budget = model.config.max_seq_len - prompt_len
            for _ in range(config.max_new_tokens):
                if ids.size >= budget:
                    break
                logits = _full_forward(model, ids, soft_prompt, prefix_kv)
                next_id = _sample(logits, config.temperature, rng)
                if config.eos_id is not None and next_id == config.eos_id:
                    break
                generated.append(next_id)
                ids = np.append(ids, next_id)
    finally:
        if was_training:
            model.train()
    return np.asarray(generated, dtype=np.int64)


def _full_forward(model: TinyCausalLM, ids: np.ndarray,
                  soft_prompt, prefix_kv) -> np.ndarray:
    """Logits of the final position, with optional prompt conditioning."""
    if soft_prompt is None:
        logits = model(ids[None, :], prefix_kv=prefix_kv)
    else:
        full = _embed_with_soft_prompt(model, ids, soft_prompt)
        logits = model(embeddings=full, prefix_kv=prefix_kv)
    return logits.data[0, -1]
