"""Autoregressive text generation for the edge-LLM stand-ins.

Matches the paper's inference settings: temperature 0.1 (near-greedy) and at
most 100 generated tokens.  Generation optionally consumes the two prompt
conditioning mechanisms (soft-prompt embeddings and per-layer KV prefixes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ag import Tensor, cat, no_grad
from .attention import KVPrefix
from .transformer import TinyCausalLM

__all__ = ["GenerationConfig", "generate"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling parameters (paper defaults: temperature 0.1, 100 tokens)."""

    max_new_tokens: int = 100
    temperature: float = 0.1
    seed: int = 0
    eos_id: int | None = None

    def __post_init__(self):
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")


def _sample(logits: np.ndarray, temperature: float,
            rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    scaled = (logits - logits.max()) / temperature
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def generate(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    config: GenerationConfig = GenerationConfig(),
    *,
    soft_prompt: Tensor | np.ndarray | None = None,
    prefix_kv: list[KVPrefix] | None = None,
) -> np.ndarray:
    """Generate a continuation of ``token_ids`` (1-D array of ids).

    Args:
        model: the language model (used in eval mode, no gradients).
        token_ids: the user-input ids.
        config: sampling parameters.
        soft_prompt: optional (P, d_model) virtual-token matrix prepended to
            the input embeddings — the OVT path of the paper.
        prefix_kv: optional per-layer KV prefixes (prefix tuning path).

    Returns:
        The generated ids only (prompt excluded), stopping at ``eos_id``.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    if token_ids.size == 0:
        raise ValueError("generate() needs at least one prompt token")
    rng = np.random.default_rng(config.seed)
    was_training = model.training
    model.eval()
    prompt_len = 0 if soft_prompt is None else np.asarray(
        soft_prompt.data if isinstance(soft_prompt, Tensor) else soft_prompt
    ).shape[0]
    generated: list[int] = []
    try:
        with no_grad():
            ids = token_ids.copy()
            budget = model.config.max_seq_len - prompt_len
            for _ in range(config.max_new_tokens):
                if ids.size >= budget:
                    break
                logits = _forward(model, ids, soft_prompt, prefix_kv)
                next_id = _sample(logits, config.temperature, rng)
                if config.eos_id is not None and next_id == config.eos_id:
                    break
                generated.append(next_id)
                ids = np.append(ids, next_id)
    finally:
        if was_training:
            model.train()
    return np.asarray(generated, dtype=np.int64)


def _forward(model: TinyCausalLM, ids: np.ndarray,
             soft_prompt, prefix_kv) -> np.ndarray:
    """Logits of the final position, with optional prompt conditioning."""
    if soft_prompt is None:
        logits = model(ids[None, :], prefix_kv=prefix_kv)
    else:
        prompt = soft_prompt if isinstance(soft_prompt, Tensor) else Tensor(soft_prompt)
        token_emb = model.embed(ids[None, :])
        full = cat([prompt.reshape(1, *prompt.shape), token_emb], axis=1)
        logits = model(embeddings=full, prefix_kv=prefix_kv)
    return logits.data[0, -1]
