"""Autoregressive text generation for the edge-LLM stand-ins.

Matches the paper's inference settings: temperature 0.1 (near-greedy) and at
most 100 generated tokens.  Generation optionally consumes the two prompt
conditioning mechanisms (soft-prompt embeddings and per-layer KV prefixes).

Decoding is incremental by default: the prompt (soft prompt included) is
run through the model once with ``use_cache=True`` (*prefill*), and every
subsequent token is a single-position forward against the growing
:class:`~repro.llm.kv_cache.KVCache` — O(T) per step instead of re-running
the whole sequence.  ``use_cache=False`` keeps the original full-reforward
loop; both paths emit identical token ids under identical seeds.

The prefill/decode split is also public (:func:`prefill`,
:func:`decode_from`) so the serving engine can run a prompt's prefill once
and reuse it across repeated queries.

Continuous batching builds on that split: a :class:`DecodeScheduler`
holds many in-flight generations and advances *all* of them one token per
round through a single batched forward
(:meth:`~repro.llm.transformer.TinyCausalLM.decode_round`), admitting new
sequences and retiring finished ones (EOS, token budget, context limit)
between rounds.  Every sequence's output is token-identical to decoding it
alone with :func:`decode_from` — each keeps its own compact cache, rng
stream, and sampling config — so batching changes aggregate throughput,
never answers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ag import Tensor, cat, no_grad
from .attention import KVPrefix
from .kv_cache import BatchedKVCache, KVCache
from .transformer import TinyCausalLM
from ..utils import rng_from_seed

__all__ = ["GenerationConfig", "PrefillState", "generate", "prefill",
           "decode_from", "DecodeSequence", "DecodeScheduler",
           "DecodeRoundReport", "decode_batch"]


@dataclass(frozen=True)
class GenerationConfig:
    """Sampling parameters (paper defaults: temperature 0.1, 100 tokens)."""

    max_new_tokens: int = 100
    temperature: float = 0.1
    seed: int = 0
    eos_id: int | None = None

    def __post_init__(self):
        if self.max_new_tokens <= 0:
            raise ValueError("max_new_tokens must be positive")
        if self.temperature < 0.0:
            raise ValueError("temperature must be non-negative")


@dataclass(frozen=True)
class PrefillState:
    """One prompt run through the model, ready to decode from.

    Reusable: :func:`decode_from` never mutates the state or its cache, so
    one prefill can seed any number of decodes (different seeds,
    temperatures, budgets).  The KV prefix the prompt was conditioned on is
    recorded here and re-attached on every decode step — callers cannot
    accidentally decode with mismatched conditioning.
    """

    cache: KVCache
    last_logits: np.ndarray   # (vocab,) logits of the final prompt position
    n_tokens: int             # real prompt tokens
    virtual_len: int          # soft-prompt rows occupying the context window
    prefix_kv: list[KVPrefix] | None = None

    @property
    def seq_len(self) -> int:
        """Positions consumed so far (virtual + real)."""
        return self.cache.seq_len


def _sample(logits: np.ndarray, temperature: float,
            rng: np.random.Generator) -> int:
    if temperature == 0.0:
        return int(np.argmax(logits))
    # float64 throughout: float32 probabilities can miss rng.choice's
    # sum-to-1 tolerance on large vocabularies.
    scaled = (logits.astype(np.float64) - logits.max()) / temperature
    probs = np.exp(scaled)
    probs /= probs.sum()
    return int(rng.choice(probs.size, p=probs))


def _check_room(model: TinyCausalLM, n_tokens: int, virtual_len: int) -> None:
    """Reject prompts that leave no room to generate a single token."""
    if n_tokens + virtual_len >= model.config.max_seq_len:
        raise ValueError(
            f"prompt of {n_tokens} tokens plus soft prompt of {virtual_len} "
            f"rows leaves no room to generate within "
            f"max_seq_len={model.config.max_seq_len}"
        )


def _virtual_len(soft_prompt: Tensor | np.ndarray | None) -> int:
    if soft_prompt is None:
        return 0
    data = soft_prompt.data if isinstance(soft_prompt, Tensor) else soft_prompt
    return np.asarray(data).shape[0]


def _embed_with_soft_prompt(model: TinyCausalLM, ids: np.ndarray,
                            soft_prompt: Tensor | np.ndarray) -> Tensor:
    """(1, P+T, d_model) embeddings: soft-prompt rows then token embeddings."""
    prompt = soft_prompt if isinstance(soft_prompt, Tensor) else Tensor(soft_prompt)
    token_emb = model.embed(ids[None, :])
    return cat([prompt.reshape(1, *prompt.shape), token_emb], axis=1)


def prefill(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    *,
    soft_prompt: Tensor | np.ndarray | None = None,
    prefix_kv: list[KVPrefix] | None = None,
) -> PrefillState:
    """Run the prompt once with a KV cache and return the decode-ready state.

    Raises ``ValueError`` when the prompt (plus soft-prompt rows) already
    fills the context window — there would be no room to generate.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    if token_ids.size == 0:
        raise ValueError("prefill() needs at least one prompt token")
    virtual_len = _virtual_len(soft_prompt)
    _check_room(model, token_ids.size, virtual_len)
    # Toggle train/eval only when needed, so decoding a model already in
    # eval mode writes no shared module state.  Module mode (unlike grad
    # mode) is not thread-local: callers that decode concurrently must keep
    # the model pinned to eval, as the serving engine does.
    was_training = model.training
    if was_training:
        model.eval()
    try:
        with no_grad():
            if soft_prompt is None:
                logits, cache = model(token_ids[None, :], prefix_kv=prefix_kv,
                                      use_cache=True)
            else:
                full = _embed_with_soft_prompt(model, token_ids, soft_prompt)
                logits, cache = model(embeddings=full, prefix_kv=prefix_kv,
                                      use_cache=True)
    finally:
        if was_training:
            model.train()
    return PrefillState(cache=cache, last_logits=logits.data[0, -1].copy(),
                        n_tokens=int(token_ids.size), virtual_len=virtual_len,
                        prefix_kv=prefix_kv)


def decode_from(
    model: TinyCausalLM,
    state: PrefillState,
    config: GenerationConfig = GenerationConfig(),
) -> np.ndarray:
    """Sample a continuation from a :class:`PrefillState`, one token per step.

    The KV prefix recorded at prefill time is re-attached on every step —
    it is constant conditioning, not part of the cache.  The state itself
    is left untouched (decode again for another sample).
    """
    rng = rng_from_seed(config.seed)
    budget = model.config.max_seq_len - state.virtual_len
    total = state.n_tokens
    logits = state.last_logits
    cache = state.cache
    generated: list[int] = []
    was_training = model.training
    if was_training:
        model.eval()
    try:
        with no_grad():
            for _ in range(config.max_new_tokens):
                if total >= budget:
                    break
                if generated:
                    step_out, cache = model(
                        np.array([[generated[-1]]], dtype=np.int64),
                        prefix_kv=state.prefix_kv, past_kv=cache,
                        use_cache=True)
                    logits = step_out.data[0, -1]
                next_id = _sample(logits, config.temperature, rng)
                if config.eos_id is not None and next_id == config.eos_id:
                    break
                generated.append(next_id)
                total += 1
    finally:
        if was_training:
            model.train()
    return np.asarray(generated, dtype=np.int64)


def generate(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    config: GenerationConfig = GenerationConfig(),
    *,
    soft_prompt: Tensor | np.ndarray | None = None,
    prefix_kv: list[KVPrefix] | None = None,
    use_cache: bool = True,
) -> np.ndarray:
    """Generate a continuation of ``token_ids`` (1-D array of ids).

    Args:
        model: the language model (used in eval mode, no gradients).
        token_ids: the user-input ids.
        config: sampling parameters.
        soft_prompt: optional (P, d_model) virtual-token matrix prepended to
            the input embeddings — the OVT path of the paper.
        prefix_kv: optional per-layer KV prefixes (prefix tuning path).
        use_cache: incremental decoding (prefill once, then one-position
            steps).  ``False`` re-runs the full sequence every step; both
            paths produce identical ids under identical seeds.

    Returns:
        The generated ids only (prompt excluded), stopping at ``eos_id``.

    Raises:
        ValueError: when the prompt (plus soft-prompt rows) already fills
            the model's context window, leaving no room to generate.
    """
    token_ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
    if use_cache:
        state = prefill(model, token_ids, soft_prompt=soft_prompt,
                        prefix_kv=prefix_kv)   # validates prompt and room
        return decode_from(model, state, config)
    if token_ids.size == 0:
        raise ValueError("generate() needs at least one prompt token")
    _check_room(model, token_ids.size, _virtual_len(soft_prompt))
    return _generate_uncached(model, token_ids, config,
                              soft_prompt=soft_prompt, prefix_kv=prefix_kv)


def _generate_uncached(
    model: TinyCausalLM,
    token_ids: np.ndarray,
    config: GenerationConfig,
    *,
    soft_prompt: Tensor | np.ndarray | None,
    prefix_kv: list[KVPrefix] | None,
) -> np.ndarray:
    """Reference full-reforward loop (the pre-cache behaviour)."""
    rng = rng_from_seed(config.seed)
    was_training = model.training
    if was_training:
        model.eval()
    prompt_len = _virtual_len(soft_prompt)
    generated: list[int] = []
    try:
        with no_grad():
            ids = token_ids.copy()
            budget = model.config.max_seq_len - prompt_len
            for _ in range(config.max_new_tokens):
                if ids.size >= budget:
                    break
                logits = _full_forward(model, ids, soft_prompt, prefix_kv)
                next_id = _sample(logits, config.temperature, rng)
                if config.eos_id is not None and next_id == config.eos_id:
                    break
                generated.append(next_id)
                ids = np.append(ids, next_id)
    finally:
        if was_training:
            model.train()
    return np.asarray(generated, dtype=np.int64)


def _full_forward(model: TinyCausalLM, ids: np.ndarray,
                  soft_prompt, prefix_kv) -> np.ndarray:
    """Logits of the final position, with optional prompt conditioning."""
    if soft_prompt is None:
        logits = model(ids[None, :], prefix_kv=prefix_kv)
    else:
        full = _embed_with_soft_prompt(model, ids, soft_prompt)
        logits = model(embeddings=full, prefix_kv=prefix_kv)
    return logits.data[0, -1]


# ----------------------------------------------------------------------
# Continuous-batching decode
# ----------------------------------------------------------------------
class DecodeSequence:
    """One in-flight generation inside a :class:`DecodeScheduler`.

    Self-contained by design: it references only the (immutable) prefill
    state and owns its growing cache, rng stream, and sampling config, so
    whoever admitted it (e.g. a serving session) can disappear mid-flight
    without affecting this or any other sequence in the batch.
    """

    __slots__ = ("state", "config", "cache", "generated", "finished",
                 "finish_reason", "deadline", "prompt_ids", "draft_cache",
                 "draft_len", "_rng", "_total", "_budget")

    def __init__(self, state: PrefillState, config: GenerationConfig,
                 budget: int, deadline: float | None = None,
                 prompt_ids: np.ndarray | None = None):
        self.state = state
        self.config = config
        self.cache = state.cache
        self.generated: list[int] = []
        self.finished = False
        self.finish_reason: str | None = None
        # Absolute time.monotonic() timestamp after which the sequence is
        # retired ("deadline") instead of entering another round.  None (the
        # default) never expires, so deadline-free serving stays exactly the
        # deterministic reference path.
        self.deadline = deadline
        # The raw prompt token ids, when the admitter knows them.  The
        # KV cache only stores keys/values, so a draft model cannot
        # reconstruct the context from it; speculative decoding needs the
        # ids to feed its own (smaller) model.  None disables drafting
        # for this sequence — it still decodes normally.
        self.prompt_ids = (None if prompt_ids is None else
                           np.asarray(prompt_ids, dtype=np.int64).reshape(-1))
        # Draft-model decode state, owned by SpeculativeDecoder: a KVCache
        # over the draft model covering the first ``draft_len`` tokens of
        # ``context_ids()``.
        self.draft_cache: KVCache | None = None
        self.draft_len = 0
        self._rng = rng_from_seed(config.seed)
        self._total = state.n_tokens
        self._budget = budget

    @property
    def n_generated(self) -> int:
        return len(self.generated)

    def token_ids(self) -> np.ndarray:
        """The tokens generated so far (all of them, once finished)."""
        return np.asarray(self.generated, dtype=np.int64)

    def context_ids(self) -> np.ndarray:
        """Prompt plus generated ids — the draft model's view of the text.

        Only available when the sequence was admitted with ``prompt_ids``;
        soft-prompt rows and KV prefixes are deliberately absent (they are
        base-model conditioning the draft model cannot consume).
        """
        if self.prompt_ids is None:
            raise ValueError("sequence was admitted without prompt_ids")
        return np.concatenate([
            self.prompt_ids, np.asarray(self.generated, dtype=np.int64)])

    # -- internal ------------------------------------------------------
    def _finish(self, reason: str) -> None:
        self.finished = True
        self.finish_reason = reason

    def _check_limits(self) -> None:
        """Retire on the same boundaries the sequential loop breaks at."""
        if len(self.generated) >= self.config.max_new_tokens:
            self._finish("length")
        elif self._total >= self._budget:
            self._finish("context")

    def _absorb(self, logits: np.ndarray) -> int:
        """Sample one token from ``logits``; returns 1 if a token landed."""
        next_id = _sample(logits, self.config.temperature, self._rng)
        if self.config.eos_id is not None and next_id == self.config.eos_id:
            self._finish("eos")
            return 0
        self.generated.append(next_id)
        self._total += 1
        self._check_limits()
        return 1


@dataclass(frozen=True)
class DecodeRoundReport:
    """What one continuous-batching round did (serving telemetry)."""

    tokens_emitted: int   # tokens appended across all sequences
    n_active: int         # sequences that entered the round
    n_retired: int        # sequences that finished during the round
    n_expired: int = 0    # sequences retired on their deadline, pre-forward


class DecodeScheduler:
    """Continuous-batching decoder over one model.

    Sequences are :meth:`admit`-ted with their own
    :class:`GenerationConfig` and advance together, one token per
    :meth:`decode_round`, through a single batched forward; finished
    sequences retire between rounds and new ones may be admitted at any
    time ("in-flight batching").  Each sequence's tokens are identical to
    what :func:`decode_from` would produce from the same state — greedy
    and seeded sampling alike — because the batched forward is bit-exact
    per sequence and every sequence keeps a private rng stream.

    A :class:`~repro.llm.speculative.SpeculativeDecoder` may be attached
    at construction: rounds then draft several tokens per sequence with a
    small model and verify them in one forward of ``model``
    (token-identical for greedy sequences, plain rounds for the rest).
    ``speculative=None`` is the sequential-reference path, byte-for-byte
    the pre-speculation behaviour.
    """

    def __init__(self, model: TinyCausalLM, *, speculative=None):
        self.model = model
        self.speculative = speculative
        self._active: list[DecodeSequence] = []
        self.rounds = 0
        self.tokens_emitted = 0
        self.occupancy_sum = 0   # sum over rounds of sequences per round
        self.forwards = 0        # base-model decode forwards (verify included)
        self.spec_rounds = 0     # rounds in which at least one token drafted
        self.draft_forwards = 0  # draft-model forwards (prefill/catch-up/step)
        self.draft_proposed = 0  # tokens proposed by the draft model
        self.draft_accepted = 0  # proposed tokens the base model confirmed

    # ------------------------------------------------------------------
    @property
    def n_active(self) -> int:
        return len(self._active)

    @property
    def has_active(self) -> bool:
        return bool(self._active)

    def admit(self, state: PrefillState,
              config: GenerationConfig = GenerationConfig(),
              *, deadline: float | None = None,
              prompt_ids: np.ndarray | None = None,
              ) -> DecodeSequence:
        """Add one prefilled sequence to the in-flight batch.

        The first token is sampled right here from the prefill logits (no
        forward needed), exactly as :func:`decode_from` does; a sequence
        that immediately hits EOS or a limit retires without ever joining
        a round.  ``deadline`` (a ``time.monotonic()`` timestamp) bounds
        how long the sequence may stay in flight: a round that starts
        after the deadline retires it with whatever tokens it has, the
        serving building block for per-request latency SLOs.
        ``prompt_ids`` (the raw prompt tokens) makes the sequence eligible
        for speculative drafting when the scheduler has a
        :class:`~repro.llm.speculative.SpeculativeDecoder`; it is inert
        otherwise.
        """
        if state.cache.batch_size != 1:
            raise ValueError(
                f"admit() takes single-sequence prefills, got batch "
                f"{state.cache.batch_size}"
            )
        budget = self.model.config.max_seq_len - state.virtual_len
        sequence = DecodeSequence(state, config, budget, deadline,
                                  prompt_ids=prompt_ids)
        if sequence._total >= budget:
            sequence._finish("context")   # prefill() normally rejects this
        else:
            sequence._absorb(state.last_logits)
        if not sequence.finished:
            self._active.append(sequence)
        return sequence

    def cancel(self, sequence: DecodeSequence) -> bool:
        """Cleanly retire a sequence mid-flight; its tokens so far remain.

        Returns True if the sequence was active.  The batch simply shrinks
        by one slot — remaining sequences are unaffected (their caches and
        rng streams are private).
        """
        try:
            self._active.remove(sequence)
        except ValueError:
            return False
        sequence._finish("cancelled")
        return True

    # ------------------------------------------------------------------
    def expire_deadlines(self, now: float | None = None) -> int:
        """Retire every in-flight sequence whose deadline has passed.

        Expired sequences finish with reason ``"deadline"`` and keep the
        tokens generated so far (a clean prefix of the full answer).
        Returns the number retired; sequences without deadlines are never
        touched, so this is free for deterministic workloads.
        """
        if not any(seq.deadline is not None for seq in self._active):
            return 0
        if now is None:
            now = time.monotonic()
        expired = [seq for seq in self._active
                   if seq.deadline is not None and now >= seq.deadline]
        for seq in expired:
            seq._finish("deadline")
        if expired:
            self._active = [seq for seq in self._active if not seq.finished]
        return len(expired)

    def decode_round(self) -> DecodeRoundReport:
        """Advance every in-flight sequence by at least one token.

        Sequences past their deadline are retired *before* the forward
        (they neither occupy a batch slot nor consume compute this round).
        With a speculative decoder attached the round drafts and verifies
        several tokens per sequence; otherwise it is exactly one batched
        single-token forward.
        """
        n_expired = self.expire_deadlines()
        if not self._active:
            return DecodeRoundReport(0, 0, n_expired, n_expired=n_expired)
        if self.speculative is not None:
            return self.speculative.advance(self, n_expired)
        return self._plain_round(n_expired)

    def _plain_round(self, n_expired: int) -> DecodeRoundReport:
        """The sequential-reference round: one token per sequence."""
        active = self._active
        model = self.model
        tokens = np.array([seq.generated[-1] for seq in active],
                          dtype=np.int64)
        batched = BatchedKVCache.stack([seq.cache for seq in active])
        prefixes = None
        if any(seq.state.prefix_kv is not None for seq in active):
            prefixes = [seq.state.prefix_kv for seq in active]
        was_training = model.training
        if was_training:
            model.eval()
        try:
            with no_grad():
                logits, extended = model.decode_round(tokens, batched,
                                                      prefix_kvs=prefixes)
        finally:
            if was_training:
                model.train()
        emitted = 0
        logits_data = logits.data
        for i, (seq, cache) in enumerate(zip(active, extended.split())):
            seq.cache = cache
            emitted += seq._absorb(logits_data[i, -1])
        self._active = [seq for seq in active if not seq.finished]
        retired = len(active) - len(self._active)
        self.rounds += 1
        self.forwards += 1
        self.tokens_emitted += emitted
        self.occupancy_sum += len(active)
        return DecodeRoundReport(tokens_emitted=emitted,
                                 n_active=len(active),
                                 n_retired=retired + n_expired,
                                 n_expired=n_expired)

    def run(self) -> None:
        """Round until every admitted sequence has retired."""
        while self._active:
            self.decode_round()


def decode_batch(
    model: TinyCausalLM,
    states: Sequence[PrefillState],
    configs: GenerationConfig | Sequence[GenerationConfig] | None = None,
) -> list[np.ndarray]:
    """Decode many prefilled sequences together via continuous batching.

    ``configs`` may be one config for all states or one per state.  The
    result order matches ``states``, and each entry is token-identical to
    ``decode_from(model, state, config)`` run on its own.
    """
    states = list(states)
    if configs is None:
        configs = [GenerationConfig()] * len(states)
    elif isinstance(configs, GenerationConfig):
        configs = [configs] * len(states)
    else:
        configs = list(configs)
    if len(configs) != len(states):
        raise ValueError(
            f"{len(configs)} configs for {len(states)} states"
        )
    scheduler = DecodeScheduler(model)
    sequences = [scheduler.admit(state, config)
                 for state, config in zip(states, configs)]
    scheduler.run()
    return [sequence.token_ids() for sequence in sequences]
