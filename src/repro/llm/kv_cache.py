"""Per-layer key/value caches for incremental decoding.

A :class:`KVCache` holds, for every transformer layer, the keys and values
of all positions processed so far, shaped ``(batch, heads, T, d_head)``.
Caches are value-immutable: each forward pass with ``use_cache=True``
returns a *new* cache whose tensors extend the old one (the old cache and
its tensors are never mutated), so a prefill cache can be shared safely
between many decodes — the basis of the serving engine's prefill reuse.

A :class:`BatchedKVCache` groups many single-sequence caches so one decode
round can advance them together even though their cached lengths are
ragged (different users' prompts, admitted at different times).  Because
single-sequence caches are value-immutable, :meth:`BatchedKVCache.stack`
and :meth:`BatchedKVCache.split` are O(batch) reference operations — no
tensor is ever copied or padded.  Keeping each sequence's rows compact
(rather than right-padding to the longest and masking) is what lets the
batched decode round reproduce the sequential path bit-for-bit: padded
reductions change numpy's summation tree and drift by ulps.

Trained KV *prefixes* (prefix tuning / P-tuning v2) are deliberately not
stored here: they are constant conditioning re-attached by the attention
layer on every step, while the cache only accumulates real positions.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ag import Tensor
from .attention import KVPrefix

__all__ = ["KVCache", "BatchedKVCache"]


class KVCache:
    """Immutable-by-convention container of one ``(key, value)`` pair per layer."""

    __slots__ = ("_layers",)

    def __init__(self, layers: list[KVPrefix]):
        if not layers:
            raise ValueError("KVCache needs at least one layer")
        lengths = {kv[0].shape[2] for kv in layers}
        if len(lengths) != 1:
            raise ValueError(
                f"all layers must cache the same number of positions, "
                f"got lengths {sorted(lengths)}"
            )
        self._layers = list(layers)

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._layers)

    @property
    def seq_len(self) -> int:
        """Number of positions cached (soft-prompt rows count as positions)."""
        return self._layers[0][0].shape[2]

    @property
    def batch_size(self) -> int:
        return self._layers[0][0].shape[0]

    def layer(self, index: int) -> KVPrefix:
        """The cached ``(key, value)`` pair of one layer."""
        return self._layers[index]

    def memory_bytes(self) -> int:
        """Approximate cache footprint (for serving telemetry)."""
        return sum(kv[0].data.nbytes + kv[1].data.nbytes
                   for kv in self._layers)

    def truncate(self, length: int, *, copy: bool = True) -> "KVCache":
        """A new cache covering only the first ``length`` positions.

        This is the rollback primitive of speculative decoding: a verify
        forward extends the cache with every *drafted* position, and the
        rejected suffix is discarded by truncating back to the accepted
        length.  The original cache is untouched (value-immutability is
        the contract everything else relies on).  With ``copy=True`` the
        kept rows are copied so the truncated cache never pins the
        rejected tensors alive; ``copy=False`` returns zero-copy views
        for hot paths that drop the source within a round anyway (the
        rejected tail is at most a few positions, so pinning it costs
        almost nothing).
        """
        if not 1 <= length <= self.seq_len:
            raise ValueError(
                f"cannot truncate a {self.seq_len}-position cache to "
                f"{length} positions"
            )
        if length == self.seq_len:
            return self
        if copy:
            return KVCache([
                (Tensor(np.ascontiguousarray(k.data[:, :, :length, :])),
                 Tensor(np.ascontiguousarray(v.data[:, :, :length, :])))
                for k, v in self._layers
            ])
        return KVCache([
            (Tensor(k.data[:, :, :length, :]),
             Tensor(v.data[:, :, :length, :]))
            for k, v in self._layers
        ])

    def __len__(self) -> int:
        return self.n_layers

    def __repr__(self) -> str:
        return (f"KVCache(n_layers={self.n_layers}, seq_len={self.seq_len}, "
                f"batch={self.batch_size})")


class BatchedKVCache:
    """A ragged batch of single-sequence caches advancing in lockstep.

    Each member cache must have ``batch_size == 1`` and the same number of
    layers; their sequence lengths may differ (that is the point — a decode
    round serves users whose prompts were different lengths and who were
    admitted at different times).  The container is as immutable as its
    members: a decode round builds a *new* :class:`BatchedKVCache` from the
    extended per-sequence caches.
    """

    __slots__ = ("_caches",)

    def __init__(self, caches: Sequence[KVCache]):
        caches = list(caches)
        if not caches:
            raise ValueError("BatchedKVCache needs at least one sequence")
        layer_counts = {cache.n_layers for cache in caches}
        if len(layer_counts) != 1:
            raise ValueError(
                f"all sequences must cache the same number of layers, "
                f"got {sorted(layer_counts)}"
            )
        for cache in caches:
            if cache.batch_size != 1:
                raise ValueError(
                    f"BatchedKVCache members must be single-sequence "
                    f"(batch 1), got batch {cache.batch_size}"
                )
        self._caches = caches

    # ------------------------------------------------------------------
    @classmethod
    def stack(cls, caches: Sequence[KVCache]) -> "BatchedKVCache":
        """Group single-sequence caches into one ragged batch (no copies)."""
        return cls(caches)

    def split(self) -> list[KVCache]:
        """The member caches, in batch order (no copies)."""
        return list(self._caches)

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return len(self._caches)

    @property
    def n_layers(self) -> int:
        return self._caches[0].n_layers

    @property
    def lengths(self) -> np.ndarray:
        """Cached positions per sequence (soft-prompt rows included)."""
        return np.array([cache.seq_len for cache in self._caches],
                        dtype=np.int64)

    def sequence(self, index: int) -> KVCache:
        """One sequence's cache."""
        return self._caches[index]

    def layer_slices(self, index: int) -> list[KVPrefix]:
        """One layer's cached ``(key, value)`` pair for every sequence."""
        return [cache.layer(index) for cache in self._caches]

    def memory_bytes(self) -> int:
        """Aggregate KV footprint (for serving telemetry)."""
        return sum(cache.memory_bytes() for cache in self._caches)

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:
        return (f"BatchedKVCache(batch={self.batch_size}, "
                f"n_layers={self.n_layers}, "
                f"lengths={self.lengths.tolist()})")
