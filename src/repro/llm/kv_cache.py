"""Per-layer key/value cache for incremental decoding.

A :class:`KVCache` holds, for every transformer layer, the keys and values
of all positions processed so far, shaped ``(batch, heads, T, d_head)``.
Caches are value-immutable: each forward pass with ``use_cache=True``
returns a *new* cache whose tensors extend the old one (the old cache and
its tensors are never mutated), so a prefill cache can be shared safely
between many decodes — the basis of the serving engine's prefill reuse.

Trained KV *prefixes* (prefix tuning / P-tuning v2) are deliberately not
stored here: they are constant conditioning re-attached by the attention
layer on every step, while the cache only accumulates real positions.
"""

from __future__ import annotations

from .attention import KVPrefix

__all__ = ["KVCache"]


class KVCache:
    """Immutable-by-convention container of one ``(key, value)`` pair per layer."""

    __slots__ = ("_layers",)

    def __init__(self, layers: list[KVPrefix]):
        if not layers:
            raise ValueError("KVCache needs at least one layer")
        lengths = {kv[0].shape[2] for kv in layers}
        if len(lengths) != 1:
            raise ValueError(
                f"all layers must cache the same number of positions, "
                f"got lengths {sorted(lengths)}"
            )
        self._layers = list(layers)

    # ------------------------------------------------------------------
    @property
    def n_layers(self) -> int:
        return len(self._layers)

    @property
    def seq_len(self) -> int:
        """Number of positions cached (soft-prompt rows count as positions)."""
        return self._layers[0][0].shape[2]

    @property
    def batch_size(self) -> int:
        return self._layers[0][0].shape[0]

    def layer(self, index: int) -> KVPrefix:
        """The cached ``(key, value)`` pair of one layer."""
        return self._layers[index]

    def memory_bytes(self) -> int:
        """Approximate cache footprint (for serving telemetry)."""
        return sum(kv[0].data.nbytes + kv[1].data.nbytes
                   for kv in self._layers)

    def __len__(self) -> int:
        return self.n_layers

    def __repr__(self) -> str:
        return (f"KVCache(n_layers={self.n_layers}, seq_len={self.seq_len}, "
                f"batch={self.batch_size})")
