"""Whitespace tokenizer over the closed synthetic vocabulary.

The reproduction uses a synthetic language (see :mod:`repro.data.corpus`),
so a word-level tokenizer is lossless and keeps sequences short, which is
what the edge-LLM stand-ins need.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = ["Tokenizer", "PAD", "BOS", "EOS", "UNK", "SEP"]

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"
SEP = "<sep>"

_SPECIALS = (PAD, BOS, EOS, UNK, SEP)


class Tokenizer:
    """Bidirectional word <-> id mapping with reserved special tokens."""

    def __init__(self, vocabulary: Sequence[str]):
        words = list(dict.fromkeys(vocabulary))  # preserve order, dedupe
        overlap = set(words) & set(_SPECIALS)
        if overlap:
            raise ValueError(f"vocabulary reuses special tokens: {sorted(overlap)}")
        self._id_to_word = list(_SPECIALS) + words
        self._word_to_id = {w: i for i, w in enumerate(self._id_to_word)}

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return len(self._id_to_word)

    @property
    def pad_id(self) -> int:
        return self._word_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self._word_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._word_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self._word_to_id[UNK]

    @property
    def sep_id(self) -> int:
        return self._word_to_id[SEP]

    # ------------------------------------------------------------------
    def token_id(self, word: str) -> int:
        """Id of a single known word (raises for unknown words)."""
        try:
            return self._word_to_id[word]
        except KeyError:
            raise KeyError(f"word {word!r} not in vocabulary") from None

    def __contains__(self, word: str) -> bool:
        return word in self._word_to_id

    def encode(self, text: str, *, add_bos: bool = False,
               add_eos: bool = False) -> np.ndarray:
        """Encode whitespace-separated ``text`` to an int64 id array."""
        ids: list[int] = []
        if add_bos:
            ids.append(self.bos_id)
        for word in text.split():
            ids.append(self._word_to_id.get(word, self.unk_id))
        if add_eos:
            ids.append(self.eos_id)
        return np.asarray(ids, dtype=np.int64)

    def decode(self, ids: Iterable[int], *, skip_special: bool = True) -> str:
        """Decode an id sequence back to space-joined words."""
        words = []
        for i in ids:
            word = self._id_to_word[int(i)]
            if skip_special and word in _SPECIALS:
                continue
            words.append(word)
        return " ".join(words)
