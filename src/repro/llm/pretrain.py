"""Causal language-model pretraining on the synthetic corpus.

The paper uses off-the-shelf pretrained checkpoints (Gemma-2B, Phi-2,
Mistral-7B-GPTQ).  Here each registry model is pretrained briefly on the
synthetic corpus so that prompt tuning has real signal to exploit: the base
model learns the corpus grammar and the context -> label co-occurrence
statistics that the LaMP-style tasks are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..ag import Adam, LinearWarmupDecay, clip_grad_norm, cross_entropy
from .transformer import TinyCausalLM
from ..utils import rng_from_seed

__all__ = ["PretrainConfig", "pretrain_lm"]


@dataclass(frozen=True)
class PretrainConfig:
    """Pretraining loop hyper-parameters."""

    steps: int = 450
    batch_size: int = 8
    seq_len: int = 32
    lr: float = 3e-3
    warmup_fraction: float = 0.1
    grad_clip: float = 1.0
    seed: int = 0

    def __post_init__(self):
        if self.steps <= 0 or self.batch_size <= 0 or self.seq_len <= 1:
            raise ValueError("steps/batch_size must be positive, seq_len > 1")


def _sample_windows(stream: np.ndarray, count: int, seq_len: int,
                    rng: np.random.Generator) -> np.ndarray:
    if stream.size < seq_len + 1:
        raise ValueError(
            f"corpus of {stream.size} tokens too short for seq_len={seq_len}"
        )
    starts = rng.integers(0, stream.size - seq_len - 1, size=count)
    return np.stack([stream[s:s + seq_len + 1] for s in starts])

def pretrain_lm(model: TinyCausalLM, token_stream: np.ndarray,
                config: PretrainConfig = PretrainConfig()) -> list[float]:
    """Train ``model`` in place on next-token prediction; return loss curve."""
    token_stream = np.asarray(token_stream, dtype=np.int64).reshape(-1)
    rng = rng_from_seed(config.seed)
    optimizer = Adam(model.parameters(), lr=config.lr)
    scheduler = LinearWarmupDecay(
        optimizer,
        warmup_steps=max(1, int(config.steps * config.warmup_fraction)),
        total_steps=config.steps,
    )
    losses: list[float] = []
    model.train()
    for _ in range(config.steps):
        windows = _sample_windows(stream=token_stream, count=config.batch_size,
                                  seq_len=config.seq_len, rng=rng)
        inputs, targets = windows[:, :-1], windows[:, 1:]
        optimizer.zero_grad()
        logits = model(inputs)
        vocab = logits.shape[-1]
        loss = cross_entropy(logits.reshape(-1, vocab), targets.reshape(-1))
        loss.backward()
        clip_grad_norm(model.parameters(), config.grad_clip)
        optimizer.step()
        scheduler.step()
        losses.append(float(loss.data))
    model.eval()
    return losses
