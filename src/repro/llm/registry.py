"""Edge-LLM model zoo.

The paper evaluates three models that fit on edge devices: Gemma-2B, Phi-2
and Mistral-7B-GPTQ.  Their stand-ins here differ in width, depth, seed and
(for the GPTQ entry) weight precision, so every experiment still spans three
genuinely different frozen base models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..utils import Registry
from .pretrain import PretrainConfig, pretrain_lm
from .quantization import quantize_model_weights
from .transformer import LMConfig, TinyCausalLM

__all__ = ["EdgeModelSpec", "MODEL_REGISTRY", "available_models",
           "build_model", "load_pretrained_model", "clear_model_cache",
           "register_model"]


@dataclass(frozen=True)
class EdgeModelSpec:
    """Architecture + precision recipe for one edge-LLM stand-in."""

    name: str
    paper_model: str
    d_model: int
    n_heads: int
    n_layers: int
    d_ff: int
    quantize_bits: int | None = None
    base_seed: int = 0

    def lm_config(self, vocab_size: int, max_seq_len: int = 256) -> LMConfig:
        return LMConfig(vocab_size=vocab_size, d_model=self.d_model,
                        n_heads=self.n_heads, n_layers=self.n_layers,
                        d_ff=self.d_ff, max_seq_len=max_seq_len)


def _validate_model(name: str, spec: EdgeModelSpec) -> None:
    if not isinstance(spec, EdgeModelSpec):
        raise TypeError(f"model {name!r} must be an EdgeModelSpec")


# Model zoo (a Registry, so new architectures plug in at runtime).
MODEL_REGISTRY: Registry[EdgeModelSpec] = Registry("model",
                                                   validate=_validate_model)
for _spec in (
    EdgeModelSpec(
        name="gemma-2b-sim", paper_model="Gemma-2B",
        d_model=64, n_heads=4, n_layers=3, d_ff=160, base_seed=101,
    ),
    EdgeModelSpec(
        name="mistral-7b-gptq-sim", paper_model="Mistral-7B-GPTQ",
        d_model=72, n_heads=4, n_layers=4, d_ff=192,
        quantize_bits=4, base_seed=202,
    ),
    EdgeModelSpec(
        name="phi-2-sim", paper_model="Phi-2",
        d_model=56, n_heads=4, n_layers=3, d_ff=144, base_seed=303,
    ),
):
    MODEL_REGISTRY.register(_spec.name, _spec)
del _spec


def register_model(spec: EdgeModelSpec, *, overwrite: bool = False) -> EdgeModelSpec:
    """Add an architecture to the zoo under its spec name."""
    return MODEL_REGISTRY.register(spec.name, spec, overwrite=overwrite)

# Cache of pretrained weights keyed by (model name, corpus fingerprint,
# seed, steps); stores state dicts so callers always get a fresh object.
_PRETRAINED_CACHE: dict[tuple, dict[str, np.ndarray]] = {}


def available_models() -> list[str]:
    """Names accepted by :func:`build_model` / :func:`load_pretrained_model`."""
    return sorted(MODEL_REGISTRY)


def build_model(name: str, vocab_size: int, *, seed: int | None = None,
                max_seq_len: int = 256) -> TinyCausalLM:
    """Instantiate an un-pretrained model from the registry."""
    try:
        spec = MODEL_REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    model_seed = spec.base_seed if seed is None else seed
    return TinyCausalLM(spec.lm_config(vocab_size, max_seq_len), seed=model_seed)


def load_pretrained_model(
    name: str,
    token_stream: np.ndarray,
    vocab_size: int,
    *,
    seed: int = 0,
    pretrain: PretrainConfig | None = None,
    max_seq_len: int = 256,
) -> TinyCausalLM:
    """Build, pretrain (memoised) and optionally quantize a registry model.

    Pretraining the same (model, corpus, seed) twice reuses cached weights,
    which keeps the large experiment grids affordable.
    """
    spec = MODEL_REGISTRY[name]  # KeyError surfaces the same as build_model
    config = pretrain or PretrainConfig(seed=seed)
    token_stream = np.asarray(token_stream, dtype=np.int64).reshape(-1)
    fingerprint = (name, vocab_size, max_seq_len, int(token_stream[:64].sum()),
                   token_stream.size, seed, config.steps, config.lr)
    model = build_model(name, vocab_size, max_seq_len=max_seq_len)
    if fingerprint in _PRETRAINED_CACHE:
        model.load_state_dict(_PRETRAINED_CACHE[fingerprint])
    else:
        pretrain_lm(model, token_stream, config)
        if spec.quantize_bits is not None:
            quantize_model_weights(model, bits=spec.quantize_bits)
        _PRETRAINED_CACHE[fingerprint] = model.state_dict()
    model.eval()
    return model


def clear_model_cache() -> None:
    """Drop memoised pretrained weights (tests use this)."""
    _PRETRAINED_CACHE.clear()
