"""Decoder-only transformer language model (the edge-LLM stand-in).

The model exposes two hooks the prompt-tuning methods rely on:

* ``forward(embeddings=...)`` — callers may pass pre-built input embeddings,
  which is how soft prompts are prepended (vanilla PT, DEPT);
* ``forward(prefix_kv=[...])`` — per-layer key/value prefixes (prefix
  tuning, P-tuning v2).

Incremental decoding adds a third hook: ``forward(past_kv=cache,
use_cache=True)`` processes only the *new* positions against a
:class:`~repro.llm.kv_cache.KVCache` of everything already seen (position
embeddings are offset by the cached length) and returns the extended cache
alongside the logits.

Cross-sequence batched decoding adds a fourth: :meth:`TinyCausalLM.
decode_round` advances *many independent sequences* by one token in a
single forward.  Each sequence carries its own ragged-length cache (a
:class:`~repro.llm.kv_cache.BatchedKVCache`) and its own position offset;
the dense sublayers run as one stacked forward while attention composes
per-sequence compact caches, so every row of the returned logits is
bit-identical to stepping that sequence alone through ``forward``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..ag import Embedding, Dropout, LayerNorm, Linear, Module, Tensor, gelu
from .attention import KVPrefix, MultiHeadSelfAttention
from .kv_cache import BatchedKVCache, KVCache
from ..utils import rng_from_seed

__all__ = ["LMConfig", "TransformerBlock", "TinyCausalLM"]


@dataclass(frozen=True)
class LMConfig:
    """Architecture hyper-parameters for :class:`TinyCausalLM`."""

    vocab_size: int
    d_model: int = 64
    n_heads: int = 4
    n_layers: int = 3
    d_ff: int = 128
    max_seq_len: int = 256
    dropout: float = 0.0

    def __post_init__(self):
        if self.vocab_size <= 0:
            raise ValueError("vocab_size must be positive")
        if self.d_model % self.n_heads:
            raise ValueError("d_model must be divisible by n_heads")
        if self.max_seq_len <= 0:
            raise ValueError("max_seq_len must be positive")


class TransformerBlock(Module):
    """Pre-norm transformer block: LN -> attention -> LN -> GELU MLP."""

    def __init__(self, config: LMConfig, *, rng: np.random.Generator):
        super().__init__()
        self.ln1 = LayerNorm(config.d_model)
        self.attn = MultiHeadSelfAttention(config.d_model, config.n_heads, rng=rng)
        self.ln2 = LayerNorm(config.d_model)
        self.ff1 = Linear(config.d_model, config.d_ff, rng=rng)
        self.ff2 = Linear(config.d_ff, config.d_model, rng=rng)
        self.drop = Dropout(config.dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        prefix_kv: KVPrefix | None = None,
        past_kv: KVPrefix | None = None,
        use_cache: bool = False,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor | tuple[Tensor, KVPrefix]:
        attended = self.attn(self.ln1(x), prefix_kv=prefix_kv,
                             past_kv=past_kv, use_cache=use_cache,
                             key_padding_mask=key_padding_mask)
        present = None
        if use_cache:
            attended, present = attended
        x = x + attended
        x = x + self.drop(self.ff2(gelu(self.ff1(self.ln2(x)))))
        if use_cache:
            return x, present
        return x

    def decode_step(
        self,
        x: Tensor,
        past: Sequence[KVPrefix],
        prefix_kv: Sequence[KVPrefix | None] | None = None,
    ) -> tuple[Tensor, list[KVPrefix]]:
        """One batched decode round through this block (see attention)."""
        attended, present = self.attn.decode_step(self.ln1(x), past,
                                                  prefix_kv)
        x = x + attended
        x = x + self.drop(self.ff2(gelu(self.ff1(self.ln2(x)))))
        return x, present

    def decode_span_step(
        self,
        x: Tensor,
        past: Sequence[KVPrefix],
        spans: Sequence[int],
        prefix_kv: Sequence[KVPrefix | None] | None = None,
    ) -> tuple[Tensor, list[KVPrefix]]:
        """One ragged multi-position decode round (see attention)."""
        attended, present = self.attn.decode_span_step(self.ln1(x), past,
                                                       spans, prefix_kv)
        x = x + attended
        x = x + self.drop(self.ff2(gelu(self.ff1(self.ln2(x)))))
        return x, present


class TinyCausalLM(Module):
    """A small decoder-only LM with soft-prompt and KV-prefix hooks."""

    def __init__(self, config: LMConfig, *, seed: int = 0):
        super().__init__()
        rng = rng_from_seed(seed)
        self.config = config
        self.token_embedding = Embedding(config.vocab_size, config.d_model, rng=rng)
        self.position_embedding = Embedding(config.max_seq_len, config.d_model, rng=rng)
        self.blocks = [TransformerBlock(config, rng=rng)
                       for _ in range(config.n_layers)]
        self.ln_final = LayerNorm(config.d_model)
        self.lm_head = Linear(config.d_model, config.vocab_size, bias=False, rng=rng)

    # ------------------------------------------------------------------
    def embed(self, token_ids: np.ndarray) -> Tensor:
        """Token embeddings without positions, shape (..., d_model)."""
        return self.token_embedding(np.asarray(token_ids))

    def embed_text_vector(self, token_ids: np.ndarray) -> np.ndarray:
        """Mean-pooled embedding vector used for buffer/query embeddings.

        This is the ``E(x)`` of the paper's framework figure: the raw
        embedding-layer representation of a data sample, used by
        representative selection and by retrieval.
        """
        ids = np.asarray(token_ids).reshape(-1)
        if ids.size == 0:
            raise ValueError("cannot embed an empty token sequence")
        return self.token_embedding.weight.data[ids].mean(axis=0).copy()

    # ------------------------------------------------------------------
    def forward(
        self,
        token_ids: np.ndarray | None = None,
        *,
        embeddings: Tensor | None = None,
        prefix_kv: list[KVPrefix] | None = None,
        past_kv: KVCache | None = None,
        use_cache: bool = False,
        key_padding_mask: np.ndarray | None = None,
    ) -> Tensor | tuple[Tensor, KVCache]:
        """Return logits of shape (batch, T, vocab).

        Exactly one of ``token_ids`` (batch, T) or ``embeddings``
        (batch, T, d_model) must be given.  ``prefix_kv`` carries one
        (key, value) pair per layer, or None.

        ``past_kv`` is a :class:`KVCache` of previously processed positions:
        the inputs are treated as positions ``past_kv.seq_len ..`` of the
        logical sequence (position embeddings offset accordingly).  With
        ``use_cache=True`` the return value is ``(logits, cache)`` where
        ``cache`` extends ``past_kv`` with the new positions.

        ``key_padding_mask`` is a boolean (batch, T_past + T) array, True at
        right-padded positions of a batched ragged input: padded keys get
        zero attention weight in every layer, so real positions compute
        exactly what they would in an unpadded per-sample forward.
        """
        if (token_ids is None) == (embeddings is None):
            raise ValueError("pass exactly one of token_ids or embeddings")
        if embeddings is None:
            token_ids = np.asarray(token_ids)
            if token_ids.ndim == 1:
                token_ids = token_ids[None, :]
            embeddings = self.token_embedding(token_ids)
        batch, length, _ = embeddings.shape
        past_len = 0
        if past_kv is not None:
            if past_kv.n_layers != len(self.blocks):
                raise ValueError(
                    f"past_kv has {past_kv.n_layers} layers for "
                    f"{len(self.blocks)} blocks"
                )
            past_len = past_kv.seq_len
        if past_len + length > self.config.max_seq_len:
            raise ValueError(
                f"sequence of {past_len + length} exceeds "
                f"max_seq_len={self.config.max_seq_len}"
            )
        if prefix_kv is not None and len(prefix_kv) != len(self.blocks):
            raise ValueError(
                f"prefix_kv has {len(prefix_kv)} entries for "
                f"{len(self.blocks)} layers"
            )
        if key_padding_mask is not None:
            key_padding_mask = np.asarray(key_padding_mask, dtype=bool)
            if key_padding_mask.shape != (batch, past_len + length):
                raise ValueError(
                    f"key_padding_mask shaped {key_padding_mask.shape} "
                    f"incompatible with ({batch}, {past_len + length}) inputs"
                )
        positions = np.arange(past_len, past_len + length)
        x = embeddings + self.position_embedding(positions)
        present: list[KVPrefix] = []
        for i, block in enumerate(self.blocks):
            x = block(
                x,
                prefix_kv=None if prefix_kv is None else prefix_kv[i],
                past_kv=None if past_kv is None else past_kv.layer(i),
                use_cache=use_cache,
                key_padding_mask=key_padding_mask,
            )
            if use_cache:
                x, layer_kv = x
                present.append(layer_kv)
        logits = self.lm_head(self.ln_final(x))
        if use_cache:
            return logits, KVCache(present)
        return logits

    # ------------------------------------------------------------------
    def decode_round(
        self,
        token_ids: np.ndarray,
        cache: BatchedKVCache,
        *,
        prefix_kvs: Sequence[list[KVPrefix] | None] | None = None,
    ) -> tuple[Tensor, BatchedKVCache]:
        """Advance ``B`` independent sequences by one token in one forward.

        Args:
            token_ids: (B,) newest token id of each sequence.
            cache: each sequence's cached positions (ragged lengths).
            prefix_kvs: optional per-sequence trained KV prefixes — entry
                ``i`` is the ``prefix_kv`` list sequence ``i`` was
                prefetched with (or None), re-attached every round exactly
                as ``forward`` does.

        Returns:
            ``(logits, cache)`` where ``logits`` is (B, 1, vocab) and the
            new cache extends every sequence by one position.  Row ``i``
            is bit-identical to a single-sequence ``forward`` step with
            ``past_kv=cache.sequence(i)``, which is what makes batched
            serving answers token-identical to sequential ones.
        """
        ids = np.asarray(token_ids, dtype=np.int64).reshape(-1)
        if cache.n_layers != len(self.blocks):
            raise ValueError(
                f"cache has {cache.n_layers} layers for "
                f"{len(self.blocks)} blocks"
            )
        if ids.size != cache.batch_size:
            raise ValueError(
                f"{ids.size} tokens for {cache.batch_size} cached sequences"
            )
        if prefix_kvs is not None:
            if len(prefix_kvs) != cache.batch_size:
                raise ValueError(
                    f"{len(prefix_kvs)} prefix entries for "
                    f"{cache.batch_size} sequences"
                )
            for prefix in prefix_kvs:
                if prefix is not None and len(prefix) != len(self.blocks):
                    raise ValueError(
                        f"prefix_kv has {len(prefix)} entries for "
                        f"{len(self.blocks)} layers"
                    )
        lengths = cache.lengths
        if int(lengths.max()) + 1 > self.config.max_seq_len:
            raise ValueError(
                f"a sequence of {int(lengths.max()) + 1} exceeds "
                f"max_seq_len={self.config.max_seq_len}"
            )
        # Each sequence's new token sits at its own next position.
        x = (self.token_embedding(ids[:, None])
             + self.position_embedding(lengths[:, None]))
        present_layers: list[list[KVPrefix]] = []
        for i, block in enumerate(self.blocks):
            prefix_i = None
            if prefix_kvs is not None:
                prefix_i = [None if p is None else p[i] for p in prefix_kvs]
            x, layer_present = block.decode_step(x, cache.layer_slices(i),
                                                 prefix_i)
            present_layers.append(layer_present)
        logits = self.lm_head(self.ln_final(x))
        new_caches = [
            KVCache([layer[s] for layer in present_layers])
            for s in range(cache.batch_size)
        ]
        return logits, BatchedKVCache(new_caches)

    # ------------------------------------------------------------------
    def decode_span(
        self,
        token_spans: Sequence[np.ndarray],
        cache: BatchedKVCache,
        *,
        prefix_kvs: Sequence[list[KVPrefix] | None] | None = None,
    ) -> tuple[Tensor, BatchedKVCache]:
        """Advance ``B`` sequences by a ragged number of tokens each.

        The verify forward of speculative decoding: sequence ``s`` feeds
        ``token_spans[s]`` (its last accepted token followed by the
        drafted continuation) and gets back one logits row per fed token.
        Every new position occupies its own batch-of-one slice, so each
        row of the result is bit-identical to advancing that sequence
        one token at a time through :meth:`decode_round` — speculative
        acceptance decisions therefore reproduce sequential greedy
        decoding exactly instead of approximately.

        Args:
            token_spans: per-sequence 1-D arrays of token ids, each of
                length >= 1 (length 1 degenerates to a plain
                :meth:`decode_round` row).
            cache: each sequence's cached positions (ragged lengths).
            prefix_kvs: optional per-sequence trained KV prefixes,
                re-attached every round exactly as ``forward`` does.

        Returns:
            ``(logits, cache)`` where ``logits`` is (sum(spans), 1,
            vocab) — rows in sequence order, positions within a sequence
            contiguous — and the new cache extends sequence ``s`` by
            ``len(token_spans[s])`` positions.  The caller rolls back
            rejected suffixes with :meth:`KVCache.truncate
            <repro.llm.kv_cache.KVCache.truncate>`.
        """
        spans = [np.asarray(span, dtype=np.int64).reshape(-1)
                 for span in token_spans]
        if any(span.size == 0 for span in spans):
            raise ValueError("every token span must hold at least one token")
        if cache.n_layers != len(self.blocks):
            raise ValueError(
                f"cache has {cache.n_layers} layers for "
                f"{len(self.blocks)} blocks"
            )
        if len(spans) != cache.batch_size:
            raise ValueError(
                f"{len(spans)} token spans for "
                f"{cache.batch_size} cached sequences"
            )
        if prefix_kvs is not None:
            if len(prefix_kvs) != cache.batch_size:
                raise ValueError(
                    f"{len(prefix_kvs)} prefix entries for "
                    f"{cache.batch_size} sequences"
                )
            for prefix in prefix_kvs:
                if prefix is not None and len(prefix) != len(self.blocks):
                    raise ValueError(
                        f"prefix_kv has {len(prefix)} entries for "
                        f"{len(self.blocks)} layers"
                    )
        lengths = cache.lengths
        span_lens = [span.size for span in spans]
        for s, span_len in enumerate(span_lens):
            if int(lengths[s]) + span_len > self.config.max_seq_len:
                raise ValueError(
                    f"a sequence of {int(lengths[s]) + span_len} exceeds "
                    f"max_seq_len={self.config.max_seq_len}"
                )
        ids = np.concatenate(spans)
        positions = np.concatenate([
            np.arange(lengths[s], lengths[s] + span_lens[s], dtype=np.int64)
            for s in range(cache.batch_size)
        ])
        x = (self.token_embedding(ids[:, None])
             + self.position_embedding(positions[:, None]))
        present_layers: list[list[KVPrefix]] = []
        for i, block in enumerate(self.blocks):
            prefix_i = None
            if prefix_kvs is not None:
                prefix_i = [None if p is None else p[i] for p in prefix_kvs]
            x, layer_present = block.decode_span_step(
                x, cache.layer_slices(i), span_lens, prefix_i)
            present_layers.append(layer_present)
        logits = self.lm_head(self.ln_final(x))
        new_caches = [
            KVCache([layer[s] for layer in present_layers])
            for s in range(cache.batch_size)
        ]
        return logits, BatchedKVCache(new_caches)
