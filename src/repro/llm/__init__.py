"""Edge-LLM substrate: tokenizer, transformer, generation, model zoo."""

from .attention import KVPrefix, MultiHeadSelfAttention
from .generation import (
    DecodeRoundReport,
    DecodeScheduler,
    DecodeSequence,
    GenerationConfig,
    PrefillState,
    decode_batch,
    decode_from,
    generate,
    prefill,
)
from .kv_cache import BatchedKVCache, KVCache
from .pretrain import PretrainConfig, pretrain_lm
from .quantization import (
    QUANTIZATION_BITS,
    quantization_error,
    quantization_stats,
    quantize_array,
    quantize_model,
    quantize_model_weights,
)
from .registry import (
    MODEL_REGISTRY,
    EdgeModelSpec,
    available_models,
    build_model,
    clear_model_cache,
    load_pretrained_model,
    register_model,
)
from .speculative import (
    CONFIDENCE_POLICIES,
    SpeculativeDecoder,
    build_draft_model,
    distill_draft,
    draft_spec,
)
from .tokenizer import BOS, EOS, PAD, SEP, UNK, Tokenizer
from .transformer import LMConfig, TinyCausalLM, TransformerBlock

__all__ = [
    "Tokenizer", "PAD", "BOS", "EOS", "UNK", "SEP",
    "MultiHeadSelfAttention", "KVPrefix", "KVCache", "BatchedKVCache",
    "LMConfig", "TransformerBlock", "TinyCausalLM",
    "GenerationConfig", "PrefillState", "generate", "prefill", "decode_from",
    "DecodeSequence", "DecodeScheduler", "DecodeRoundReport", "decode_batch",
    "PretrainConfig", "pretrain_lm",
    "quantize_array", "quantize_model_weights", "quantization_error",
    "QUANTIZATION_BITS", "quantize_model", "quantization_stats",
    "EdgeModelSpec", "MODEL_REGISTRY", "available_models",
    "build_model", "load_pretrained_model", "clear_model_cache",
    "register_model",
    "CONFIDENCE_POLICIES", "SpeculativeDecoder", "draft_spec",
    "build_draft_model", "distill_draft",
]
