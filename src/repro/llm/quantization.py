"""Post-training weight quantization (GPTQ-style stand-in).

The paper's third model is Mistral-7B-GPTQ — a 4-bit group-quantized
checkpoint.  We reproduce the *property that matters* for the experiments:
the base model's weights are frozen at reduced precision while prompt tuning
adapts only the continuous virtual tokens.  Quantization here is symmetric
per-group round-to-nearest, the same numeric format GPTQ emits (GPTQ's
Hessian-based rounding order only changes *which* values round up, not the
format).
"""

from __future__ import annotations

import numpy as np

from ..ag import Linear, Module

__all__ = ["quantize_array", "quantize_model_weights", "quantization_error"]


def quantize_array(weights: np.ndarray, bits: int = 4,
                   group_size: int = 32) -> np.ndarray:
    """Symmetric per-group quantization of a 2-D weight matrix.

    Groups run along the input dimension (rows), each with its own scale,
    mirroring GPTQ's per-group scales.

    Returns the dequantized float32 array (values on the quantized grid).
    """
    if bits < 2 or bits > 8:
        raise ValueError(f"bits must be in [2, 8], got {bits}")
    if group_size <= 0:
        raise ValueError("group_size must be positive")
    weights = np.asarray(weights, dtype=np.float32)
    if weights.ndim != 2:
        raise ValueError("quantize_array expects a 2-D matrix")
    q_max = 2 ** (bits - 1) - 1
    out = np.empty_like(weights)
    rows = weights.shape[0]
    for start in range(0, rows, group_size):
        block = weights[start:start + group_size]
        scale = np.abs(block).max() / q_max
        if scale == 0.0:
            out[start:start + group_size] = 0.0
            continue
        quantized = np.clip(np.round(block / scale), -q_max - 1, q_max)
        out[start:start + group_size] = quantized * scale
    return out


def quantize_model_weights(model: Module, bits: int = 4,
                           group_size: int = 32) -> int:
    """Quantize every Linear weight of ``model`` in place.

    Embeddings and LayerNorm affine parameters stay full precision, the
    convention GPTQ checkpoints follow.  Returns the number of Linear layers
    quantized.
    """
    count = 0
    for module in _iter_modules(model):
        if isinstance(module, Linear):
            module.weight.data = quantize_array(module.weight.data, bits,
                                                group_size)
            count += 1
    return count


def quantization_error(weights: np.ndarray, bits: int = 4,
                       group_size: int = 32) -> float:
    """RMS error introduced by quantizing ``weights``."""
    quantized = quantize_array(weights, bits, group_size)
    return float(np.sqrt(np.mean((quantized - weights) ** 2)))


def _iter_modules(module: Module):
    yield module
    for value in vars(module).values():
        if isinstance(value, Module):
            yield from _iter_modules(value)
        elif isinstance(value, (list, tuple)):
            for item in value:
                if isinstance(item, Module):
                    yield from _iter_modules(item)
