"""Post-training weight quantization for the frozen base model.

The paper's third model is Mistral-7B-GPTQ — a 4-bit group-quantized
checkpoint.  We reproduce the *property that matters* for the experiments:
the base model's weights are frozen at reduced precision while prompt tuning
adapts only the continuous virtual tokens.  Quantization here is symmetric
per-group round-to-nearest, the same numeric format GPTQ emits (GPTQ's
Hessian-based rounding order only changes *which* values round up, not the
format).

Two execution modes share that grid:

- :func:`quantize_model_weights` is fake-quant: weights are snapped to the
  grid but stay float32, so the model runs the unmodified dense GEMMs.
  The registry uses this to make ``mistral-7b-gptq-sim`` behave like a
  GPTQ checkpoint numerically.
- :func:`quantize_model` is the real weight-quantized inference path: it
  replaces every dense sublayer :class:`~repro.ag.Linear` with a
  :class:`~repro.ag.QuantizedLinear` storing packed int8/int4 codes plus
  per-group scales, evaluated by a fused dequant-matmul kernel that never
  materializes the float32 weight matrix.  Embeddings and LayerNorm stay
  float in both modes (GPTQ convention).
"""

from __future__ import annotations

import numpy as np

from ..ag import Linear, Module, QuantizedLinear, iter_modules, quantize_groups

__all__ = [
    "QUANTIZATION_BITS",
    "quantize_array",
    "quantize_model_weights",
    "quantize_model",
    "quantization_error",
    "quantization_stats",
]

#: ``FrameworkConfig.base_quantization`` values and the bit width each means.
QUANTIZATION_BITS = {"int8": 8, "int4": 4}


def quantize_array(weights: np.ndarray, bits: int = 4,
                   group_size: int = 32) -> np.ndarray:
    """Symmetric per-group quantization of a 2-D weight matrix.

    Groups run along the input dimension (rows), each with its own scale,
    mirroring GPTQ's per-group scales.

    Returns the dequantized float32 array (values on the quantized grid).
    """
    weights = np.asarray(weights, dtype=np.float32)
    codes, scales = quantize_groups(weights, bits, group_size)
    row_scales = np.repeat(scales, group_size)[:weights.shape[0]]
    return codes.astype(np.float32) * row_scales[:, None]


def quantize_model_weights(model: Module, bits: int = 4,
                           group_size: int = 32) -> int:
    """Snap every Linear weight of ``model`` to the quantized grid, in place.

    Fake-quant: the weights stay float32 and the dense GEMMs keep running.
    Embeddings and LayerNorm affine parameters stay full precision, the
    convention GPTQ checkpoints follow.  Shared (tied) submodules are
    visited once, so their weights are not double-quantized.  Returns the
    number of Linear layers quantized.
    """
    count = 0
    for module in iter_modules(model):
        if isinstance(module, Linear):
            module.weight.data = quantize_array(module.weight.data, bits,
                                                group_size)
            count += 1
    return count


def quantize_model(model: Module, mode: str, group_size: int = 32) -> int:
    """Convert every dense :class:`Linear` of ``model`` to the packed path.

    ``mode`` is ``"int8"`` or ``"int4"`` (a ``FrameworkConfig``
    ``base_quantization`` value).  Each Linear reachable from ``model`` —
    through attributes, containers, and dicts, deduplicated by identity so
    tied layers convert once — is replaced in place by a
    :class:`~repro.ag.QuantizedLinear`; embeddings and LayerNorm stay
    float.  Idempotent: layers already quantized with the same bits and
    group size are left alone, while a bits/group_size mismatch raises
    ``ValueError`` (re-quantizing already-rounded weights would silently
    compound error).  Returns the number of layers converted this call.
    """
    if mode not in QUANTIZATION_BITS:
        raise ValueError(
            f"unknown quantization mode {mode!r}; "
            f"expected one of {sorted(QUANTIZATION_BITS)}")
    bits = QUANTIZATION_BITS[mode]
    replacements: dict[int, QuantizedLinear] = {}

    def convert(value):
        if isinstance(value, QuantizedLinear):
            if value.bits != bits or value.group_size != group_size:
                raise ValueError(
                    f"model already quantized with bits={value.bits} "
                    f"group_size={value.group_size}; cannot re-quantize to "
                    f"bits={bits} group_size={group_size}")
            return value
        if isinstance(value, Linear):
            replaced = replacements.get(id(value))
            if replaced is None:
                replaced = QuantizedLinear.from_linear(
                    value, bits=bits, group_size=group_size)
                replacements[id(value)] = replaced
            return replaced
        return None

    for module in list(iter_modules(model)):
        if isinstance(module, (Linear, QuantizedLinear)):
            continue
        for name, value in vars(module).items():
            replaced = convert(value)
            if replaced is not None:
                setattr(module, name, replaced)
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    replaced = convert(item)
                    if replaced is not None:
                        value[i] = replaced
            elif isinstance(value, tuple):
                items = [convert(item) or item for item in value]
                if any(isinstance(item, QuantizedLinear) for item in items):
                    setattr(module, name, tuple(items))
            elif isinstance(value, dict):
                for key, item in value.items():
                    replaced = convert(item)
                    if replaced is not None:
                        value[key] = replaced
    return len(replacements)


def quantization_error(weights: np.ndarray, bits: int = 4,
                       group_size: int = 32) -> float:
    """RMS error introduced by quantizing ``weights``."""
    quantized = quantize_array(weights, bits, group_size)
    return float(np.sqrt(np.mean((quantized - weights) ** 2)))


def quantization_stats(model: Module) -> dict[str, int]:
    """Resident-weight accounting for a (possibly) quantized model.

    Returns ``quantized_layers`` (count of :class:`QuantizedLinear`
    modules), ``weight_bytes`` (bytes the quantized weights + scales
    actually occupy), and ``weight_bytes_saved`` (dense float32 bytes
    minus that) — the keys the serving engine surfaces in ``stats()``.
    A float model reports zeros.
    """
    layers = 0
    resident = 0
    dense = 0
    for module in iter_modules(model):
        if isinstance(module, QuantizedLinear):
            layers += 1
            resident += module.weight_nbytes
            dense += module.dense_nbytes
    return {
        "quantized_layers": layers,
        "weight_bytes": resident,
        "weight_bytes_saved": dense - resident,
    }
