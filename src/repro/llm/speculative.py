"""Speculative draft-verify decoding (ROADMAP item 1).

The continuous-batching round advances every sequence by exactly one
token per base-model forward.  Speculative decoding breaks that coupling:
a *draft* model — a shallower/narrower :class:`TinyCausalLM` sharing the
tokenizer, typically built by :func:`build_draft_model` and distilled on
base-model output by :func:`distill_draft` — proposes up to ``k`` tokens
per sequence per round, and the base model verifies all of them in **one**
ragged forward (:meth:`TinyCausalLM.decode_span`).  Accepted tokens cost
a fraction of a forward each; the first mismatch is repaired for free,
because the verify logits at the mismatching position are exactly the
logits greedy decoding needed anyway.

Token-identity, not approximation
---------------------------------
For greedy sequences (``temperature == 0``) the output is *bit-for-bit*
the sequential reference: every verify logits row is computed as its own
batch-of-one slice over that sequence's compact cache (see
``decode_span``), so the accept/reject comparison reproduces exactly the
tokens ``DecodeScheduler`` would have emitted one round at a time.  The
draft model only ever chooses *which* positions get pre-computed — never
what token is emitted.  Sampled sequences (``temperature > 0``) and
sequences admitted without ``prompt_ids`` fall back to a plain
single-token row inside the same round, private rng streams untouched.

Confidence policies
-------------------
How many tokens to draft is a per-sequence, per-step decision made by a
*confidence policy* — a function of the draft model's logits registered
in :data:`CONFIDENCE_POLICIES` (max-prob, entropy, temperature-scaled,
top-k aggregate, after CECOFramework's F1/F2 confidence strategies).
Drafting continues while the policy's confidence stays at or above the
decoder's threshold, up to ``max_draft`` and the sequence's remaining
token budget.

Cache accounting
----------------
The verify forward extends each sequence's base-model cache with every
fed position; the rejected suffix is rolled back with
:meth:`KVCache.truncate`, landing on exactly the cache the sequential
path would hold.  The draft model keeps its own per-sequence cache
(``DecodeSequence.draft_cache``) over the raw token stream, truncated to
the accepted prefix after every round and caught up at the start of the
next.

The draft fast path
-------------------
Because the draft only chooses *which* tokens to pre-compute, its
forwards need to be deterministic but not bit-identical to the serving
model's per-row reference path.  :class:`_FastDraft` exploits that: it
runs the draft's weights through a plain-numpy, fully vectorised
inference loop (padded batched attention, no autograd graph), which is
several times cheaper than ``decode_round`` at the batch sizes drafting
sees.  Token-identity of the *output* is untouched — the base model's
verify forward still runs the bit-exact ``decode_span``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ag import QuantizedLinear, Tensor, no_grad
from ..utils import Registry
from .generation import (DecodeRoundReport, DecodeScheduler, DecodeSequence,
                         GenerationConfig, generate)
from .kv_cache import BatchedKVCache, KVCache
from .pretrain import PretrainConfig, pretrain_lm
from .registry import (EdgeModelSpec, MODEL_REGISTRY, build_model,
                       register_model)
from .transformer import TinyCausalLM

__all__ = ["CONFIDENCE_POLICIES", "SpeculativeDecoder", "draft_spec",
           "build_draft_model", "distill_draft", "max_prob_confidence",
           "entropy_confidence", "temperature_confidence",
           "top_k_confidence"]


# ----------------------------------------------------------------------
# Confidence policies
# ----------------------------------------------------------------------
CONFIDENCE_POLICIES: Registry = Registry("confidence policy")


def _softmax64(logits: np.ndarray) -> np.ndarray:
    """Probabilities in float64 (confidence is a heuristic, not a hot path)."""
    scaled = logits.astype(np.float64) - float(logits.max())
    probs = np.exp(scaled)
    probs /= probs.sum()
    return probs


@CONFIDENCE_POLICIES.register("max-prob")
def max_prob_confidence(logits: np.ndarray, **_params) -> float:
    """Probability mass on the argmax token (CECO F1)."""
    return float(_softmax64(logits).max())


@CONFIDENCE_POLICIES.register("entropy")
def entropy_confidence(logits: np.ndarray, **_params) -> float:
    """1 - normalized entropy: 1.0 for a one-hot, 0.0 for uniform."""
    probs = _softmax64(logits)
    nonzero = probs[probs > 0.0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    return 1.0 - entropy / float(np.log(probs.size))


@CONFIDENCE_POLICIES.register("temperature")
def temperature_confidence(logits: np.ndarray, *, temperature: float = 2.0,
                           **_params) -> float:
    """Max probability after temperature flattening — a harsher max-prob.

    Dividing logits by ``temperature > 1`` flattens the distribution, so
    only sharply peaked draft distributions keep a high max; near-ties
    are punished harder than raw max-prob punishes them.
    """
    if temperature <= 0.0:
        raise ValueError("temperature must be positive")
    return float(_softmax64(logits / np.float64(temperature)).max())


@CONFIDENCE_POLICIES.register("top-k")
def top_k_confidence(logits: np.ndarray, *, k: int = 4, **_params) -> float:
    """Aggregate mass of the top-k tokens, scaled by the leader's share.

    High when the distribution concentrates on a few candidates *and*
    the leader dominates them (CECO F2's aggregate variant): the top-k
    mass times the fraction of it held by the argmax.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    probs = _softmax64(logits)
    top = np.sort(probs)[-int(k):]
    mass = float(top.sum())
    return mass * (float(top[-1]) / mass)


# ----------------------------------------------------------------------
# Draft model construction and distillation
# ----------------------------------------------------------------------
def draft_spec(base: EdgeModelSpec) -> EdgeModelSpec:
    """A roughly half-width, half-depth spec derived from ``base``.

    Width is halved to the nearest multiple of ``n_heads`` (head count is
    kept, so attention shapes stay valid); depth and FF width are halved
    with a floor of one layer.  The seed is offset so draft weights never
    coincide with base weights.
    """
    d_model = max(base.n_heads,
                  (base.d_model // 2 // base.n_heads) * base.n_heads)
    return EdgeModelSpec(
        name=f"{base.name}-draft",
        paper_model=f"{base.paper_model} (draft)",
        d_model=d_model,
        n_heads=base.n_heads,
        n_layers=max(1, base.n_layers // 2),
        d_ff=max(base.n_heads, base.d_ff // 2),
        quantize_bits=None,
        base_seed=base.base_seed + 1,
    )


def build_draft_model(base_name: str, vocab_size: int, *,
                      seed: int | None = None,
                      max_seq_len: int = 256) -> TinyCausalLM:
    """Build (and register) the draft companion of a registry model.

    The derived spec is registered as ``"{base_name}-draft"`` so the rest
    of the zoo machinery (``available_models``, ``load_pretrained_model``)
    sees it like any other architecture; re-building refreshes the entry.
    """
    spec = draft_spec(MODEL_REGISTRY[base_name])
    register_model(spec, overwrite=True)
    return build_model(spec.name, vocab_size, seed=seed,
                       max_seq_len=max_seq_len)


def distill_draft(
    draft_model: TinyCausalLM,
    base_model: TinyCausalLM,
    prompts: Sequence[np.ndarray],
    *,
    max_new_tokens: int = 32,
    pretrain: PretrainConfig | None = None,
) -> list[float]:
    """Train the draft to imitate the base model's greedy continuations.

    Acceptance rate — not language quality — is what pays for drafting,
    so the draft is trained on exactly the distribution it must predict:
    the base model's own greedy output from representative prompts.  Each
    prompt is continued greedily by the base model, prompt and
    continuation are concatenated into one token stream, and the draft is
    pretrained on next-token prediction over it.  Returns the loss curve.
    """
    pieces: list[np.ndarray] = []
    config = GenerationConfig(max_new_tokens=max_new_tokens, temperature=0.0)
    for prompt in prompts:
        ids = np.asarray(prompt, dtype=np.int64).reshape(-1)
        continuation = generate(base_model, ids, config)
        pieces.append(ids)
        if continuation.size:
            pieces.append(continuation)
    stream = np.concatenate(pieces)
    return pretrain_lm(draft_model, stream, pretrain or PretrainConfig())


# ----------------------------------------------------------------------
# The draft fast path
# ----------------------------------------------------------------------
_SQRT_2_OVER_PI = np.float32(np.sqrt(2.0 / np.pi))
_GELU_COEFF = np.float32(0.044715)
_NEG_INF = np.float32(-1e9)


def _gelu(x: np.ndarray) -> np.ndarray:
    """GPT-2 tanh-approximation GELU (same formula as :func:`ag.gelu`)."""
    inner = _SQRT_2_OVER_PI * (x + _GELU_COEFF * (x * x * x))
    return 0.5 * x * (1.0 + np.tanh(inner))


def _layer_norm(x: np.ndarray, layer) -> np.ndarray:
    """Numpy mirror of :class:`ag.LayerNorm` in eval mode."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered * (var + layer.eps) ** -0.5
    return normed * layer.weight.data + layer.bias.data


def _affine(layer, x: np.ndarray) -> np.ndarray:
    """``x @ W + b`` on raw arrays for a dense or weight-quantized Linear.

    The draft model may have been converted to :class:`ag.QuantizedLinear`
    by the engine (quantizing the draft too is safe: proposals only steer,
    the base verify decides every emitted token); the fused kernel is the
    layer's own ``affine_numpy``.  ``bias`` may be None (the lm_head).
    """
    if isinstance(layer, QuantizedLinear):
        return layer.affine_numpy(x)
    out = x @ layer.weight.data
    if layer.bias is not None:
        out = out + layer.bias.data
    return out


def _softmax_inplace(scores: np.ndarray) -> np.ndarray:
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return scores


class _FastDraft:
    """Vectorised numpy inference over a draft :class:`TinyCausalLM`.

    Proposals only need to be *deterministic* — the base model's verify
    forward decides every emitted token — so this path trades the
    serving model's per-row bit-exact attention for padded whole-batch
    matmuls and skips the autograd graph entirely.  Weights are read
    from the live module on every call, so distilling the draft after
    constructing the decoder Just Works.

    Caches are ordinary :class:`KVCache` objects (batch 1), which keeps
    ``truncate``-based rollback identical to the base model's.
    """

    __slots__ = ("model",)

    def __init__(self, model: TinyCausalLM):
        self.model = model

    # -- single sequence: prefill or ragged catch-up -------------------
    def extend(self, ids: np.ndarray,
               cache: KVCache | None) -> tuple[np.ndarray, KVCache]:
        """Feed ``ids`` on top of ``cache``; return (last logits, cache).

        Handles both the first-contact prefill (``cache is None``) and
        the per-round catch-up over the rejected-then-repaired span;
        positions within ``ids`` attend causally.
        """
        model = self.model
        ids = np.asarray(ids, dtype=np.int64).reshape(-1)
        past_len = 0 if cache is None else cache.seq_len
        length = ids.size
        x = (model.token_embedding.weight.data[ids]
             + model.position_embedding.weight.data[past_len:past_len + length])
        layers: list[tuple[Tensor, Tensor]] = []
        for index, block in enumerate(model.blocks):
            attn = block.attn
            n_heads, d_head = attn.n_heads, attn.d_head
            h = _layer_norm(x, block.ln1)
            q = _affine(attn.q_proj, h)
            k = _affine(attn.k_proj, h)
            v = _affine(attn.v_proj, h)
            q = q.reshape(length, n_heads, d_head).transpose(1, 0, 2)
            k = k.reshape(length, n_heads, d_head).transpose(1, 0, 2)
            v = v.reshape(length, n_heads, d_head).transpose(1, 0, 2)
            if cache is not None:
                past_k, past_v = cache.layer(index)
                k = np.concatenate([past_k.data[0], k], axis=1)
                v = np.concatenate([past_v.data[0], v], axis=1)
            layers.append((Tensor(k[None]), Tensor(v[None])))
            scale = np.float32(1.0 / np.sqrt(d_head))
            scores = np.matmul(q, k.swapaxes(-1, -2)) * scale
            if length > 1:
                blocked = np.triu(
                    np.ones((length, past_len + length), dtype=bool),
                    k=past_len + 1)
                scores = np.where(blocked, _NEG_INF, scores)
            context = np.matmul(_softmax_inplace(scores), v)
            merged = context.transpose(1, 0, 2).reshape(length,
                                                        n_heads * d_head)
            x = x + _affine(attn.out_proj, merged)
            h = _layer_norm(x, block.ln2)
            x = x + _affine(block.ff2, _gelu(_affine(block.ff1, h)))
        final = _layer_norm(x[-1:], model.ln_final)
        logits = _affine(model.lm_head, final)[0]
        return logits, KVCache(layers)

    # -- whole batch: the proposal loop --------------------------------
    def begin_round(self, caches: Sequence[KVCache],
                    max_steps: int) -> "_DraftRound":
        """Open padded K/V buffers over ``caches`` for up to ``max_steps``
        decode steps per sequence (see :class:`_DraftRound`)."""
        return _DraftRound(self.model, caches, max_steps)


class _DraftRound:
    """Padded whole-batch K/V buffers for one round's proposal loop.

    Built once per speculative round: every sequence's draft cache is
    copied into a ``(B, n_heads, capacity, d_head)`` buffer per layer
    with room for the round's decode steps.  Each :meth:`step` then runs
    attention as two whole-batch matmuls over a masked window of the
    buffers and writes the new key/value rows in place — no per-step
    concatenation, padding rebuild or cache object churn.  When the
    verify decides how much speculation survived, :meth:`cache_of`
    carves a sequence's accepted prefix back out into a compact
    :class:`KVCache`.
    """

    __slots__ = ("model", "lengths", "keys", "values")

    def __init__(self, model: TinyCausalLM, caches: Sequence[KVCache],
                 max_steps: int):
        self.model = model
        self.lengths = np.array([cache.seq_len for cache in caches],
                                dtype=np.intp)
        batch = len(caches)
        capacity = int(self.lengths.max()) + max_steps
        self.keys: list[np.ndarray] = []
        self.values: list[np.ndarray] = []
        for index, block in enumerate(model.blocks):
            attn = block.attn
            keys = np.zeros((batch, attn.n_heads, capacity, attn.d_head),
                            dtype=np.float32)
            values = np.zeros_like(keys)
            for s, cache in enumerate(caches):
                past_k, past_v = cache.layer(index)
                keys[s, :, :past_k.shape[2]] = past_k.data[0]
                values[s, :, :past_v.shape[2]] = past_v.data[0]
            self.keys.append(keys)
            self.values.append(values)

    def step(self, tokens: Sequence[int],
             rows: Sequence[int]) -> np.ndarray:
        """Advance ``rows`` by one token each; logits (len(rows), vocab).

        Rows not listed keep their length and buffer contents untouched,
        so the still-drafting subset can shrink between steps.
        """
        model = self.model
        rows_arr = np.asarray(rows, dtype=np.intp)
        full = rows_arr.size == self.lengths.size
        token_arr = np.asarray(tokens, dtype=np.int64)
        positions = self.lengths[rows_arr]
        x = (model.token_embedding.weight.data[token_arr]
             + model.position_embedding.weight.data[positions])
        self.lengths[rows_arr] = positions + 1
        window = int(self.lengths.max())
        blocked = (np.arange(window)[None, :]
                   >= self.lengths[rows_arr, None])
        for index, block in enumerate(model.blocks):
            attn = block.attn
            n_heads, d_head = attn.n_heads, attn.d_head
            h = _layer_norm(x, block.ln1)
            q = _affine(attn.q_proj, h)
            k = _affine(attn.k_proj, h)
            v = _affine(attn.v_proj, h)
            q = q.reshape(rows_arr.size, n_heads, 1, d_head)
            k = k.reshape(rows_arr.size, n_heads, d_head)
            v = v.reshape(rows_arr.size, n_heads, d_head)
            keys_buf, values_buf = self.keys[index], self.values[index]
            keys_buf[rows_arr, :, positions] = k
            values_buf[rows_arr, :, positions] = v
            if full:
                keys = keys_buf[:, :, :window]
                values = values_buf[:, :, :window]
            else:
                keys = keys_buf[rows_arr][:, :, :window]
                values = values_buf[rows_arr][:, :, :window]
            scale = np.float32(1.0 / np.sqrt(d_head))
            scores = np.matmul(q, keys.swapaxes(-1, -2)) * scale
            scores = np.where(blocked[:, None, None, :], _NEG_INF, scores)
            context = np.matmul(_softmax_inplace(scores), values)
            merged = context.reshape(rows_arr.size, n_heads * d_head)
            x = x + _affine(attn.out_proj, merged)
            h = _layer_norm(x, block.ln2)
            x = x + _affine(block.ff2, _gelu(_affine(block.ff1, h)))
        final = _layer_norm(x, model.ln_final)
        return _affine(model.lm_head, final)

    def cache_of(self, row: int, length: int) -> KVCache:
        """Sequence ``row``'s first ``length`` positions as a compact cache."""
        layers = [
            (Tensor(np.ascontiguousarray(keys[row:row + 1, :, :length])),
             Tensor(np.ascontiguousarray(values[row:row + 1, :, :length])))
            for keys, values in zip(self.keys, self.values)
        ]
        return KVCache(layers)


# ----------------------------------------------------------------------
# The decoder
# ----------------------------------------------------------------------
class _DraftState:
    """Per-sequence working state inside one speculative round."""

    __slots__ = ("index", "seq", "ctx_len", "cap", "row", "round", "fed",
                 "logits")

    def __init__(self, index: int, seq: DecodeSequence, ctx_len: int,
                 cap: int):
        self.index = index
        self.seq = seq
        self.ctx_len = ctx_len   # context tokens at round start
        self.cap = cap           # most tokens worth drafting this round
        self.row = 0             # row in the round's draft buffers
        self.round = None        # the shared _DraftRound
        self.fed = 0             # drafted tokens fed into the draft cache
        self.logits = None       # draft logits after the last fed token


class SpeculativeDecoder:
    """Draft-verify engine pluggable into :class:`DecodeScheduler`.

    Construct it once (it is stateless across rounds — all per-sequence
    state lives on the sequences, all counters on the scheduler) and pass
    it to ``DecodeScheduler(model, speculative=...)`` or
    ``PromptServeEngine(..., speculative=...)``.  One instance may be
    shared by many schedulers (the sharded engine does): the draft model
    is pinned to eval mode here and only ever read afterwards.

    Args:
        draft_model: the proposer; must share the base model's tokenizer
            (same vocabulary) — see :func:`build_draft_model`.
        max_draft: hard ceiling on proposed tokens per sequence per round.
        policy: name in :data:`CONFIDENCE_POLICIES`; decides, from the
            draft logits, whether to keep drafting.
        threshold: drafting continues while confidence >= threshold.
        policy_params: extra keyword arguments for the policy (e.g.
            ``{"temperature": 3.0}`` or ``{"k": 8}``).
    """

    def __init__(self, draft_model: TinyCausalLM, *, max_draft: int = 4,
                 policy: str = "max-prob", threshold: float = 0.5,
                 policy_params: dict | None = None):
        if max_draft < 1:
            raise ValueError("max_draft must be >= 1")
        self.draft_model = draft_model
        self.max_draft = int(max_draft)
        self.policy_name = policy
        self.policy = CONFIDENCE_POLICIES[policy]
        self.threshold = float(threshold)
        self.policy_params = dict(policy_params or {})
        self._fast = _FastDraft(draft_model)
        # Pinned: advance() never toggles train/eval, so sharing one
        # decoder across concurrently-stepping schedulers is safe.
        draft_model.eval()

    # ------------------------------------------------------------------
    def advance(self, scheduler: DecodeScheduler,
                n_expired: int = 0) -> DecodeRoundReport:
        """One speculative round over the scheduler's active sequences.

        Called by :meth:`DecodeScheduler.decode_round` (deadline expiry
        already done, at least one sequence active).  Drafts with the
        small model, verifies everything in one base forward, absorbs the
        longest accepted prefix per sequence plus the base model's own
        next token, rolls caches back, and updates the scheduler's
        counters exactly as a plain round would.
        """
        active = scheduler._active
        proposals, states = self._propose(scheduler, active)
        if not any(proposals):
            # Nothing drafted (ineligible batch or low confidence): run
            # the unmodified single-token reference round — but first
            # commit any catch-up the draft buffers absorbed, so the
            # draft caches stay aligned with their sequences.
            for state in states:
                if state.seq.draft_len < state.ctx_len:
                    state.seq.draft_cache = state.round.cache_of(
                        state.row, state.ctx_len)
                    state.seq.draft_len = state.ctx_len
            return scheduler._plain_round(n_expired)

        spans = [
            np.concatenate(([seq.generated[-1]],
                            np.asarray(props, dtype=np.int64)))
            for seq, props in zip(active, proposals)
        ]
        batched = BatchedKVCache.stack([seq.cache for seq in active])
        prefixes = None
        if any(seq.state.prefix_kv is not None for seq in active):
            prefixes = [seq.state.prefix_kv for seq in active]
        model = scheduler.model
        was_training = model.training
        if was_training:
            model.eval()
        try:
            with no_grad():
                logits, extended = model.decode_span(spans, batched,
                                                     prefix_kvs=prefixes)
        finally:
            if was_training:
                model.train()
        scheduler.forwards += 1

        logits_data = logits.data
        emitted = 0
        row = 0
        accepted_by_index: dict[int, int] = {}
        for i, (seq, cache) in enumerate(zip(active, extended.split())):
            props = proposals[i]
            old_len = seq.cache.seq_len
            n_calls = 0
            accepted = 0
            for j in range(len(props) + 1):
                landed = seq._absorb(logits_data[row + j, -1])
                n_calls += 1
                emitted += landed
                matched = bool(landed) and j < len(props) \
                    and seq.generated[-1] == props[j]
                if matched:
                    accepted += 1
                if not matched or seq.finished:
                    break
            # The sequential path would have run n_calls one-token rounds,
            # caching exactly the tokens it fed; everything further is the
            # rejected speculation.  Views suffice: the source buffer is
            # dropped next round and its tail is at most a few positions.
            seq.cache = cache.truncate(old_len + n_calls, copy=False)
            accepted_by_index[i] = accepted
            row += len(props) + 1
            if props:
                scheduler.draft_proposed += len(props)
                scheduler.draft_accepted += accepted

        for state in states:
            accepted = accepted_by_index[state.index]
            keep = state.ctx_len + min(accepted, state.fed)
            state.seq.draft_cache = state.round.cache_of(state.row, keep)
            state.seq.draft_len = keep

        scheduler._active = [seq for seq in active if not seq.finished]
        retired = len(active) - len(scheduler._active)
        scheduler.rounds += 1
        scheduler.spec_rounds += 1
        scheduler.tokens_emitted += emitted
        scheduler.occupancy_sum += len(active)
        return DecodeRoundReport(tokens_emitted=emitted,
                                 n_active=len(active),
                                 n_retired=retired + n_expired,
                                 n_expired=n_expired)

    # ------------------------------------------------------------------
    def _propose(self, scheduler: DecodeScheduler,
                 active: Sequence[DecodeSequence],
                 ) -> tuple[list[list[int]], list[_DraftState]]:
        """Draft up to ``max_draft`` tokens for every eligible sequence.

        Returns per-sequence proposal lists (empty for ineligible or
        low-confidence sequences) and the draft-cache working states to
        be committed after verification.
        """
        draft = self.draft_model
        proposals: list[list[int]] = [[] for _ in active]
        states: list[_DraftState] = []
        for i, seq in enumerate(active):
            if seq.config.temperature != 0.0 or seq.prompt_ids is None:
                continue   # token-identity only holds for greedy drafting
            ctx_len = int(seq.prompt_ids.size) + len(seq.generated)
            # Room caps: the verify feeds 1 + p base positions, drafting
            # feeds up to ctx_len + p - 1 draft positions, and the
            # sequence can absorb at most `remaining` more tokens (one of
            # which is always the verify's own bonus/repair token).
            base_room = scheduler.model.config.max_seq_len \
                - seq.cache.seq_len - 1
            remaining = min(seq.config.max_new_tokens - len(seq.generated),
                            seq._budget - seq._total)
            cap = min(self.max_draft, base_room, remaining - 1,
                      draft.config.max_seq_len - ctx_len - 1)
            if cap < 1:
                continue
            states.append(_DraftState(i, seq, ctx_len, cap))
        if not states:
            return proposals, states

        fast = self._fast
        # Catch-up, slow cases first: first-contact sequences feed their
        # whole context, sequences that lagged through non-speculative
        # rounds feed the missed span.  Both land on a cache covering the
        # full context.
        for state in states:
            if state.seq.draft_cache is None \
                    or state.ctx_len - state.seq.draft_len > 1:
                span = state.seq.context_ids()[state.seq.draft_len:]
                state.logits, cache = fast.extend(span,
                                                  state.seq.draft_cache)
                scheduler.draft_forwards += 1
                state.seq.draft_cache = cache
                state.seq.draft_len = state.ctx_len

        # Open the round's padded buffers, then fold the common catch-up
        # case — a returning sequence is exactly one token behind (the
        # previous verify's bonus/repair token) — into the first step.
        draft_round = fast.begin_round(
            [state.seq.draft_cache for state in states], self.max_draft + 1)
        returning: list[_DraftState] = []
        for row, state in enumerate(states):
            state.round = draft_round
            state.row = row
            if state.seq.draft_len < state.ctx_len:
                returning.append(state)
        if returning:
            logits = draft_round.step(
                [state.seq.generated[-1] for state in returning],
                [state.row for state in returning])
            scheduler.draft_forwards += 1
            for j, state in enumerate(returning):
                state.logits = logits[j]
            # seq.draft_len intentionally still lags: the buffers are
            # authoritative until advance() commits (or, on the
            # no-proposal fallback, commits the catch-up alone).

        # Draft loop: propose greedily while the confidence policy
        # holds, advancing all still-drafting rows together.  Every
        # proposed token is also fed (even the last one, whose logits go
        # unused): that keeps ``fed == len(proposals)``, so the next
        # round's catch-up is the single bonus/repair token again.
        drafting = list(states)
        for _ in range(self.max_draft):
            feeders: list[_DraftState] = []
            for state in drafting:
                if len(proposals[state.index]) >= state.cap:
                    continue
                confidence = self.policy(state.logits,
                                         **self.policy_params)
                if confidence < self.threshold:
                    continue
                proposals[state.index].append(
                    int(np.argmax(state.logits)))
                feeders.append(state)
            if not feeders:
                break
            step_logits = draft_round.step(
                [proposals[state.index][-1] for state in feeders],
                [state.row for state in feeders])
            scheduler.draft_forwards += 1
            for j, state in enumerate(feeders):
                state.fed += 1
                state.logits = step_logits[j]
            drafting = feeders
        return proposals, states
