"""Pretraining corpus for the edge-LLM stand-ins.

The corpus teaches the *generic* (non-personalized) version of every task
format: descriptions tag to their own topic, ratings follow sentiment,
citations match the title's topic, titles name the abstract's topic, and
paraphrases echo the tweet.  Personalization — the part prompt tuning must
supply — is deliberately absent.
"""

from __future__ import annotations

import numpy as np

from ..llm.tokenizer import Tokenizer
from ..utils import derive_rng
from . import vocabulary as V

__all__ = ["build_tokenizer", "build_corpus", "CorpusSentenceSampler"]


def build_tokenizer() -> Tokenizer:
    """Tokenizer over the full synthetic vocabulary."""
    return Tokenizer(V.build_vocabulary())


class CorpusSentenceSampler:
    """Draws format-teaching sentences, one task family at a time."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._samplers = (self._tag_sentence, self._rating_sentence,
                          self._cite_sentence, self._title_sentence,
                          self._paraphrase_sentence)

    def sentence(self) -> str:
        index = int(self._rng.integers(0, len(self._samplers)))
        return self._samplers[index]()

    # ------------------------------------------------------------------
    def _pick_topic(self) -> str:
        return str(self._rng.choice(V.TOPICS))

    def _content(self, topic: str, count: int) -> list[str]:
        words = V.CONTENT_WORDS[topic]
        return [str(w) for w in self._rng.choice(words, size=count)]

    def _tag_sentence(self) -> str:
        topic = self._pick_topic()
        words = self._content(topic, 3)
        return f"movie about {' '.join(words)} {V.CUE_TAG} {topic}"

    def _rating_sentence(self) -> str:
        valence = int(self._rng.integers(-2, 3))
        words: list[str] = []
        if valence > 0:
            words = [str(w) for w in
                     self._rng.choice(V.POSITIVE_WORDS, size=valence)]
        elif valence < 0:
            words = [str(w) for w in
                     self._rng.choice(V.NEGATIVE_WORDS, size=-valence)]
        else:
            words = [str(self._rng.choice(V.NEUTRAL_WORDS))]
        rating = 3 + valence
        return f"review the film was {' '.join(words)} {V.CUE_RATING} {rating}"

    def _cite_sentence(self) -> str:
        topic = self._pick_topic()
        other = self._pick_topic()
        while other == topic:
            other = self._pick_topic()
        words = self._content(topic, 2)
        if self._rng.random() < 0.5:
            candidates = f"ref1 {topic} ref2 {other}"
            answer = "ref1"
        else:
            candidates = f"ref1 {other} ref2 {topic}"
            answer = "ref2"
        return (f"paper about {' '.join(words)} {candidates} "
                f"{V.CUE_CITE} {answer}")

    def _title_sentence(self) -> str:
        topic = self._pick_topic()
        words = self._content(topic, 4)
        headline = V.CONTENT_WORDS[topic][0]
        return (f"abstract {' '.join(words)} {V.CUE_TITLE} "
                f"study of {topic} {headline}")

    def _paraphrase_sentence(self) -> str:
        topic = self._pick_topic()
        words = self._content(topic, 3)
        body = " ".join(words)
        return f"tweet says {body} {V.CUE_PARAPHRASE} {body}"


def build_corpus(tokenizer: Tokenizer, *, n_sentences: int = 3000,
                 seed: int = 0) -> np.ndarray:
    """Token stream of ``n_sentences`` sentences separated by EOS."""
    if n_sentences <= 0:
        raise ValueError("n_sentences must be positive")
    sampler = CorpusSentenceSampler(derive_rng(seed, "corpus"))
    pieces: list[np.ndarray] = []
    for _ in range(n_sentences):
        ids = tokenizer.encode(sampler.sentence(), add_eos=True)
        pieces.append(ids)
    return np.concatenate(pieces)
