"""Synthetic personalized datasets, corpus, users and the edge data buffer."""

from .buffer import DataBuffer
from .corpus import CorpusSentenceSampler, build_corpus, build_tokenizer
from .lamp import (
    LAMP_DATASETS,
    LaMP1,
    LaMP2,
    LaMP3,
    LaMP5,
    LaMP7,
    LaMPDataset,
    Sample,
    available_datasets,
    make_dataset,
)
from .users import UserProfile, make_user, make_users

__all__ = [
    "build_tokenizer", "build_corpus", "CorpusSentenceSampler",
    "Sample", "LaMPDataset", "LaMP1", "LaMP2", "LaMP3", "LaMP5", "LaMP7",
    "LAMP_DATASETS", "make_dataset", "available_datasets",
    "UserProfile", "make_user", "make_users",
    "DataBuffer",
]
