"""Synthetic LaMP-style personalized task generators.

Five datasets mirror the paper's selection:

* **LaMP-1** — binary citation identification (which reference would this
  user cite).
* **LaMP-2** — 15-way movie tagging; descriptions mix two topics and the
  user's preference disambiguates.
* **LaMP-3** — 1..5 product-rating prediction with a per-user harshness
  bias.
* **LaMP-5** — scholarly title generation (ROUGE-1).
* **LaMP-7** — tweet paraphrasing in the user's style (ROUGE-1).

Every sample's ``input_text`` ends with the task's cue word so that the
label/continuation is exactly what the LM should generate next.  Each user's
data is organised into latent *domains* (topic-driven), which is the domain
shift the paper's framework targets.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..utils import derive_rng
from . import vocabulary as V
from .users import UserProfile

__all__ = ["Sample", "LaMPDataset", "LaMP1", "LaMP2", "LaMP3", "LaMP5",
           "LaMP7", "LAMP_DATASETS", "make_dataset", "available_datasets"]


@dataclass(frozen=True)
class Sample:
    """One user-generated datum: model input, expected output, metadata."""

    task: str
    user_id: int
    input_text: str
    target_text: str
    domain: str

    def full_text(self) -> str:
        """Input and target joined — the prompt-tuning training string."""
        return f"{self.input_text} {self.target_text}"


class LaMPDataset(ABC):
    """Interface each synthetic LaMP task implements."""

    name: str
    metric: str  # "accuracy" or "rouge1"

    def user_domains(self, user: UserProfile) -> list[str]:
        """The latent domains this user's data is drawn from."""
        rng = derive_rng(user.user_id, self.name, "domains")
        domains = []
        for topic in user.preferred_topics:
            distractor = self._pick_distractor(topic, rng)
            domains.append(f"{topic}+{distractor}")
        return domains

    @staticmethod
    def _pick_distractor(topic: str, rng: np.random.Generator) -> str:
        choices = [t for t in V.TOPICS if t != topic]
        return str(rng.choice(choices))

    def generate(self, user: UserProfile, count: int, *, seed: int = 0,
                 domains: list[str] | None = None) -> list[Sample]:
        """Draw ``count`` samples for ``user`` across their domains."""
        if count <= 0:
            raise ValueError("count must be positive")
        domains = domains or self.user_domains(user)
        rng = derive_rng(seed, self.name, "gen", user.user_id)
        samples = []
        for i in range(count):
            domain = domains[i % len(domains)]
            samples.append(self.sample(user, domain, rng))
        rng.shuffle(samples)  # interleave domains like a real session mix
        return samples

    @abstractmethod
    def sample(self, user: UserProfile, domain: str,
               rng: np.random.Generator) -> Sample:
        """Draw one sample from ``domain`` for ``user``."""

    # ------------------------------------------------------------------
    @staticmethod
    def _split_domain(domain: str) -> tuple[str, str]:
        preferred, _, distractor = domain.partition("+")
        return preferred, distractor

    @staticmethod
    def _words(topic: str, count: int, rng: np.random.Generator) -> list[str]:
        return [str(w) for w in rng.choice(V.CONTENT_WORDS[topic], size=count)]


class LaMP1(LaMPDataset):
    """Binary citation identification.

    The candidate ordering is a property of the *domain* (the venue/area
    the user is currently writing in), so the correct reference slot is
    stable within a domain — learnable by that domain's OVT — while
    differing across domains, which defeats a one4all prompt.
    """

    name = "LaMP-1"
    metric = "accuracy"

    def user_domains(self, user: UserProfile) -> list[str]:
        rng = derive_rng(user.user_id, self.name, "domains")
        domains = []
        for topic in user.preferred_topics:
            distractor = self._pick_distractor(topic, rng)
            slot = int(rng.integers(1, 3))
            domains.append(f"{topic}+{distractor}+{slot}")
        return domains

    def sample(self, user, domain, rng):
        preferred, distractor, slot_str = domain.split("+")
        slot = int(slot_str)
        title = self._words(preferred, 2, rng) + self._words(distractor, 2, rng)
        rng.shuffle(title)
        if slot == 1:
            candidates = f"ref1 {preferred} ref2 {distractor}"
            answer = "ref1"
        else:
            candidates = f"ref1 {distractor} ref2 {preferred}"
            answer = "ref2"
        text = (f"paper about {' '.join(title)} {candidates} {V.CUE_CITE}")
        return Sample(self.name, user.user_id, text, answer, domain)


class LaMP2(LaMPDataset):
    """15-way movie tag classification."""

    name = "LaMP-2"
    metric = "accuracy"

    def sample(self, user, domain, rng):
        preferred, distractor = self._split_domain(domain)
        words = self._words(preferred, 2, rng) + self._words(distractor, 2, rng)
        rng.shuffle(words)
        text = f"movie about {' '.join(words)} {V.CUE_TAG}"
        return Sample(self.name, user.user_id, text, preferred, domain)


class LaMP3(LaMPDataset):
    """Ordinal 1..5 rating prediction with per-user bias."""

    name = "LaMP-3"
    metric = "accuracy"

    def user_domains(self, user: UserProfile) -> list[str]:
        # Rating domains pair a topic with a sentiment level the user is
        # currently writing in (product categories reviewed in batches).
        rng = derive_rng(user.user_id, self.name, "domains")
        domains = []
        for topic in user.preferred_topics:
            valence = int(rng.integers(-2, 3))
            domains.append(f"{topic}+{valence:+d}")
        return domains

    def sample(self, user, domain, rng):
        topic, _, valence_str = domain.partition("+")
        valence = int(valence_str)
        if valence > 0:
            sentiment = [str(w) for w in rng.choice(V.POSITIVE_WORDS,
                                                    size=valence)]
        elif valence < 0:
            sentiment = [str(w) for w in rng.choice(V.NEGATIVE_WORDS,
                                                    size=-valence)]
        else:
            sentiment = [str(rng.choice(V.NEUTRAL_WORDS))]
        context = self._words(topic, 1, rng)
        rating = int(np.clip(3 + valence + user.rating_bias, 1, 5))
        text = (f"review the film was {' '.join(sentiment)} "
                f"{context[0]} {V.CUE_RATING}")
        return Sample(self.name, user.user_id, text, str(rating), domain)


class LaMP5(LaMPDataset):
    """Scholarly title generation (ROUGE-1)."""

    name = "LaMP-5"
    metric = "rouge1"

    def user_domains(self, user: UserProfile) -> list[str]:
        return list(user.preferred_topics)

    def sample(self, user, domain, rng):
        topic = domain
        body = self._words(topic, 4, rng)
        headline = V.CONTENT_WORDS[topic][0]
        style = user.style_words[0]
        text = f"abstract {' '.join(body)} {V.CUE_TITLE}"
        target = f"study of {topic} {headline} {style}"
        return Sample(self.name, user.user_id, text, target, domain)


class LaMP7(LaMPDataset):
    """Tweet paraphrasing in the user's voice (ROUGE-1)."""

    name = "LaMP-7"
    metric = "rouge1"

    def user_domains(self, user: UserProfile) -> list[str]:
        return list(user.preferred_topics)

    def sample(self, user, domain, rng):
        topic = domain
        body = self._words(topic, 3, rng)
        first, second = user.style_words[0], user.style_words[1]
        text = f"tweet says {' '.join(body)} {V.CUE_PARAPHRASE}"
        target = f"{first} {' '.join(body)} {second}"
        return Sample(self.name, user.user_id, text, target, domain)


LAMP_DATASETS: dict[str, type[LaMPDataset]] = {
    cls.name: cls for cls in (LaMP1, LaMP2, LaMP3, LaMP5, LaMP7)
}


def available_datasets() -> list[str]:
    """Dataset names accepted by :func:`make_dataset`."""
    return sorted(LAMP_DATASETS)


def make_dataset(name: str) -> LaMPDataset:
    """Instantiate a dataset by its paper name (e.g. ``"LaMP-2"``)."""
    try:
        return LAMP_DATASETS[name]()
    except KeyError:
        raise KeyError(
            f"unknown dataset {name!r}; available: {available_datasets()}"
        ) from None
