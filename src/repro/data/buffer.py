"""The edge device's bounded data buffer.

User-generated samples accumulate here together with their embedding-layer
representations (the ``E(x)`` of the paper's Fig. 3).  When the buffer is
full, representative selection consumes it: representatives go to prompt
tuning, the remainder updates the autoencoder.
"""

from __future__ import annotations

import numpy as np

from .lamp import Sample

__all__ = ["DataBuffer"]


class DataBuffer:
    """Fixed-capacity FIFO of (sample, embedding) pairs."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("buffer capacity must be positive")
        self.capacity = capacity
        self._samples: list[Sample] = []
        self._embeddings: list[np.ndarray] = []

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._samples)

    @property
    def is_full(self) -> bool:
        return len(self._samples) >= self.capacity

    @property
    def samples(self) -> list[Sample]:
        return list(self._samples)

    def embedding_matrix(self) -> np.ndarray:
        """All stored embeddings stacked to (n, d)."""
        if not self._embeddings:
            raise ValueError("buffer is empty")
        return np.stack(self._embeddings)

    # ------------------------------------------------------------------
    def add(self, sample: Sample, embedding: np.ndarray) -> None:
        """Store a sample; oldest entries are evicted once full."""
        embedding = np.asarray(embedding, dtype=np.float32).reshape(-1)
        if self._embeddings and embedding.shape != self._embeddings[0].shape:
            raise ValueError(
                f"embedding dim {embedding.shape} differs from stored "
                f"{self._embeddings[0].shape}"
            )
        if self.is_full:
            self._samples.pop(0)
            self._embeddings.pop(0)
        self._samples.append(sample)
        self._embeddings.append(embedding)

    def clear(self) -> None:
        self._samples.clear()
        self._embeddings.clear()

    def take_all(self) -> tuple[list[Sample], np.ndarray]:
        """Drain the buffer, returning its contents."""
        samples = self.samples
        embeddings = self.embedding_matrix()
        self.clear()
        return samples, embeddings
