"""Per-user preference profiles.

A profile carries everything that makes a user's data *personal*: which
topics they engage with, how harshly they rate, and the filler words that
mark their writing style.  These are exactly the latent factors a one4all
prompt cannot capture but per-domain OVTs can.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils import derive_rng
from .vocabulary import STYLE_WORDS, TOPICS

__all__ = ["UserProfile", "make_user", "make_users"]


@dataclass(frozen=True)
class UserProfile:
    """Latent preferences of one simulated user."""

    user_id: int
    preferred_topics: tuple[str, ...]
    rating_bias: int          # -1 harsh, 0 neutral, +1 generous
    style_words: tuple[str, ...]

    def __post_init__(self):
        if not self.preferred_topics:
            raise ValueError("a user needs at least one preferred topic")
        if self.rating_bias not in (-1, 0, 1):
            raise ValueError("rating_bias must be -1, 0 or +1")

    def prefers(self, topic: str) -> bool:
        return topic in self.preferred_topics

    def preference_rank(self, topic: str) -> int:
        """Lower is more preferred; unpreferred topics rank last."""
        try:
            return self.preferred_topics.index(topic)
        except ValueError:
            return len(self.preferred_topics)


def make_user(user_id: int, *, seed: int = 0, n_topics: int = 3) -> UserProfile:
    """Deterministically synthesise user ``user_id``'s profile."""
    if not 1 <= n_topics <= len(TOPICS):
        raise ValueError(f"n_topics must be in [1, {len(TOPICS)}]")
    rng = derive_rng(seed, "user", user_id)
    topics = tuple(rng.choice(TOPICS, size=n_topics, replace=False))
    bias = int(rng.integers(-1, 2))
    style = tuple(rng.choice(STYLE_WORDS, size=2, replace=False))
    return UserProfile(user_id=user_id, preferred_topics=topics,
                       rating_bias=bias, style_words=style)


def make_users(count: int, *, seed: int = 0, n_topics: int = 3) -> list[UserProfile]:
    """The first ``count`` users of the simulated population."""
    return [make_user(i, seed=seed, n_topics=n_topics) for i in range(count)]
