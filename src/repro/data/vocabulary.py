"""The closed synthetic vocabulary shared by corpus, tasks and models.

The language is built around 15 "topics" (mirroring LaMP-2's 15 movie
tags).  Each topic owns content words that co-occur with it, giving the
embedding space the cluster structure that representative selection and
OVT retrieval exploit.
"""

from __future__ import annotations

__all__ = [
    "TOPICS", "CONTENT_WORDS", "POSITIVE_WORDS", "NEGATIVE_WORDS",
    "NEUTRAL_WORDS", "RATING_WORDS", "REF_TOKENS", "STYLE_WORDS",
    "GLUE_WORDS", "CUE_TAG", "CUE_RATING", "CUE_CITE", "CUE_TITLE",
    "CUE_PARAPHRASE", "build_vocabulary", "topic_of_content_word",
]

TOPICS: tuple[str, ...] = (
    "action", "comedy", "drama", "horror", "romance",
    "scifi", "fantasy", "thriller", "mystery", "documentary",
    "western", "musical", "animation", "crime", "war",
)

CONTENT_WORDS: dict[str, tuple[str, ...]] = {
    "action": ("explosion", "chase", "fight", "stunt"),
    "comedy": ("joke", "laugh", "gag", "prank"),
    "drama": ("family", "tears", "conflict", "secret"),
    "horror": ("ghost", "scream", "darkness", "curse"),
    "romance": ("love", "kiss", "heart", "wedding"),
    "scifi": ("robot", "space", "alien", "laser"),
    "fantasy": ("dragon", "magic", "quest", "kingdom"),
    "thriller": ("suspense", "danger", "escape", "conspiracy"),
    "mystery": ("detective", "clue", "riddle", "suspect"),
    "documentary": ("nature", "history", "interview", "archive"),
    "western": ("cowboy", "desert", "saloon", "sheriff"),
    "musical": ("song", "dance", "melody", "stage"),
    "animation": ("cartoon", "sketch", "pixel", "puppet"),
    "crime": ("heist", "gang", "evidence", "trial"),
    "war": ("battle", "soldier", "trench", "siege"),
}

POSITIVE_WORDS: tuple[str, ...] = ("great", "wonderful", "excellent",
                                   "enjoyable", "superb")
NEGATIVE_WORDS: tuple[str, ...] = ("terrible", "boring", "awful",
                                   "dull", "poor")
NEUTRAL_WORDS: tuple[str, ...] = ("average", "okay", "plain")

RATING_WORDS: tuple[str, ...] = ("1", "2", "3", "4", "5")
REF_TOKENS: tuple[str, ...] = ("ref1", "ref2")
STYLE_WORDS: tuple[str, ...] = ("wow", "hmm", "lol", "indeed",
                                "truly", "honestly", "frankly", "really")

CUE_TAG = "tag"
CUE_RATING = "rating"
CUE_CITE = "cite"
CUE_TITLE = "title"
CUE_PARAPHRASE = "paraphrase"

GLUE_WORDS: tuple[str, ...] = (
    "the", "a", "is", "was", "this", "movie", "film", "about", "story",
    "of", "and", "review", "paper", "tweet", "says", "with", "very",
    "study", "abstract", "i", "think", "it", "felt", "plot", "scene",
)


def build_vocabulary() -> list[str]:
    """Every word of the synthetic language (specials excluded)."""
    words: list[str] = []
    words.extend(TOPICS)
    for topic in TOPICS:
        words.extend(CONTENT_WORDS[topic])
    words.extend(POSITIVE_WORDS)
    words.extend(NEGATIVE_WORDS)
    words.extend(NEUTRAL_WORDS)
    words.extend(RATING_WORDS)
    words.extend(REF_TOKENS)
    words.extend(STYLE_WORDS)
    words.extend(GLUE_WORDS)
    words.extend((CUE_TAG, CUE_RATING, CUE_CITE, CUE_TITLE, CUE_PARAPHRASE))
    deduped = list(dict.fromkeys(words))
    if len(deduped) != len(words):
        raise AssertionError("vocabulary words must be unique")
    return words


_WORD_TO_TOPIC = {word: topic
                  for topic, group in CONTENT_WORDS.items()
                  for word in group}


def topic_of_content_word(word: str) -> str | None:
    """Topic owning ``word``, or None for non-content words."""
    return _WORD_TO_TOPIC.get(word)
