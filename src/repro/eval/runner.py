"""Experiment harness reproducing the paper's evaluation protocol.

Protocol (Section IV): each user's data arrives in *sessions* — the buffer
fills from one latent domain at a time (this is the domain shift the paper
targets), the framework trains OVTs per full buffer, and evaluation queries
are drawn across **all** of the user's domains.  One4all baselines only see
the most recent buffer, so their prompt reflects the latest domain only;
NVCiM-PT accumulates one OVT per domain in NVM and retrieves per query.

Scores: Accuracy for LaMP-1/2/3, ROUGE-1 F1 for LaMP-5/7, averaged over
queries and users (the paper averages over >100 users; benches default to a
handful and expose the count).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, replace

import numpy as np

from ..core.framework import (
    FrameworkConfig,
    OVTLibrary,
    OVTTrainingPipeline,
)
from ..data.lamp import LaMPDataset, Sample, make_dataset
from ..data.users import UserProfile, make_user
from ..data.corpus import build_corpus, build_tokenizer
from ..llm.generation import GenerationConfig
from ..llm.registry import load_pretrained_model
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from ..serve import PromptServeEngine, QueryRequest
from ..tuning import PromptArtifact, generate_with_artifact
from .metrics import score_output

__all__ = ["MethodSpec", "TABLE1_METHODS", "ExperimentContext",
           "UserTask", "evaluate_method", "evaluate_artifact"]


@dataclass(frozen=True)
class MethodSpec:
    """One column of the paper's comparison tables."""

    name: str
    noise_aware: bool
    mitigation: str
    retrieval: str

    def apply(self, config: FrameworkConfig) -> FrameworkConfig:
        return replace(config, noise_aware=self.noise_aware,
                       mitigation=self.mitigation, retrieval=self.retrieval)


TABLE1_METHODS: tuple[MethodSpec, ...] = (
    MethodSpec("SWV", noise_aware=False, mitigation="swv", retrieval="ssa"),
    MethodSpec("CxDNN", noise_aware=False, mitigation="cxdnn", retrieval="ssa"),
    MethodSpec("CorrectNet", noise_aware=False, mitigation="correctnet",
               retrieval="ssa"),
    MethodSpec("No-Miti(MIPS)", noise_aware=False, mitigation="none",
               retrieval="mips"),
    MethodSpec("NVP*(MIPS)", noise_aware=True, mitigation="none",
               retrieval="mips"),
    MethodSpec("NVCiM-PT", noise_aware=True, mitigation="none",
               retrieval="ssa"),
)


@dataclass
class UserTask:
    """One (dataset, user) evaluation unit with its stream and queries."""

    dataset: LaMPDataset
    user: UserProfile
    training_stream: list[Sample]
    queries: list[Sample]
    last_buffer: list[Sample]     # what a one4all method would train on


class ExperimentContext:
    """Shared, memoised heavy state: tokenizer, corpus, pretrained models,
    trained OVT libraries."""

    def __init__(self, *, seed: int = 0, corpus_sentences: int = 3000,
                 n_queries: int = 10):
        self.seed = seed
        self.n_queries = n_queries
        self.tokenizer: Tokenizer = build_tokenizer()
        self.corpus = build_corpus(self.tokenizer,
                                   n_sentences=corpus_sentences, seed=seed)
        self._models: dict[str, TinyCausalLM] = {}
        self._libraries: dict[tuple, OVTLibrary] = {}

    # ------------------------------------------------------------------
    def model(self, name: str) -> TinyCausalLM:
        if name not in self._models:
            self._models[name] = load_pretrained_model(
                name, self.corpus, self.tokenizer.vocab_size, seed=self.seed)
        return self._models[name]

    def generation_config(self, max_new_tokens: int = 10) -> GenerationConfig:
        """Paper settings (temperature 0.1); output capped at the task's
        short answers rather than the paper's 100-token ceiling."""
        return GenerationConfig(max_new_tokens=max_new_tokens,
                                temperature=0.1, seed=self.seed,
                                eos_id=self.tokenizer.eos_id)

    # ------------------------------------------------------------------
    def user_task(self, dataset_name: str, user_id: int,
                  buffer_capacity: int) -> UserTask:
        """Build the session stream + queries for one user.

        The stream visits each of the user's domains in turn, one full
        buffer per domain (the paper's domain-shift setting).
        """
        dataset = make_dataset(dataset_name)
        user = make_user(user_id, seed=self.seed)
        domains = dataset.user_domains(user)
        stream: list[Sample] = []
        last_buffer: list[Sample] = []
        for epoch, domain in enumerate(domains):
            chunk = dataset.generate(user, buffer_capacity,
                                     seed=self.seed * 1000 + epoch,
                                     domains=[domain])
            stream.extend(chunk)
            last_buffer = chunk
        queries = dataset.generate(user, self.n_queries,
                                   seed=self.seed * 1000 + 999)
        return UserTask(dataset, user, stream, queries, last_buffer)

    # ------------------------------------------------------------------
    def library(self, model_name: str, dataset_name: str, user_id: int,
                config: FrameworkConfig) -> OVTLibrary:
        """Train (or reuse) the OVT library for one user.

        Libraries depend only on the tuning settings (noise_aware, sigma,
        buffer size, tuning config) — not on device/mitigation/retrieval —
        so Table I reuses each library across its five devices and three
        retrieval/mitigation variants.
        """
        key = (model_name, dataset_name, user_id, config.noise_aware,
               round(config.sigma, 6), config.buffer_capacity,
               config.tuning, config.noise_factors, config.k_selection,
               config.code_dim, config.seed)
        if key not in self._libraries:
            task = self.user_task(dataset_name, user_id,
                                  config.buffer_capacity)
            pipeline = OVTTrainingPipeline(self.model(model_name),
                                           self.tokenizer, config)
            self._libraries[key] = pipeline.run(task.training_stream)
        return self._libraries[key]


def evaluate_method(
    context: ExperimentContext,
    model_name: str,
    dataset_name: str,
    method: MethodSpec,
    config: FrameworkConfig,
    *,
    user_ids: tuple[int, ...] = (0, 1, 2),
) -> float:
    """Mean score of ``method`` over the given users (one table cell).

    Evaluation runs through the serving layer: one engine per cell, each
    user's memoised library loaded into a session and the cell's queries
    served as one batch (so per-user crossbar programming is amortised).
    """
    base = method.apply(config)
    model = context.model(model_name)
    if base.base_quantization is not None:
        # The engine quantizes its model in place; serve a copy so the
        # context's memoised float model (and every library trained
        # against it) stays untouched for other arms.
        model = copy.deepcopy(model)
    engine = PromptServeEngine(model, context.tokenizer,
                               base, max_sessions=max(len(user_ids), 1))
    generation = context.generation_config()
    requests: list[QueryRequest] = []
    expected: list[tuple[str, str]] = []   # (metric, target) per request
    for user_id in user_ids:
        task = context.user_task(dataset_name, user_id, base.buffer_capacity)
        engine.load_session(
            user_id, context.library(model_name, dataset_name, user_id, base))
        for query in task.queries:
            requests.append(QueryRequest(user_id=user_id,
                                         text=query.input_text,
                                         generation=generation))
            expected.append((task.dataset.metric, query.target_text))
    responses = engine.answer_batch(requests)
    scores = [score_output(metric, response.answer, target)
              for response, (metric, target) in zip(responses, expected)]
    return float(np.mean(scores))


def evaluate_artifact(
    context: ExperimentContext,
    model_name: str,
    artifact: PromptArtifact | None,
    queries: list[Sample],
    metric: str,
) -> float:
    """Mean score of a single prompt artifact over ``queries``
    (used by the Fig. 1 one4all baselines)."""
    model = context.model(model_name)
    generation = context.generation_config()
    scores = [
        score_output(metric,
                     generate_with_artifact(model, context.tokenizer,
                                            artifact, q.input_text,
                                            generation),
                     q.target_text)
        for q in queries
    ]
    return float(np.mean(scores))
