"""Metrics and experiment-running utilities."""

from .metrics import Rouge1Score, classification_accuracy, rouge1, score_output
from .quantized import perplexity, quantization_quality

__all__ = ["rouge1", "Rouge1Score", "classification_accuracy", "score_output",
           "perplexity", "quantization_quality"]
