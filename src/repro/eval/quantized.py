"""Quality harness for the weight-quantized serving path.

Deployment story under test: users' OVT libraries are tuned against the
*float32* base model (tuning happens off-device or before compression),
then served by an engine whose base model has been converted to the
packed int8/int4 execution path.  This module measures what that
conversion costs in output quality:

- :func:`perplexity` — teacher-forced perplexity of a model over corpus
  windows, the standard intrinsic quality number for weight quantization.
- :func:`quantization_quality` — one frontier point per requested
  ``(mode, group_size)``: answer accuracy through the full serving path
  (retrieval -> soft prompt -> decode) and perplexity, each with its
  delta vs the float32 reference, plus the resident-weight footprint.

``benchmarks/bench_quantized.py`` turns these records into the
speed x accuracy frontier and CI gates the shipped default's deltas.
"""

from __future__ import annotations

import copy

import numpy as np

from ..ag import Linear, iter_modules, no_grad
from ..core.framework import FrameworkConfig
from ..llm.quantization import quantization_stats, quantize_model
from ..llm.transformer import TinyCausalLM
from ..serve import PromptServeEngine, QueryRequest
from .metrics import score_output
from .runner import ExperimentContext

__all__ = ["perplexity", "quantization_quality"]


def perplexity(model: TinyCausalLM, token_stream: np.ndarray, *,
               window: int = 64, max_windows: int = 32) -> float:
    """Teacher-forced perplexity over non-overlapping corpus windows.

    ``token_stream`` is a flat id array (the pretraining corpus).  Each
    window of ``window + 1`` ids contributes ``window`` next-token
    predictions; the result is ``exp`` of the mean negative log
    likelihood across all scored positions.  Deterministic: no sampling,
    no rng, evaluation order fixed by the stream itself.
    """
    ids = np.asarray(token_stream, dtype=np.int64).reshape(-1)
    n_windows = min(max_windows, (ids.size - 1) // window)
    if n_windows <= 0:
        raise ValueError(
            f"token stream too short for one {window}-token window")
    total_nll = 0.0
    total_tokens = 0
    with no_grad():
        for index in range(n_windows):
            start = index * window
            chunk = ids[start:start + window + 1]
            logits = model.forward(chunk[:-1][None]).data[0]
            # Log-softmax in float64 for a stable sum across windows.
            logits = logits.astype(np.float64)
            logits -= logits.max(axis=-1, keepdims=True)
            log_probs = logits - np.log(
                np.exp(logits).sum(axis=-1, keepdims=True))
            total_nll -= log_probs[np.arange(window), chunk[1:]].sum()
            total_tokens += window
    return float(np.exp(total_nll / total_tokens))


def _answer_accuracy(context: ExperimentContext, model: TinyCausalLM,
                     model_name: str, dataset_name: str,
                     config: FrameworkConfig,
                     user_ids: tuple[int, ...]) -> float:
    """Serve each user's queries on ``model`` with float-trained libraries.

    Mirrors :func:`repro.eval.runner.evaluate_method`, but over an
    explicit model instance so quantized arms serve a converted copy
    while the library training (memoised in ``context``) stays float.
    """
    engine = PromptServeEngine(model, context.tokenizer, config,
                               max_sessions=max(len(user_ids), 1))
    generation = context.generation_config()
    requests: list[QueryRequest] = []
    expected: list[tuple[str, str]] = []
    for user_id in user_ids:
        task = context.user_task(dataset_name, user_id,
                                 config.buffer_capacity)
        engine.load_session(
            user_id,
            context.library(model_name, dataset_name, user_id, config))
        for query in task.queries:
            requests.append(QueryRequest(user_id=user_id,
                                         text=query.input_text,
                                         generation=generation))
            expected.append((task.dataset.metric, query.target_text))
    responses = engine.answer_batch(requests)
    scores = [score_output(metric, response.answer, target)
              for response, (metric, target) in zip(responses, expected)]
    return float(np.mean(scores))


def quantization_quality(
    context: ExperimentContext,
    model_name: str = "phi-2-sim",
    dataset_name: str = "LaMP-1",
    *,
    points: tuple[tuple[str, int], ...] = (("int8", 32), ("int4", 32)),
    user_ids: tuple[int, ...] = (0, 1),
    ppl_window: int = 64,
    ppl_windows: int = 16,
) -> dict:
    """Accuracy and perplexity deltas vs float32, one record per point.

    Returns ``{"float32": {...}, "points": [{...}, ...]}`` where the
    reference record carries absolute accuracy/perplexity and every
    point record adds ``accuracy_delta`` (point minus float — negative
    means the quantized path scores lower), ``perplexity_ratio``
    (point over float — above 1.0 means worse), and the byte footprint
    from :func:`repro.llm.quantization.quantization_stats`.

    The float model comes from the context's memoised store; every
    quantized arm converts a ``deepcopy`` so the shared float model —
    and the libraries tuned against it — are never touched.
    """
    base_config = FrameworkConfig(buffer_capacity=5)
    float_model = context.model(model_name)
    float_accuracy = _answer_accuracy(context, float_model, model_name,
                                      dataset_name, base_config, user_ids)
    float_ppl = perplexity(float_model, context.corpus,
                           window=ppl_window, max_windows=ppl_windows)
    float_bytes = sum(module.weight.data.nbytes
                      for module in iter_modules(float_model)
                      if isinstance(module, Linear))
    records = []
    for mode, group_size in points:
        arm = copy.deepcopy(float_model)
        quantize_model(arm, mode, group_size)
        arm.eval()
        accuracy = _answer_accuracy(context, arm, model_name, dataset_name,
                                    base_config, user_ids)
        ppl = perplexity(arm, context.corpus,
                         window=ppl_window, max_windows=ppl_windows)
        stats = quantization_stats(arm)
        records.append({
            "mode": mode,
            "group_size": group_size,
            "accuracy": accuracy,
            "accuracy_delta": accuracy - float_accuracy,
            "perplexity": ppl,
            "perplexity_ratio": ppl / float_ppl,
            "quantized_layers": stats["quantized_layers"],
            "weight_bytes": stats["weight_bytes"],
            "weight_bytes_saved": stats["weight_bytes_saved"],
        })
    return {
        "float32": {"accuracy": float_accuracy, "perplexity": float_ppl,
                    "weight_bytes": int(float_bytes)},
        "points": records,
    }
