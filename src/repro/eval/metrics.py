"""Evaluation metrics: classification accuracy and ROUGE-1.

Matches the paper's protocol: Accuracy for LaMP-1/2/3, ROUGE-1 for
LaMP-5/7, averaged over users.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

__all__ = ["rouge1", "Rouge1Score", "classification_accuracy", "score_output"]


@dataclass(frozen=True)
class Rouge1Score:
    """Unigram overlap scores between a candidate and a reference."""

    precision: float
    recall: float
    f1: float


def rouge1(candidate: str, reference: str) -> Rouge1Score:
    """ROUGE-1 precision/recall/F1 on whitespace unigrams."""
    cand_tokens = candidate.split()
    ref_tokens = reference.split()
    if not cand_tokens or not ref_tokens:
        return Rouge1Score(0.0, 0.0, 0.0)
    overlap_counts = Counter(cand_tokens) & Counter(ref_tokens)
    overlap = sum(overlap_counts.values())
    precision = overlap / len(cand_tokens)
    recall = overlap / len(ref_tokens)
    if precision + recall == 0.0:
        return Rouge1Score(0.0, 0.0, 0.0)
    f1 = 2.0 * precision * recall / (precision + recall)
    return Rouge1Score(precision, recall, f1)


def classification_accuracy(prediction: str, label: str) -> float:
    """1.0 when the first predicted word equals the label word."""
    predicted_words = prediction.split()
    if not predicted_words:
        return 0.0
    return 1.0 if predicted_words[0] == label.strip() else 0.0


def score_output(metric: str, prediction: str, target: str) -> float:
    """Dispatch on the dataset's metric name ('accuracy' or 'rouge1')."""
    if metric == "accuracy":
        return classification_accuracy(prediction, target)
    if metric == "rouge1":
        return rouge1(prediction, target).f1
    raise ValueError(f"unknown metric {metric!r}")
