"""Multi-user serving layer for NVCiM-PT.

The paper's deployment story is many edge users, each with a personal OVT
library programmed onto NVM, served at low latency over one shared frozen
base model.  This package is that story as an API:

* :class:`PromptServeEngine` — owns the shared model/tokenizer and a
  bounded LRU cache of per-user sessions (limited on-device NVM).
* :class:`UserSession` — one user's training pipeline plus lazily
  reprogrammed NVM deployment.
* :class:`TuneRequest` / :class:`QueryRequest` / :class:`QueryResponse` —
  the typed request/response surface, with retrieval telemetry (selected
  OVT, similarity scores, analytic latency/energy) on every answer.
* :class:`PendingQuery` — a query in the continuous-batching decoder:
  ``answer_batch`` (or ``begin_query`` + ``run_decode_round``) advances
  every user's answer one token per round through a single batched
  forward, token-identical to sequential serving.
* :class:`SessionSnapshot` / :class:`SessionStore` — durable sessions: a
  user's trained library, buffer and NVM state as a versioned binary
  blob that LRU eviction spills and session lookups transparently
  restore, byte-identically and without re-running a tuner step.
* :class:`ShardedPromptEngine` — users hash-routed across N engines with
  the same surface, so the gateway scales out unchanged.

Quickstart::

    engine = PromptServeEngine(model, tokenizer,
                               FrameworkConfig.preset("table1"))
    engine.submit(TuneRequest(user_id=7, samples=tuple(stream)))
    response = engine.query(QueryRequest(user_id=7, text="..."))
    print(response.answer, response.ovt_index, response.latency_us)
"""

from .api import (
    PendingQuery,
    QueryRequest,
    QueryResponse,
    TuneRequest,
    TuneResponse,
)
from .engine import PromptServeEngine, QueueFull
from .metrics import LatencyHistogram
from .session import UserSession
from .sharded import ShardedPromptEngine
from .snapshot import SessionSnapshot, SnapshotError
from .store import SessionStore

__all__ = [
    "PromptServeEngine", "QueueFull", "UserSession", "LatencyHistogram",
    "TuneRequest", "TuneResponse", "QueryRequest", "QueryResponse",
    "PendingQuery", "SessionSnapshot", "SnapshotError", "SessionStore",
    "ShardedPromptEngine",
]
