"""Per-user serving state: one training pipeline + one lazy deployment.

A :class:`UserSession` is everything the engine keeps for a single user:
their streaming buffer and OVT library (via
:class:`~repro.core.OVTTrainingPipeline`) and, once the library is
non-empty, an :class:`~repro.core.NVCiMDeployment` whose crossbars hold the
library.  The deployment is (re)programmed lazily: each training epoch
changes the library, so the previous NVM contents are invalidated and the
next query pays one reprogramming — exactly the write-then-serve cadence of
the paper's edge device.

The session also keeps a small LRU cache of decode-ready
:class:`~repro.llm.generation.PrefillState`s keyed by ``(query text, OVT
index)``: a repeated query (within a batch or across batches) pays the KV
prefill once and every answer is produced by incremental decode steps
against the cached state.  Training invalidates the cache along with the
deployment, since a retrained library restores different soft prompts.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

import numpy as np

from ..core.framework import (
    FrameworkConfig,
    NVCiMDeployment,
    OVTLibrary,
    OVTTrainingPipeline,
)
from ..data.lamp import Sample
from ..nvm.crossbar import CrossbarStats
from ..llm.generation import GenerationConfig, PrefillState, prefill
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM

__all__ = ["UserSession"]

# Per-session bound on cached prefill states (each holds per-layer KV
# tensors, so the footprint is context-length x layers, not unbounded).
_MAX_PREFILL_STATES = 32


class UserSession:
    """One user's OVT library and NVM deployment over the shared model."""

    def __init__(self, user_id: int, model: TinyCausalLM,
                 tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None):
        self.user_id = user_id
        self.config = config if config is not None else FrameworkConfig()
        self.pipeline = OVTTrainingPipeline(model, tokenizer, self.config)
        self._deployment: NVCiMDeployment | None = None
        self._prefill_states: OrderedDict[tuple[str, int], PrefillState] = \
            OrderedDict()
        self.epochs_completed = 0
        self.queries_served = 0
        self.prefill_hits = 0
        # Crossbar counters of deployments this session has retired
        # (training/adoption reprograms fresh matrices); cim_stats() adds
        # the live deployment so the session's totals stay cumulative.
        self._retired_cim = CrossbarStats()
        # Generations admitted to the engine's decoder and not yet retired.
        # In-flight decode state is owned by the sequences themselves, so
        # this counter is telemetry (and an eviction-policy input), not a
        # correctness requirement: evicting a session mid-flight leaves its
        # pending generations running to completion.
        self.generations_in_flight = 0

    # ------------------------------------------------------------------
    @property
    def model(self) -> TinyCausalLM:
        return self.pipeline.model

    @property
    def tokenizer(self) -> Tokenizer:
        return self.pipeline.tokenizer

    @property
    def library(self) -> OVTLibrary:
        return self.pipeline.library

    @property
    def is_deployed(self) -> bool:
        """Whether the library is currently programmed onto the crossbars."""
        return self._deployment is not None

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def observe(self, sample: Sample) -> bool:
        """Absorb one interaction; True when a training epoch just ran."""
        fired = self.pipeline.observe(sample)
        if fired:
            self.epochs_completed += 1
            self._retire_deployment()  # library changed; reprogram lazily
            self._prefill_states.clear()  # restored prompts change too
        return fired

    def extend(self, samples: list[Sample]) -> int:
        """Absorb many interactions; returns the number of epochs fired."""
        return sum(self.observe(sample) for sample in samples)

    def adopt_library(self, library: OVTLibrary) -> None:
        """Serve a library trained elsewhere (e.g. restored from storage)."""
        self.pipeline.library = library
        self._retire_deployment()
        self._prefill_states.clear()

    def _retire_deployment(self) -> None:
        """Invalidate the deployment, banking its crossbar counters."""
        if self._deployment is not None:
            self._retired_cim.add(self._deployment.engine.aggregate_stats())
        self._deployment = None

    def cim_stats(self) -> CrossbarStats:
        """Cumulative crossbar counters: retired deployments + the live
        one.  Monotonic across retraining, unlike reading the current
        deployment's counters directly."""
        total = CrossbarStats().add(self._retired_cim)
        if self._deployment is not None:
            total.add(self._deployment.engine.aggregate_stats())
        return total

    # ------------------------------------------------------------------
    # Inference mode
    # ------------------------------------------------------------------
    def deployment(self) -> NVCiMDeployment:
        """The NVM deployment, (re)programming the crossbars if stale."""
        if not self.library.ovts:
            raise RuntimeError(
                "no OVTs trained yet; feed more samples via observe()"
            )
        if self._deployment is None:
            self._deployment = NVCiMDeployment(
                self.pipeline.model, self.pipeline.tokenizer, self.library,
                self.config)
        return self._deployment

    def prefill_state(
        self,
        text: str,
        ovt_index: int,
        restore_prompt: Callable[[], np.ndarray],
    ) -> PrefillState:
        """Decode-ready prefill of ``prompt + text``, cached per session.

        ``restore_prompt`` is only invoked on a cache miss, so a repeated
        query skips the NVM read-back and autoencoder decode entirely.  It
        must restore the soft prompt for ``ovt_index`` from the *current*
        deployment — the cache key assumes it, and training (which changes
        what each index restores to) clears the cache.
        """
        key = (text, ovt_index)
        state = self._prefill_states.get(key)
        if state is not None:
            self._prefill_states.move_to_end(key)
            self.prefill_hits += 1
            return state
        ids = self.tokenizer.encode(text)
        state = prefill(self.model, ids, soft_prompt=restore_prompt())
        self._prefill_states[key] = state
        while len(self._prefill_states) > _MAX_PREFILL_STATES:
            self._prefill_states.popitem(last=False)
        return state

    def prefill_cache_bytes(self) -> int:
        """Approximate KV footprint of the cached prefill states."""
        return sum(state.cache.memory_bytes()
                   for state in self._prefill_states.values())

    def clear_prefill_cache(self) -> None:
        """Drop cached prefill states (e.g. to benchmark cold decodes).

        Safe at any time: in-flight decodes hold their own references to
        the states they started from.
        """
        self._prefill_states.clear()

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Answer a query with this user's best stored OVT."""
        answer = self.deployment().answer(input_text, generation)
        self.queries_served += 1
        return answer
