"""Per-user serving state: one training pipeline + one lazy deployment.

A :class:`UserSession` is everything the engine keeps for a single user:
their streaming buffer and OVT library (via
:class:`~repro.core.OVTTrainingPipeline`) and, once the library is
non-empty, an :class:`~repro.core.NVCiMDeployment` whose crossbars hold the
library.  The deployment is (re)programmed lazily: each training epoch
changes the library, so the previous NVM contents are invalidated and the
next query pays one reprogramming — exactly the write-then-serve cadence of
the paper's edge device.
"""

from __future__ import annotations

from ..core.framework import (
    FrameworkConfig,
    NVCiMDeployment,
    OVTLibrary,
    OVTTrainingPipeline,
)
from ..data.lamp import Sample
from ..llm.generation import GenerationConfig
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM

__all__ = ["UserSession"]


class UserSession:
    """One user's OVT library and NVM deployment over the shared model."""

    def __init__(self, user_id: int, model: TinyCausalLM,
                 tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None):
        self.user_id = user_id
        self.config = config if config is not None else FrameworkConfig()
        self.pipeline = OVTTrainingPipeline(model, tokenizer, self.config)
        self._deployment: NVCiMDeployment | None = None
        self.epochs_completed = 0
        self.queries_served = 0

    # ------------------------------------------------------------------
    @property
    def model(self) -> TinyCausalLM:
        return self.pipeline.model

    @property
    def tokenizer(self) -> Tokenizer:
        return self.pipeline.tokenizer

    @property
    def library(self) -> OVTLibrary:
        return self.pipeline.library

    @property
    def is_deployed(self) -> bool:
        """Whether the library is currently programmed onto the crossbars."""
        return self._deployment is not None

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def observe(self, sample: Sample) -> bool:
        """Absorb one interaction; True when a training epoch just ran."""
        fired = self.pipeline.observe(sample)
        if fired:
            self.epochs_completed += 1
            self._deployment = None   # library changed; reprogram lazily
        return fired

    def extend(self, samples: list[Sample]) -> int:
        """Absorb many interactions; returns the number of epochs fired."""
        return sum(self.observe(sample) for sample in samples)

    def adopt_library(self, library: OVTLibrary) -> None:
        """Serve a library trained elsewhere (e.g. restored from storage)."""
        self.pipeline.library = library
        self._deployment = None

    # ------------------------------------------------------------------
    # Inference mode
    # ------------------------------------------------------------------
    def deployment(self) -> NVCiMDeployment:
        """The NVM deployment, (re)programming the crossbars if stale."""
        if not self.library.ovts:
            raise RuntimeError(
                "no OVTs trained yet; feed more samples via observe()"
            )
        if self._deployment is None:
            self._deployment = NVCiMDeployment(
                self.pipeline.model, self.pipeline.tokenizer, self.library,
                self.config)
        return self._deployment

    def answer(self, input_text: str,
               generation: GenerationConfig | None = None) -> str:
        """Answer a query with this user's best stored OVT."""
        answer = self.deployment().answer(input_text, generation)
        self.queries_served += 1
        return answer
