"""Durable per-user session state: capture, serialize, restore.

A :class:`SessionSnapshot` is everything a
:class:`~repro.serve.session.UserSession` owns that cannot be recomputed
for free: the trained OVT library (token matrices plus the user's
autoencoder weights), the observed-sample buffer, cumulative serving
counters, and — optionally — the NVM deployment state.  Captured
snapshots serialize to a stdlib-only tagged binary format
(:mod:`repro.serve.codec`) with a magic header and schema version, so a
session can leave memory (LRU eviction, process restart, another worker)
and come back answering byte-identically, without re-running one tuner
step.

Two capture modes trade size against restore cost:

* ``mode="raw"`` — the deployment's crossbar conductances, cumulative
  counters and generator states travel in full.  Restore rebuilds the
  NVM state bit-identically with **zero** programming pulses.
* ``mode="recipe"`` — only cumulative counters travel.  Restore re-runs
  deployment programming, which is deterministic (the deployment's
  generator derives purely from the config), then re-seats the counters
  so the rebuild is not double-billed.  Same conductances, smaller blob,
  one reprogramming's latency.

The prefill KV cache is deliberately *not* serialized: prefill is
deterministic, so a restored session recomputes any state it needs and
still produces byte-identical greedy answers — only the ``prefill_hits``
telemetry starts cold.  The snapshot records the cache keys as metadata
so stores can report what was dropped.
"""

from __future__ import annotations

import dataclasses
import struct
from dataclasses import dataclass

import numpy as np

from ..core.framework import FrameworkConfig, NVCiMDeployment, OVTLibrary
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from ..nvm.crossbar import CrossbarStats
from ..tuning import VirtualTokens
from .codec import CodecError, decode_value, encode_value
from .session import UserSession

__all__ = ["SessionSnapshot", "SnapshotError", "SCHEMA_VERSION", "MAGIC"]

# Bumped whenever the payload layout changes incompatibly; from_bytes
# refuses blobs from other versions (the golden-fixture test pins this).
SCHEMA_VERSION = 1

MAGIC = b"NVPTSNAP"

_HEADER = struct.Struct("<H")


class SnapshotError(ValueError):
    """Raised for malformed, foreign, or incompatible snapshot blobs."""


def _sample_dict(sample: Sample) -> dict:
    return dataclasses.asdict(sample)


def _sample_from(data: dict) -> Sample:
    return Sample(task=data["task"], user_id=int(data["user_id"]),
                  input_text=data["input_text"],
                  target_text=data["target_text"], domain=data["domain"])


@dataclass
class SessionSnapshot:
    """A :class:`UserSession` as a value: capture, encode, rebuild."""

    user_id: int
    mode: str
    config: dict
    model_fingerprint: dict
    library: dict
    buffer: list
    counters: dict
    prefill_keys: list
    deployment: dict | None

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, session: UserSession, *,
                mode: str = "raw") -> "SessionSnapshot":
        """Snapshot a live session (which keeps running, unaffected)."""
        if mode not in ("raw", "recipe"):
            raise ValueError(f"mode must be 'raw' or 'recipe', got {mode!r}")
        model = session.model
        library = session.library
        ae = library.autoencoder
        deployment = None
        if session.is_deployed:
            deployment = session._deployment.snapshot(
                include_state=(mode == "raw"))
        return cls(
            user_id=session.user_id,
            mode=mode,
            config=session.config.to_dict(),
            model_fingerprint={
                "d_model": model.config.d_model,
                "vocab_size": model.config.vocab_size,
                "n_layers": model.config.n_layers,
            },
            library={
                "ovts": [{"matrix": ovt.matrix.copy(),
                          "domain": ovt.domain,
                          "source": (_sample_dict(ovt.source)
                                     if ovt.source is not None else None)}
                         for ovt in library.ovts],
                "autoencoder_state": ae.state_dict(),
                "autoencoder_trained": ae.is_trained,
                "noise_aware": library.noise_aware,
            },
            buffer=[_sample_dict(s) for s in session.pipeline.buffer.samples],
            counters={
                "epochs_completed": session.epochs_completed,
                "pipeline_epochs": session.pipeline._epochs_completed,
                "queries_served": session.queries_served,
                "prefill_hits": session.prefill_hits,
                "retired_cim": session._retired_cim.to_dict(),
            },
            prefill_keys=[[text, index]
                          for text, index in session._prefill_states],
            deployment=deployment,
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize to the versioned binary form (magic + schema + body)."""
        payload = {
            "user_id": self.user_id,
            "mode": self.mode,
            "config": self.config,
            "model_fingerprint": self.model_fingerprint,
            "library": self.library,
            "buffer": self.buffer,
            "counters": self.counters,
            "prefill_keys": self.prefill_keys,
            "deployment": self.deployment,
        }
        return MAGIC + _HEADER.pack(SCHEMA_VERSION) + encode_value(payload)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SessionSnapshot":
        """Parse a serialized snapshot; refuses foreign or future blobs."""
        if len(blob) < len(MAGIC) + _HEADER.size:
            raise SnapshotError("blob too short to be a session snapshot")
        if blob[:len(MAGIC)] != MAGIC:
            raise SnapshotError("not a session snapshot (bad magic)")
        (version,) = _HEADER.unpack_from(blob, len(MAGIC))
        if version != SCHEMA_VERSION:
            raise SnapshotError(
                f"snapshot schema version {version} is not supported "
                f"(this build reads version {SCHEMA_VERSION})")
        try:
            payload = decode_value(blob[len(MAGIC) + _HEADER.size:])
        except CodecError as error:
            raise SnapshotError(f"corrupt snapshot body: {error}") from error
        if not isinstance(payload, dict):
            raise SnapshotError("snapshot body is not a mapping")
        try:
            return cls(
                user_id=int(payload["user_id"]),
                mode=payload["mode"],
                config=payload["config"],
                model_fingerprint=payload["model_fingerprint"],
                library=payload["library"],
                buffer=payload["buffer"],
                counters=payload["counters"],
                prefill_keys=payload["prefill_keys"],
                deployment=payload["deployment"],
            )
        except KeyError as error:
            raise SnapshotError(
                f"snapshot body is missing field {error}") from error

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def build_session(self, model: TinyCausalLM,
                      tokenizer: Tokenizer) -> UserSession:
        """Rebuild the captured session against the shared base model.

        Raw snapshots restore the NVM deployment bit-identically with no
        programming; recipe snapshots replay the (deterministic)
        programming and then re-seat the cumulative counters.  Either
        way the rebuilt session's greedy answers are byte-identical to
        the original's, with no tuner step re-run.
        """
        fingerprint = self.model_fingerprint
        actual = {"d_model": model.config.d_model,
                  "vocab_size": model.config.vocab_size,
                  "n_layers": model.config.n_layers}
        if actual != fingerprint:
            raise SnapshotError(
                f"snapshot was captured against a model with "
                f"{fingerprint}, got {actual}")
        config = FrameworkConfig.from_dict(self.config)
        session = UserSession(self.user_id, model, tokenizer, config)

        # Library: token matrices verbatim, autoencoder weights re-seated
        # into the pipeline's (architecture-identical) fresh instance.
        library = session.library
        library.ovts.extend(
            VirtualTokens(
                np.asarray(entry["matrix"], dtype=np.float32).copy(),
                source=(_sample_from(entry["source"])
                        if entry["source"] is not None else None),
                domain=entry["domain"])
            for entry in self.library["ovts"])
        library.autoencoder.load_state_dict(
            self.library["autoencoder_state"])
        library.autoencoder._trained = bool(
            self.library["autoencoder_trained"])
        library.noise_aware = bool(self.library["noise_aware"])

        # Buffer: samples travel; embeddings are recomputed (embedding a
        # text through the frozen model is deterministic).
        for data in self.buffer:
            sample = _sample_from(data)
            ids = tokenizer.encode(sample.input_text)
            session.pipeline.buffer.add(sample,
                                        model.embed_text_vector(ids))

        counters = self.counters
        session.epochs_completed = int(counters["epochs_completed"])
        session.pipeline._epochs_completed = int(
            counters["pipeline_epochs"])
        session.queries_served = int(counters["queries_served"])
        session.prefill_hits = int(counters["prefill_hits"])
        session._retired_cim = CrossbarStats.from_dict(
            counters["retired_cim"])

        if self.deployment is not None:
            session._deployment = self._build_deployment(
                model, tokenizer, library, config)
        return session

    def _build_deployment(self, model: TinyCausalLM, tokenizer: Tokenizer,
                          library: OVTLibrary,
                          config: FrameworkConfig) -> NVCiMDeployment:
        if self.mode == "raw":
            return NVCiMDeployment.from_snapshot(
                model, tokenizer, library, config, self.deployment)
        # Recipe: re-program deterministically, then re-seat the counters
        # the original session had already accumulated (the rebuild's own
        # fresh programming pulses are folded away, not double-billed).
        deployment = NVCiMDeployment(model, tokenizer, library, config)
        deployment.restore_counters(self.deployment)
        return deployment
