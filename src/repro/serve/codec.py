"""Stdlib-only binary codec for session snapshots.

A tiny tagged-value serialization used by :mod:`repro.serve.snapshot`:
values are encoded as a one-byte tag followed by a fixed- or
length-prefixed payload, recursing through lists and dicts.  The format
is deliberately minimal — exactly the shapes a
:class:`~repro.serve.snapshot.SessionSnapshot` needs — and *canonical*:
dict keys are sorted, integers use their minimal two's-complement width,
and arrays serialize their raw C-contiguous bytes, so encoding the same
value always produces the same blob (the golden-fixture tests pin this).

Supported values: ``None``, ``bool``, ``int`` (arbitrary precision, for
PCG64 generator states), ``float``, ``str``, ``bytes``, ``list``/``tuple``
(decoded as ``list``), ``dict`` with ``str`` keys, and numeric/bool
``numpy.ndarray``.  ``pickle`` is deliberately not involved: decoding a
snapshot never executes anything.
"""

from __future__ import annotations

import struct

import numpy as np

__all__ = ["encode_value", "decode_value", "CodecError"]


class CodecError(ValueError):
    """Raised when a value cannot be encoded or a blob cannot be decoded."""


_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_FLOAT = b"f"
_TAG_STR = b"s"
_TAG_BYTES = b"b"
_TAG_LIST = b"l"
_TAG_DICT = b"d"
_TAG_ARRAY = b"a"

_LEN = struct.Struct("<Q")
_F64 = struct.Struct("<d")

# Array dtypes a snapshot may carry.  Object/str arrays are rejected so a
# decoded blob can never smuggle arbitrary Python objects.
_ARRAY_KINDS = frozenset("biuf")


def _encode_into(out: bytearray, value) -> None:
    if value is None:
        out += _TAG_NONE
    elif isinstance(value, bool) or isinstance(value, np.bool_):
        out += _TAG_TRUE if value else _TAG_FALSE
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        width = (value.bit_length() + 8) // 8 or 1
        payload = value.to_bytes(width, "little", signed=True)
        out += _TAG_INT
        out += bytes([len(payload)])
        out += payload
    elif isinstance(value, (float, np.floating)):
        out += _TAG_FLOAT
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out += _TAG_STR
        out += _LEN.pack(len(payload))
        out += payload
    elif isinstance(value, (bytes, bytearray)):
        out += _TAG_BYTES
        out += _LEN.pack(len(value))
        out += bytes(value)
    elif isinstance(value, np.ndarray):
        if value.dtype.kind not in _ARRAY_KINDS:
            raise CodecError(
                f"cannot encode array of dtype {value.dtype} "
                f"(only bool/int/uint/float arrays are snapshot-safe)")
        # ascontiguousarray promotes 0-d to 1-d; reshape preserves rank.
        data = np.ascontiguousarray(value).reshape(value.shape)
        dtype = data.dtype.str.encode("ascii")
        out += _TAG_ARRAY
        out += bytes([len(dtype)])
        out += dtype
        out += bytes([data.ndim])
        for dim in data.shape:
            out += _LEN.pack(dim)
        raw = data.tobytes()
        out += _LEN.pack(len(raw))
        out += raw
    elif isinstance(value, (list, tuple)):
        out += _TAG_LIST
        out += _LEN.pack(len(value))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        if not all(isinstance(k, str) for k in value):
            raise CodecError("dict keys must be strings")
        out += _TAG_DICT
        out += _LEN.pack(len(value))
        for key in sorted(value):
            _encode_into(out, key)
            _encode_into(out, value[key])
    else:
        raise CodecError(
            f"cannot encode value of type {type(value).__name__}")


def encode_value(value) -> bytes:
    """Serialize ``value`` to its canonical binary form."""
    out = bytearray()
    _encode_into(out, value)
    return bytes(out)


def _take(blob: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(blob):
        raise CodecError("truncated snapshot blob")
    return blob[offset:end], end


def _decode_at(blob: bytes, offset: int) -> tuple[object, int]:
    tag, offset = _take(blob, offset, 1)
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        width, offset = _take(blob, offset, 1)
        payload, offset = _take(blob, offset, width[0])
        return int.from_bytes(payload, "little", signed=True), offset
    if tag == _TAG_FLOAT:
        payload, offset = _take(blob, offset, 8)
        return _F64.unpack(payload)[0], offset
    if tag == _TAG_STR:
        raw, offset = _take(blob, offset, 8)
        payload, offset = _take(blob, offset, _LEN.unpack(raw)[0])
        return payload.decode("utf-8"), offset
    if tag == _TAG_BYTES:
        raw, offset = _take(blob, offset, 8)
        payload, offset = _take(blob, offset, _LEN.unpack(raw)[0])
        return payload, offset
    if tag == _TAG_ARRAY:
        width, offset = _take(blob, offset, 1)
        dtype_str, offset = _take(blob, offset, width[0])
        dtype = np.dtype(dtype_str.decode("ascii"))
        if dtype.kind not in _ARRAY_KINDS:
            raise CodecError(f"refusing to decode array of dtype {dtype}")
        ndim_raw, offset = _take(blob, offset, 1)
        shape = []
        for _ in range(ndim_raw[0]):
            raw, offset = _take(blob, offset, 8)
            shape.append(_LEN.unpack(raw)[0])
        raw, offset = _take(blob, offset, 8)
        payload, offset = _take(blob, offset, _LEN.unpack(raw)[0])
        array = np.frombuffer(payload, dtype=dtype)
        expected = int(np.prod(shape, dtype=np.int64)) if shape else 1
        if array.size != expected:
            raise CodecError("array payload does not match its shape")
        return array.reshape(shape).copy(), offset
    if tag == _TAG_LIST:
        raw, offset = _take(blob, offset, 8)
        items = []
        for _ in range(_LEN.unpack(raw)[0]):
            item, offset = _decode_at(blob, offset)
            items.append(item)
        return items, offset
    if tag == _TAG_DICT:
        raw, offset = _take(blob, offset, 8)
        result = {}
        for _ in range(_LEN.unpack(raw)[0]):
            key, offset = _decode_at(blob, offset)
            if not isinstance(key, str):
                raise CodecError("dict keys must decode to strings")
            value, offset = _decode_at(blob, offset)
            result[key] = value
        return result, offset
    raise CodecError(f"unknown tag {tag!r} at offset {offset - 1}")


def decode_value(blob: bytes) -> object:
    """Inverse of :func:`encode_value`; rejects trailing garbage."""
    value, offset = _decode_at(blob, 0)
    if offset != len(blob):
        raise CodecError(
            f"{len(blob) - offset} trailing bytes after the encoded value")
    return value
