"""The stats manifest: how every serving counter aggregates across shards.

Single-engine ``stats()`` and fleet-wide ``ShardedPromptEngine.stats()``
must agree on what each key *means* under aggregation — summing an
average or averaging a ratio is the classic dashboard lie.  This module
is the one place that meaning is declared; the sharded engine merges
from it (no hardcoded key lists) and the STATS-001 lint rule
cross-checks it against the keys the engines actually emit.

``STATS_MANIFEST`` must stay a **pure literal**: the linter reads it
with ``ast.literal_eval`` so it can check the manifest without importing
(and therefore executing) any serve code.  Do not compute entries.

Kinds:

- ``"additive"``    — sums across workers (monotonic counters, gauges
  that partition across shards, and per-worker capacity budgets like
  ``max_sessions``).
- ``"capacity"``    — additive, but ``None`` means unbounded and
  poisons the sum (one uncapped worker makes the fleet uncapped).
- ``"histogram"``   — merged sample-by-sample via
  :meth:`~repro.serve.metrics.LatencyHistogram.merge`, never summed.
- ``("ratio", numerator_key, denominator_key)`` — recomputed from the
  *summed* numerator/denominator; averaging per-worker ratios would
  weight idle workers equally with busy ones.
- ``"structural"``  — not aggregated: reported once fleet-wide
  (``session_store``) or synthesized by the sharded engine itself
  (``n_workers``, ``workers``).
"""

from __future__ import annotations

__all__ = ["STATS_MANIFEST", "register_stat"]

STATS_MANIFEST = {
    # -- session lifecycle ------------------------------------------------
    "active_sessions": "additive",
    "max_sessions": "additive",
    "evicted_sessions": "additive",
    "sessions_created": "additive",
    "sessions_spilled": "additive",
    "sessions_restored": "additive",
    "session_store": "structural",
    # -- request flow -----------------------------------------------------
    "requests_served": "additive",
    "stored_ovts": "additive",
    "prefill_hits": "additive",
    "prefill_cache_bytes": "additive",
    "pending_generations": "additive",
    "queue_depth": "additive",
    "max_pending": "capacity",
    "admitted": "additive",
    "rejected": "additive",
    "latency_ms": "histogram",
    # -- decode telemetry -------------------------------------------------
    "decode_rounds": "additive",
    "decode_tokens": "additive",
    "occupancy_sum": "additive",
    "tokens_per_round": ("ratio", "decode_tokens", "decode_rounds"),
    "batch_occupancy": ("ratio", "occupancy_sum", "decode_rounds"),
    # -- speculative decoding ----------------------------------------------
    "decode_forwards": "additive",
    "spec_rounds": "additive",
    "draft_forwards": "additive",
    "draft_proposed_tokens": "additive",
    "draft_accepted_tokens": "additive",
    "tokens_per_forward": ("ratio", "decode_tokens", "decode_forwards"),
    "draft_acceptance_rate": ("ratio", "draft_accepted_tokens",
                              "draft_proposed_tokens"),
    # -- weight quantization ----------------------------------------------
    # Resident-model accounting: the base model is shared by every worker,
    # so these are structural (worker 0 speaks for the fleet) — summing
    # would multiply the one model's footprint by n_workers.
    "quantized_layers": "structural",
    "weight_bytes": "structural",
    "weight_bytes_saved": "structural",
    # -- CiM hardware counters --------------------------------------------
    "cim_mvm_ops": "additive",
    "cim_adc_conversions": "additive",
    "cim_cell_reads": "additive",
    "cim_write_pulses": "additive",
    # -- fleet shape (sharded engine only) --------------------------------
    "n_workers": "structural",
    "workers": "structural",
}

_KINDS = ("additive", "capacity", "histogram", "structural")


def register_stat(key: str, kind) -> None:
    """Declare an extension counter so the sharded merge picks it up.

    Plugins that teach ``PromptServeEngine.stats()`` a new key call this
    once at import time; ``ShardedPromptEngine.stats()`` then aggregates
    the key with the declared semantics instead of dropping it (or,
    worse, someone hand-editing a key list).  ``kind`` is one of the
    scalar kinds or a ``("ratio", num, den)`` tuple, exactly as in
    :data:`STATS_MANIFEST`.
    """
    if isinstance(kind, tuple):
        if len(kind) != 3 or kind[0] != "ratio":
            raise ValueError(
                f"tuple kinds must be ('ratio', num_key, den_key), "
                f"got {kind!r}")
    elif kind not in _KINDS:
        raise ValueError(
            f"unknown stat kind {kind!r}; expected one of {_KINDS} "
            f"or a ('ratio', num, den) tuple")
    existing = STATS_MANIFEST.get(key)
    if existing is not None and existing != kind:
        raise ValueError(
            f"stat {key!r} already declared as {existing!r}")
    STATS_MANIFEST[key] = kind
