"""The multi-user serving engine.

One :class:`PromptServeEngine` owns a single frozen base model and
tokenizer — the expensive shared substrate — and a bounded LRU cache of
per-user :class:`~repro.serve.session.UserSession`s, mirroring an edge
deployment where the NVM banks can hold only so many users' OVT libraries
at once.  Training data and queries arrive as typed request objects
(:mod:`repro.serve.api`); answers carry retrieval telemetry, including the
analytic CiM latency/energy estimate from :mod:`repro.cim.energy`.

Batched entry points (:meth:`PromptServeEngine.submit_batch`,
:meth:`PromptServeEngine.answer_batch`) group requests by user so each
user's crossbars are programmed at most once per batch, and memoise query
encodings and restored prompts within the batch.  Because retrieval noise
is drawn at *programming* time (not per read), batched answers are
byte-identical to sequential ones.

Generation runs through the incremental decode path: each session keeps an
LRU of decode-ready prefill states keyed by ``(text, OVT index)``, so
repeated queries — within one ``answer_batch`` or across calls — share one
KV prefill and every token is a single-position forward.  Incremental
decoding emits exactly the tokens the full-reforward loop would, so this
changes latency, not answers.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from ..cim.energy import RetrievalCostReport, retrieval_cost
from ..core.framework import FrameworkConfig, NVCiMDeployment, OVTLibrary
from ..data.lamp import Sample
from ..llm.generation import GenerationConfig, decode_from
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .api import QueryRequest, QueryResponse, TuneRequest, TuneResponse
from .session import UserSession

__all__ = ["PromptServeEngine"]

# int16 words are bit-sliced into one digit per cell.
_WORD_BITS = 16


def _deployment_cost(deployment: NVCiMDeployment) -> RetrievalCostReport:
    """Analytic cost of one retrieval over this deployment's store."""
    config = deployment.config
    search = config.search_config()
    device = deployment.engine.device
    backend = device.kind if config.on_cim else "CPU"
    code_rows = search.pad_length * config.code_dim
    return retrieval_cost(
        backend,
        deployment.engine.n_stored,
        code_rows=code_rows,
        n_slices=_WORD_BITS // device.bits_per_cell,
        scales=search.scales,
        bytes_per_ovt=code_rows * 2.0,
    )


class PromptServeEngine:
    """Serve many users' personal OVT libraries over one shared base model."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None, *,
                 max_sessions: int = 8):
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        # The base model is frozen shared state: pin it to eval mode once so
        # decoding never has to flip module flags other threads could see.
        model.eval()
        self.model = model
        self.tokenizer = tokenizer
        self.config = config if config is not None else FrameworkConfig()
        self.max_sessions = max_sessions
        self._sessions: OrderedDict[int, UserSession] = OrderedDict()
        self.evicted_sessions = 0
        self.requests_served = 0
        self._evicted_prefill_hits = 0   # keeps stats monotonic across LRU

    # ------------------------------------------------------------------
    # Session management (bounded, LRU — the on-device NVM budget)
    # ------------------------------------------------------------------
    def session(self, user_id: int, *,
                config: FrameworkConfig | None = None) -> UserSession:
        """The user's session, created (evicting the LRU one) if absent.

        ``config`` overrides the engine default for *new* sessions only;
        an existing session keeps the config it was created with.
        """
        if user_id in self._sessions:
            self._sessions.move_to_end(user_id)
            return self._sessions[user_id]
        session = UserSession(user_id, self.model, self.tokenizer,
                              config if config is not None else self.config)
        self._sessions[user_id] = session
        while len(self._sessions) > self.max_sessions:
            _, evicted = self._sessions.popitem(last=False)
            self._evicted_prefill_hits += evicted.prefill_hits
            self.evicted_sessions += 1
        return session

    def _resident_session(self, user_id: int) -> UserSession:
        """The user's existing session; never creates one.

        The inference path uses this so a stray query for an unknown (or
        already-evicted) user fails cleanly instead of inserting an empty
        session and LRU-evicting a resident user's trained library.
        """
        if user_id not in self._sessions:
            raise KeyError(
                f"no session for user {user_id!r}; submit training data "
                f"(or load_session a library) first")
        return self.session(user_id)   # touches LRU recency

    def load_session(self, user_id: int, library: OVTLibrary, *,
                     config: FrameworkConfig | None = None) -> UserSession:
        """Create/refresh a session serving a library trained elsewhere."""
        session = self.session(user_id, config=config)
        session.adopt_library(library)
        return session

    def has_session(self, user_id: int) -> bool:
        return user_id in self._sessions

    def active_users(self) -> list[int]:
        """Resident user ids, least- to most-recently used."""
        return list(self._sessions)

    def drop_session(self, user_id: int) -> bool:
        """Explicitly evict one user; True if they were resident."""
        session = self._sessions.pop(user_id, None)
        if session is None:
            return False
        self._evicted_prefill_hits += session.prefill_hits
        return True

    def stats(self) -> dict:
        """Aggregate serving counters (for dashboards and tests)."""
        return {
            "active_sessions": len(self._sessions),
            "max_sessions": self.max_sessions,
            "evicted_sessions": self.evicted_sessions,
            "requests_served": self.requests_served,
            "stored_ovts": sum(len(s.library) for s in self._sessions.values()),
            "prefill_hits": self._evicted_prefill_hits +
                            sum(s.prefill_hits
                                for s in self._sessions.values()),
            "prefill_cache_bytes": sum(s.prefill_cache_bytes()
                                       for s in self._sessions.values()),
        }

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def observe(self, user_id: int, sample: Sample) -> bool:
        """Absorb one interaction; True when it triggered a training epoch."""
        return self.session(user_id).observe(sample)

    def submit(self, request: TuneRequest) -> TuneResponse:
        """Absorb one user's batch of interactions."""
        session = self.session(request.user_id)
        epochs = session.extend(list(request.samples))
        return TuneResponse(
            user_id=request.user_id,
            accepted=len(request.samples),
            epochs_fired=epochs,
            library_size=len(session.library),
            request_id=request.request_id,
        )

    def submit_batch(self, requests: list[TuneRequest]) -> list[TuneResponse]:
        """Absorb many users' batches; responses come back in input order.

        Requests are grouped by user (preserving each user's arrival order)
        so one user's buffer fills contiguously even when the input
        interleaves users.
        """
        order: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            order.setdefault(request.user_id, []).append(position)
        responses: list[TuneResponse | None] = [None] * len(requests)
        for positions in order.values():
            for position in positions:
                responses[position] = self.submit(requests[position])
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Inference mode
    # ------------------------------------------------------------------
    def default_generation(self) -> GenerationConfig:
        """Paper inference settings, bound to this tokenizer's EOS."""
        return GenerationConfig(max_new_tokens=100, temperature=0.1,
                                eos_id=self.tokenizer.eos_id)

    def answer(self, user_id: int, text: str,
               generation: GenerationConfig | None = None) -> str:
        """Convenience single-query path returning just the text."""
        return self.query(QueryRequest(user_id=user_id, text=text,
                                       generation=generation)).answer

    def query(self, request: QueryRequest) -> QueryResponse:
        """Serve one query through the full retrieve/restore/generate path.

        Raises ``KeyError`` for a user with no resident session — inference
        never creates sessions (that would let stray requests evict real
        users' libraries).
        """
        session = self._resident_session(request.user_id)
        return self._serve_one(session, session.deployment(), request, {}, {})

    def answer_batch(self,
                     requests: list[QueryRequest]) -> list[QueryResponse]:
        """Serve a batch of queries; responses come back in input order.

        Queries are grouped by user so each user's deployment is resolved
        (and, if stale, reprogrammed) once per batch; repeated query texts
        share one encoding and repeated retrievals share one NVM read-back.
        Answers are byte-identical to issuing the same requests one at a
        time through :meth:`query`.
        """
        order: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            order.setdefault(request.user_id, []).append(position)
        responses: list[QueryResponse | None] = [None] * len(requests)
        for user_id, positions in order.items():
            session = self._resident_session(user_id)
            deployment = session.deployment()
            code_cache: dict[str, np.ndarray] = {}
            prompt_cache: dict[int, np.ndarray] = {}
            for position in positions:
                responses[position] = self._serve_one(
                    session, deployment, requests[position],
                    code_cache, prompt_cache)
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _serve_one(self, session: UserSession, deployment: NVCiMDeployment,
                   request: QueryRequest,
                   code_cache: dict[str, np.ndarray],
                   prompt_cache: dict[int, np.ndarray]) -> QueryResponse:
        text = request.text
        codes = code_cache.get(text)
        if codes is None:
            codes = code_cache[text] = deployment.encode_query(text)
        scores = deployment.engine.query(codes)
        index = int(np.argmax(scores))

        def restore_prompt() -> np.ndarray:
            # Only reached on a prefill-cache miss: a repeated query skips
            # the NVM read-back and autoencoder decode along with the
            # prefill itself.
            prompt = prompt_cache.get(index)
            if prompt is None:
                prompt = prompt_cache[index] = deployment.restored_prompt(index)
            return prompt

        generation = request.generation or self.default_generation()
        state = session.prefill_state(text, index, restore_prompt)
        answer = self.tokenizer.decode(
            decode_from(self.model, state, generation))
        cost = _deployment_cost(deployment)
        session.queries_served += 1
        self.requests_served += 1
        return QueryResponse(
            user_id=request.user_id,
            text=text,
            answer=answer,
            ovt_index=index,
            scores=tuple(float(s) for s in scores),
            n_ovts=deployment.engine.n_stored,
            backend=cost.backend,
            latency_ns=cost.latency_ns,
            energy_pj=cost.energy_pj,
            request_id=request.request_id,
        )
