"""The multi-user serving engine.

One :class:`PromptServeEngine` owns a single frozen base model and
tokenizer — the expensive shared substrate — and a bounded LRU cache of
per-user :class:`~repro.serve.session.UserSession`s, mirroring an edge
deployment where the NVM banks can hold only so many users' OVT libraries
at once.  Training data and queries arrive as typed request objects
(:mod:`repro.serve.api`); answers carry retrieval telemetry, including the
analytic CiM latency/energy estimate from :mod:`repro.cim.energy`.

Batched entry points (:meth:`PromptServeEngine.submit_batch`,
:meth:`PromptServeEngine.answer_batch`) group requests by user so each
user's crossbars are programmed at most once per batch, and memoise query
encodings and restored prompts within the batch.  Because retrieval noise
is drawn at *programming* time (not per read), batched answers are
byte-identical to sequential ones.

Generation runs through the incremental decode path: each session keeps an
LRU of decode-ready prefill states keyed by ``(text, OVT index)``, so
repeated queries — within one ``answer_batch`` or across calls — share one
KV prefill and every token is a single-position forward.  Incremental
decoding emits exactly the tokens the full-reforward loop would, so this
changes latency, not answers.

Retrieval batches the same way the decode loop does: when ``answer_batch``
admits a user's queries, all of their query texts are scored in one
:meth:`~repro.retrieval.CiMSearchEngine.query_batch` call — a single
batched in-memory GMM per scale against that user's crossbars — instead
of one scaled search per request.  Because single-query retrieval is the
batch-of-one case of the same path, per-request telemetry (scores, OVT
index, and the analytic per-query cost estimate) is unchanged, and the
crossbar operation counters still bill every query individually.

On top of that sits cross-user continuous batching: ``answer_batch``
admits every query into one :class:`~repro.llm.generation.DecodeScheduler`
and :meth:`PromptServeEngine.run_decode_round` advances *all* pending
generations one token per round in a single batched forward — the shared
base model is amortised across users instead of finishing each answer
before starting the next.  The batched path is token-identical to the
sequential one (kept as the reference via ``batched=False`` and
:meth:`PromptServeEngine.query`): every sequence keeps a private compact
KV cache, rng stream, and sampling config, and the batched forward is
bit-exact per sequence.  Queries may also be admitted individually with
:meth:`PromptServeEngine.begin_query` and driven by explicit rounds.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable

import numpy as np

from ..cim.energy import RetrievalCostReport, retrieval_cost
from ..nvm.crossbar import CrossbarStats
from ..core.framework import FrameworkConfig, NVCiMDeployment, OVTLibrary
from ..data.lamp import Sample
from ..llm.generation import (
    DecodeRoundReport,
    DecodeScheduler,
    GenerationConfig,
    decode_from,
)
from ..llm.quantization import quantization_stats, quantize_model
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .api import (
    PendingQuery,
    QueryRequest,
    QueryResponse,
    TuneRequest,
    TuneResponse,
)
from .metrics import LatencyHistogram
from .session import UserSession
from .snapshot import SessionSnapshot
from .store import SessionStore

__all__ = ["PromptServeEngine", "QueueFull"]


class QueueFull(RuntimeError):
    """Raised by :meth:`PromptServeEngine.begin_query` when the engine's
    bounded pending-generation queue is at capacity.

    The serving layer's backpressure signal: the HTTP gateway maps it to
    ``429 Too Many Requests`` with a ``Retry-After`` hint instead of
    letting latency grow without bound.
    """

    def __init__(self, queue_depth: int, max_pending: int):
        super().__init__(
            f"engine at capacity: {queue_depth} pending generations "
            f"(max_pending={max_pending})")
        self.queue_depth = queue_depth
        self.max_pending = max_pending

# int16 words are bit-sliced into one digit per cell.
_WORD_BITS = 16


def _deployment_cost(deployment: NVCiMDeployment) -> RetrievalCostReport:
    """Analytic cost of one retrieval over this deployment's store."""
    config = deployment.config
    search = config.search_config()
    device = deployment.engine.device
    backend = device.kind if config.on_cim else "CPU"
    code_rows = search.pad_length * config.code_dim
    return retrieval_cost(
        backend,
        deployment.engine.n_stored,
        code_rows=code_rows,
        n_slices=_WORD_BITS // device.bits_per_cell,
        scales=search.scales,
        bytes_per_ovt=code_rows * 2.0,
    )


class PromptServeEngine:
    """Serve many users' personal OVT libraries over one shared base model."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None, *,
                 max_sessions: int = 8,
                 max_pending: int | None = None,
                 session_store: SessionStore | None = None,
                 snapshot_mode: str = "raw",
                 speculative=None):
        if max_sessions <= 0:
            raise ValueError("max_sessions must be positive")
        if max_pending is not None and max_pending <= 0:
            raise ValueError("max_pending must be positive (or None)")
        if snapshot_mode not in ("raw", "recipe"):
            raise ValueError(
                f"snapshot_mode must be 'raw' or 'recipe', "
                f"got {snapshot_mode!r}")
        self.config = config if config is not None else FrameworkConfig()
        # Optional weight quantization: convert the frozen base model's
        # dense Linears to the packed int8/int4 execution path once, before
        # any forward.  Idempotent, so a model shared across engines (the
        # sharded deployment) converts exactly once; the draft model rides
        # along — its proposals only steer, the base verify still decides
        # every token.  The resident-weight accounting feeds stats().
        if self.config.base_quantization is not None:
            quantize_model(model, self.config.base_quantization,
                           self.config.quantization_group_size)
            if speculative is not None:
                quantize_model(speculative.draft_model,
                               self.config.base_quantization,
                               self.config.quantization_group_size)
        self._quantization = quantization_stats(model)
        # The base model is frozen shared state: pin it to eval mode once so
        # decoding never has to flip module flags other threads could see.
        model.eval()
        self.model = model
        self.tokenizer = tokenizer
        self.max_sessions = max_sessions
        # Bounded admission for begin_query: None serves every caller (the
        # in-process default), an integer is the backpressure point the
        # gateway leans on.
        self.max_pending = max_pending
        # Durable session storage: when present, LRU eviction spills each
        # session's snapshot here and session lookups transparently
        # restore spilled users instead of losing their trained state.
        self.session_store = session_store
        self.snapshot_mode = snapshot_mode
        self._sessions: OrderedDict[int, UserSession] = OrderedDict()
        self.evicted_sessions = 0
        self.requests_served = 0
        self.admitted = 0   # queries that entered the decoder
        self.rejected = 0   # begin_query calls bounced on max_pending
        self.sessions_created = 0    # fresh sessions (paid full tuning)
        self.sessions_spilled = 0    # snapshots written to the store
        self.sessions_restored = 0   # sessions rebuilt from the store
        self._evicted_prefill_hits = 0   # keeps stats monotonic across LRU
        self._evicted_cim = CrossbarStats()  # same, for crossbar counters
        # What was banked into the evicted baselines per spilled user, so a
        # restore can un-bank it: the restored session re-reports exactly
        # those counters itself, and leaving the banked copy in place
        # would double-count every spill/restore cycle.
        self._spill_baselines: dict[int, tuple[int, CrossbarStats]] = {}
        self._latency = LatencyHistogram()   # request wall latency
        # One re-entrant lock serializes every engine entry point: the
        # gateway drives admission (begin_query) and the decode loop
        # (run_decode_round) from different threads, and stats() may be
        # read from yet another.  Rounds hold the lock for one batched
        # forward, so readers see consistent counters, never torn state.
        self._lock = threading.RLock()
        # Optional draft-verify decoding: a SpeculativeDecoder (see
        # repro.llm.speculative) makes every decode round draft several
        # tokens per greedy sequence with a small model and verify them in
        # one base forward.  None is the sequential reference; answers are
        # token-identical either way, only forward counts change.
        self.speculative = speculative
        # One continuous-batching decoder for the engine's lifetime: its
        # round/token/occupancy counters are the serving telemetry, and
        # pending generations from different calls share rounds.
        self._scheduler = DecodeScheduler(model, speculative=speculative)
        self._pending: list[PendingQuery] = []

    # ------------------------------------------------------------------
    # Session management (bounded, LRU — the on-device NVM budget)
    # ------------------------------------------------------------------
    def session(self, user_id: int, *,
                config: FrameworkConfig | None = None) -> UserSession:
        """The user's session, created (evicting the LRU one) if absent.

        A spilled user is transparently restored from the session store
        first — they come back with their trained library and NVM state
        instead of paying full re-tuning.  ``config`` overrides the
        engine default for *new* sessions only; existing and restored
        sessions keep the config they were captured with.
        """
        with self._lock:
            if user_id in self._sessions:
                self._sessions.move_to_end(user_id)
                return self._sessions[user_id]
            session = self._restore_session(user_id)
            if session is not None:
                return session
            session = UserSession(
                user_id, self.model, self.tokenizer,
                config if config is not None else self.config)
            self._sessions[user_id] = session
            self.sessions_created += 1
            self._evict_over_capacity()
            return session

    def _evict_over_capacity(self) -> None:
        """Spill least-recently-used sessions down to ``max_sessions``."""
        while len(self._sessions) > self.max_sessions:
            # LRU eviction may land on a session with generations still
            # in flight; those are self-contained (the decoder's
            # sequences own their caches and telemetry snapshots) and
            # finish normally, so eviction frees the NVM library
            # without touching any batch slot.
            _, evicted = self._sessions.popitem(last=False)
            self._spill_session(evicted)
            self.evicted_sessions += 1

    def _spill_session(self, session: UserSession) -> None:
        """Bank a leaving session's counters and snapshot it to the store.

        The banked values are remembered per user so that a later restore
        can un-bank them — the restored session reports the same counters
        itself, and totals must not double-count.
        """
        hits = session.prefill_hits
        cim = session.cim_stats()
        self._evicted_prefill_hits += hits
        self._evicted_cim.add(cim)
        if self.session_store is None:
            return
        blob = SessionSnapshot.capture(
            session, mode=self.snapshot_mode).to_bytes()
        self.session_store.put(session.user_id, blob)
        self._spill_baselines[session.user_id] = (hits, cim)
        self.sessions_spilled += 1

    def _restore_session(self, user_id: int) -> UserSession | None:
        """Rebuild a spilled user from the store; None when unknown."""
        if self.session_store is None:
            return None
        blob = self.session_store.get(user_id)
        if blob is None:
            return None
        snapshot = SessionSnapshot.from_bytes(blob)
        session = snapshot.build_session(self.model, self.tokenizer)
        baseline = self._spill_baselines.pop(user_id, None)
        if baseline is not None:
            # This engine banked these counters when it spilled the user;
            # the restored session re-reports them, so un-bank.  A blob
            # written by another engine has no baseline here and the
            # restored counters are simply new to this engine's totals.
            hits, cim = baseline
            self._evicted_prefill_hits -= hits
            self._evicted_cim.subtract(cim)
        self._sessions[user_id] = session
        self.sessions_restored += 1
        self._evict_over_capacity()
        return session

    def _resident_session(self, user_id: int) -> UserSession:
        """The user's existing session; never creates one.

        Spilled users transparently restore from the session store; only
        a user the engine has never seen fails.  That keeps the inference
        path from inserting an empty session and LRU-evicting a resident
        user's trained library on a stray request.
        """
        if user_id not in self._sessions:
            if self._restore_session(user_id) is None:
                raise KeyError(
                    f"no session for user {user_id!r}; submit training "
                    f"data (or load_session a library) first")
        return self.session(user_id)   # touches LRU recency

    def load_session(self, user_id: int, library: OVTLibrary, *,
                     config: FrameworkConfig | None = None) -> UserSession:
        """Create/refresh a session serving a library trained elsewhere."""
        session = self.session(user_id, config=config)
        session.adopt_library(library)
        return session

    def has_session(self, user_id: int) -> bool:
        return user_id in self._sessions

    def active_users(self) -> list[int]:
        """Resident user ids, least- to most-recently used."""
        return list(self._sessions)

    def drop_session(self, user_id: int, *,
                     cancel_pending: bool = False,
                     spill: bool = True) -> bool:
        """Explicitly evict one user; True if they were resident.

        With a session store attached the dropped session is spilled like
        an LRU eviction (``spill=False`` skips the snapshot — e.g. when
        the user asked to be forgotten; their stored blob, if any, is
        deleted instead).  A dropped user's pending generations are
        self-contained (their decode state lives in the scheduler's
        sequences, not the session), so by default they run to completion
        and their responses stay token-identical to sequential serving.
        With ``cancel_pending=True`` they are instead retired
        immediately: each handle completes with the tokens generated so
        far and is marked ``cancelled``.  Either way, other users' batch
        slots are untouched.
        """
        with self._lock:
            session = self._sessions.pop(user_id, None)
            if session is None:
                return False
            if spill:
                self._spill_session(session)
            else:
                self._evicted_prefill_hits += session.prefill_hits
                self._evicted_cim.add(session.cim_stats())
                if self.session_store is not None:
                    self.session_store.delete(user_id)
                    self._spill_baselines.pop(user_id, None)
            if cancel_pending:
                for pending in [p for p in self._pending
                                if p._session is session]:
                    self.cancel_query(pending)
            return True

    def cancel_query(self, pending: PendingQuery) -> bool:
        """Cancel one in-flight query (client disconnect, gateway timeout).

        The generation retires immediately with the tokens produced so far
        — a clean prefix of the full answer — and the handle's response is
        finalised with ``cancelled=True``.  Returns False if the query had
        already completed (its response stands).  Other queries' batch
        slots are untouched.
        """
        with self._lock:
            if pending.done:
                return False
            self._scheduler.cancel(pending._sequence)
            pending.cancelled = True
            self._finalize(pending)
            return True

    def stats(self) -> dict:
        """Aggregate serving counters (for dashboards and tests).

        Safe to read while a decode round is in flight: request counters
        advance only when a generation retires, and decode telemetry
        (rounds, tokens, occupancy) comes from the scheduler's monotonic
        counters.
        """
        with self._lock:
            scheduler = self._scheduler
            rounds = scheduler.rounds
            cim = CrossbarStats().add(self._evicted_cim)
            for session in self._sessions.values():
                # Vectorized banks sum their counter vectors, so
                # aggregating on every stats() call stays cheap on the
                # serve path.  The evicted/retired baselines keep these
                # counters cumulative (monotonic) across LRU eviction and
                # retraining, like the decode counters beside them.
                cim.add(session.cim_stats())
            return {
                "active_sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "evicted_sessions": self.evicted_sessions,
                "sessions_created": self.sessions_created,
                "sessions_spilled": self.sessions_spilled,
                "sessions_restored": self.sessions_restored,
                "session_store": (self.session_store.stats()
                                  if self.session_store is not None
                                  else None),
                "requests_served": self.requests_served,
                "stored_ovts": sum(len(s.library)
                                   for s in self._sessions.values()),
                "prefill_hits": self._evicted_prefill_hits +
                                sum(s.prefill_hits
                                    for s in self._sessions.values()),
                "prefill_cache_bytes": sum(s.prefill_cache_bytes()
                                           for s in self._sessions.values()),
                "pending_generations": len(self._pending),
                "queue_depth": len(self._pending),
                "max_pending": self.max_pending,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "latency_ms": self._latency.summary(),
                "decode_rounds": rounds,
                "decode_tokens": scheduler.tokens_emitted,
                "occupancy_sum": scheduler.occupancy_sum,
                "tokens_per_round": (scheduler.tokens_emitted / rounds
                                     if rounds else 0.0),
                "batch_occupancy": (scheduler.occupancy_sum / rounds
                                    if rounds else 0.0),
                "decode_forwards": scheduler.forwards,
                "spec_rounds": scheduler.spec_rounds,
                "draft_forwards": scheduler.draft_forwards,
                "draft_proposed_tokens": scheduler.draft_proposed,
                "draft_accepted_tokens": scheduler.draft_accepted,
                "tokens_per_forward": (
                    scheduler.tokens_emitted / scheduler.forwards
                    if scheduler.forwards else 0.0),
                "draft_acceptance_rate": (
                    scheduler.draft_accepted / scheduler.draft_proposed
                    if scheduler.draft_proposed else 0.0),
                "cim_mvm_ops": cim.mvm_ops,
                "cim_adc_conversions": cim.adc_conversions,
                "cim_cell_reads": cim.cell_reads,
                "cim_write_pulses": cim.write_pulses,
                "quantized_layers": self._quantization["quantized_layers"],
                "weight_bytes": self._quantization["weight_bytes"],
                "weight_bytes_saved":
                    self._quantization["weight_bytes_saved"],
            }

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def observe(self, user_id: int, sample: Sample) -> bool:
        """Absorb one interaction; True when it triggered a training epoch."""
        with self._lock:
            return self.session(user_id).observe(sample)

    def submit(self, request: TuneRequest) -> TuneResponse:
        """Absorb one user's batch of interactions."""
        with self._lock:
            session = self.session(request.user_id)
            epochs = session.extend(list(request.samples))
        return TuneResponse(
            user_id=request.user_id,
            accepted=len(request.samples),
            epochs_fired=epochs,
            library_size=len(session.library),
            request_id=request.request_id,
        )

    def submit_batch(self, requests: list[TuneRequest]) -> list[TuneResponse]:
        """Absorb many users' batches; responses come back in input order.

        Requests are grouped by user (preserving each user's arrival order)
        so one user's buffer fills contiguously even when the input
        interleaves users.
        """
        order: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            order.setdefault(request.user_id, []).append(position)
        responses: list[TuneResponse | None] = [None] * len(requests)
        for positions in order.values():
            for position in positions:
                responses[position] = self.submit(requests[position])
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Inference mode
    # ------------------------------------------------------------------
    def default_generation(self) -> GenerationConfig:
        """Paper inference settings, bound to this tokenizer's EOS."""
        return GenerationConfig(max_new_tokens=100, temperature=0.1,
                                eos_id=self.tokenizer.eos_id)

    def answer(self, user_id: int, text: str,
               generation: GenerationConfig | None = None) -> str:
        """Convenience single-query path returning just the text."""
        return self.query(QueryRequest(user_id=user_id, text=text,
                                       generation=generation)).answer

    def query(self, request: QueryRequest) -> QueryResponse:
        """Serve one query through the full retrieve/restore/generate path.

        Raises ``KeyError`` for a user with no resident session — inference
        never creates sessions (that would let stray requests evict real
        users' libraries).
        """
        with self._lock:
            session = self._resident_session(request.user_id)
            return self._serve_one(session, session.deployment(), request,
                                   {}, {})

    def answer_batch(self, requests: list[QueryRequest], *,
                     batched: bool = True) -> list[QueryResponse]:
        """Serve a batch of queries; responses come back in input order.

        Queries are grouped by user so each user's deployment is resolved
        (and, if stale, reprogrammed) once per batch; repeated query texts
        share one encoding and repeated retrievals share one NVM read-back.

        With ``batched=True`` (the default) every query is admitted to the
        continuous-batching decoder and all answers advance one token per
        round through a single forward over the shared model — the
        multi-user throughput path.  ``batched=False`` keeps the
        sequential reference loop (finish each answer before starting the
        next).  Both are token-identical to issuing the same requests one
        at a time through :meth:`query`.
        """
        with self._lock:
            return self._answer_batch_locked(requests, batched)

    def _answer_batch_locked(self, requests: list[QueryRequest],
                             batched: bool) -> list[QueryResponse]:
        order: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            order.setdefault(request.user_id, []).append(position)
        if not batched:
            responses: list[QueryResponse | None] = [None] * len(requests)
            for user_id, positions in order.items():
                session = self._resident_session(user_id)
                deployment = session.deployment()
                code_cache: dict[str, np.ndarray] = {}
                prompt_cache: dict[int, np.ndarray] = {}
                for position in positions:
                    responses[position] = self._serve_one(
                        session, deployment, requests[position],
                        code_cache, prompt_cache)
            return responses  # type: ignore[return-value]

        pendings: list[PendingQuery | None] = [None] * len(requests)
        try:
            for user_id, positions in order.items():
                session = self._resident_session(user_id)
                deployment = session.deployment()
                user_codes: dict[str, np.ndarray] = {}
                user_prompts: dict[int, np.ndarray] = {}
                # One batched in-memory search scores every query text
                # this user contributed to the batch.
                retrievals = self._retrieve_batch(
                    deployment,
                    [requests[position].text for position in positions],
                    user_codes)
                for position in positions:
                    pendings[position] = self._admit_one(
                        session, deployment, requests[position],
                        user_codes, user_prompts,
                        retrieval=retrievals[requests[position].text])
        finally:
            # Even if a later user's admission fails (e.g. no resident
            # session), already-admitted queries are drained to completion
            # — matching the sequential path, which serves earlier users
            # before raising.
            while any(p is not None and not p.done for p in pendings):
                self.run_decode_round()
        return [p.response for p in pendings]  # type: ignore[misc]

    def begin_query(self, request: QueryRequest, *,
                    deadline: float | None = None) -> PendingQuery:
        """Admit one query to the continuous-batching decoder.

        The retrieval happens now (so telemetry is snapshotted against the
        current deployment) and the first token is sampled from the
        prefill logits; the answer then advances one token per
        :meth:`run_decode_round` until it retires.  The returned handle's
        ``response`` is token-identical to what :meth:`query` would have
        produced.

        ``deadline`` (a ``time.monotonic()`` timestamp) retires the
        generation with the tokens produced so far once a round starts
        past it — the per-request latency SLO hook.

        Raises :class:`QueueFull` when the engine was built with
        ``max_pending`` and that many generations are already in flight;
        the caller should shed load (the gateway answers 429).
        """
        with self._lock:
            if (self.max_pending is not None
                    and len(self._pending) >= self.max_pending):
                self.rejected += 1
                raise QueueFull(len(self._pending), self.max_pending)
            session = self._resident_session(request.user_id)
            return self._admit_one(session, session.deployment(), request,
                                   {}, {}, deadline=deadline)

    def run_decode_round(self) -> DecodeRoundReport:
        """Advance every pending generation (one base forward per round).

        Without a speculative decoder each generation gains exactly one
        token; with one, greedy generations may gain several
        draft-verified tokens per round.

        This is the serving hot loop: all sessions with pending
        generations share a single batched decode step, and generations
        that retire (EOS, budget, or deadline) have their responses
        finalised so new queries can be admitted mid-flight.  Returns the
        round's report (tokens emitted, batch occupancy, retirements); a
        no-op when nothing is pending.

        Thread-safe: the engine lock is held for the whole round, so
        concurrent :meth:`begin_query` / :meth:`stats` callers interleave
        between rounds, never inside one.
        """
        with self._lock:
            report = self._scheduler.decode_round()
            finished = [p for p in self._pending if p._sequence.finished]
            for pending in finished:
                self._finalize(pending)
            return report

    # ------------------------------------------------------------------
    @staticmethod
    def _retrieve(deployment: NVCiMDeployment, text: str,
                  code_cache: dict[str, np.ndarray]) -> tuple[int, np.ndarray]:
        """In-memory search for the best OVT; memoises the query encoding."""
        codes = code_cache.get(text)
        if codes is None:
            codes = code_cache[text] = deployment.encode_query(text)
        scores = deployment.engine.query(codes)
        return int(np.argmax(scores)), scores

    @staticmethod
    def _retrieve_batch(
        deployment: NVCiMDeployment, texts: list[str],
        code_cache: dict[str, np.ndarray],
    ) -> dict[str, tuple[int, np.ndarray]]:
        """Batched in-memory search over the pending query texts.

        All texts are encoded (memoised in ``code_cache``) and scored
        against every scale's store with one
        :meth:`~repro.retrieval.CiMSearchEngine.query_batch` call; each
        text maps to the (best index, per-OVT scores) pair the equivalent
        single :meth:`_retrieve` would return.  Repeated texts keep their
        own batch rows (identical bit for bit), so the crossbar counters
        bill exactly the MVMs the sequential reference would.
        """
        for text in texts:
            if text not in code_cache:
                code_cache[text] = deployment.encode_query(text)
        scores = deployment.engine.query_batch(
            [code_cache[text] for text in texts])
        return {text: (int(np.argmax(row)), row)
                for text, row in zip(texts, scores)}

    @staticmethod
    def _prompt_restorer(deployment: NVCiMDeployment, index: int,
                         prompt_cache: dict[int, np.ndarray],
                         ) -> Callable[[], np.ndarray]:
        """Lazy NVM read-back: only reached on a prefill-cache miss, so a
        repeated query skips the read-back and autoencoder decode along
        with the prefill itself."""
        def restore_prompt() -> np.ndarray:
            prompt = prompt_cache.get(index)
            if prompt is None:
                prompt = prompt_cache[index] = deployment.restored_prompt(index)
            return prompt
        return restore_prompt

    def _serve_one(self, session: UserSession, deployment: NVCiMDeployment,
                   request: QueryRequest,
                   code_cache: dict[str, np.ndarray],
                   prompt_cache: dict[int, np.ndarray]) -> QueryResponse:
        """Sequential reference path: retrieve, restore, decode to the end."""
        started = time.perf_counter()
        text = request.text
        index, scores = self._retrieve(deployment, text, code_cache)
        generation = request.generation or self.default_generation()
        state = session.prefill_state(
            text, index, self._prompt_restorer(deployment, index, prompt_cache))
        answer = self.tokenizer.decode(
            decode_from(self.model, state, generation))
        cost = _deployment_cost(deployment)
        session.queries_served += 1
        self.requests_served += 1
        self._latency.record(time.perf_counter() - started)
        return QueryResponse(
            user_id=request.user_id,
            text=text,
            answer=answer,
            ovt_index=index,
            scores=tuple(float(s) for s in scores),
            n_ovts=deployment.engine.n_stored,
            backend=cost.backend,
            latency_ns=cost.latency_ns,
            energy_pj=cost.energy_pj,
            request_id=request.request_id,
        )

    def _admit_one(self, session: UserSession, deployment: NVCiMDeployment,
                   request: QueryRequest,
                   code_cache: dict[str, np.ndarray],
                   prompt_cache: dict[int, np.ndarray],
                   retrieval: tuple[int, np.ndarray] | None = None,
                   deadline: float | None = None,
                   ) -> PendingQuery:
        """Retrieve/restore/prefill one query and admit it to the decoder.

        ``retrieval`` carries a precomputed (index, scores) pair when the
        caller already ran a batched search; otherwise admission runs its
        own batch-of-one search.  Retrieval telemetry and the analytic
        cost are snapshotted now so the eventual response matches the
        sequential path even if the session is evicted (or retrained)
        while the answer is in flight.
        """
        text = request.text
        if retrieval is None:
            retrieval = self._retrieve_batch(
                deployment, [text], code_cache)[text]
        index, scores = retrieval
        generation = request.generation or self.default_generation()
        state = session.prefill_state(
            text, index, self._prompt_restorer(deployment, index, prompt_cache))
        pending = PendingQuery(request)
        pending._session = session
        pending._admitted_at = time.perf_counter()
        pending._retrieval = (index, tuple(float(s) for s in scores),
                              deployment.engine.n_stored,
                              _deployment_cost(deployment))
        prompt_ids = None
        if self.speculative is not None:
            # The draft model sees the raw query tokens (no soft prompt /
            # KV prefix — base-model conditioning it cannot consume).
            # This only steers drafting; answers stay token-identical.
            prompt_ids = np.asarray(self.tokenizer.encode(text),
                                    dtype=np.int64)
        pending._sequence = self._scheduler.admit(state, generation,
                                                 deadline=deadline,
                                                 prompt_ids=prompt_ids)
        session.generations_in_flight += 1
        self.admitted += 1
        self._pending.append(pending)
        if pending._sequence.finished:
            self._finalize(pending)   # e.g. EOS on the very first sample
        return pending

    def _finalize(self, pending: PendingQuery) -> None:
        """Turn a retired generation into its response (exactly once)."""
        request = pending.request
        if pending._sequence.finish_reason in ("cancelled", "deadline"):
            pending.cancelled = True
        index, scores, n_ovts, cost = pending._retrieval
        pending.response = QueryResponse(
            user_id=request.user_id,
            text=request.text,
            answer=self.tokenizer.decode(pending._sequence.token_ids()),
            ovt_index=index,
            scores=scores,
            n_ovts=n_ovts,
            backend=cost.backend,
            latency_ns=cost.latency_ns,
            energy_pj=cost.energy_pj,
            request_id=request.request_id,
        )
        pending._session.queries_served += 1
        pending._session.generations_in_flight -= 1
        self.requests_served += 1
        self._latency.record(time.perf_counter() - pending._admitted_at)
        self._pending.remove(pending)
