"""Sharding users across multiple serving engines.

A :class:`ShardedPromptEngine` hash-routes every user to one of ``n``
:class:`~repro.serve.engine.PromptServeEngine` workers over the same
shared base model.  Each worker owns its own crossbar banks, session LRU
and continuous-batching decode scheduler; the shard of a user is a
stable hash of their id, so a user's sessions, spilled snapshots and
in-flight generations always live on the same worker (and a shared
:class:`~repro.serve.store.SessionStore` never sees two workers write
the same user).

The sharded engine exposes the same thread-safe surface as a single
engine — ``begin_query`` / ``run_decode_round`` / ``cancel_query`` /
``submit`` / ``stats`` — so :class:`~repro.gateway.PromptGateway` serves
it unchanged: admission routes to the owning worker, one decode round
ticks every worker's scheduler, and ``stats()`` aggregates the fleet
(sums for additive counters, merged latency histograms, recomputed
ratios) plus a per-worker breakdown.

Because each sequence's decode is bit-exact regardless of batch
composition, routing users across workers changes *which* forwards batch
together but not one token of any answer: a sharded trace replays
byte-identically to a single engine serving the same requests.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

from ..core.framework import FrameworkConfig, OVTLibrary
from ..data.lamp import Sample
from ..llm.generation import DecodeRoundReport, GenerationConfig
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .api import (
    PendingQuery,
    QueryRequest,
    QueryResponse,
    TuneRequest,
    TuneResponse,
)
from .engine import PromptServeEngine
from .metrics import LatencyHistogram
from .session import UserSession
from .stats_manifest import STATS_MANIFEST
from .store import SessionStore

__all__ = ["ShardedPromptEngine"]


def _summed_keys() -> tuple[str, ...]:
    """The additive counters, straight from the stats manifest."""
    return tuple(key for key, kind in STATS_MANIFEST.items()
                 if kind == "additive")


# Back-compat alias (tests iterate it); the live source of truth is the
# manifest, which stats() re-reads so runtime register_stat() calls are
# picked up without re-importing this module.
_SUMMED_KEYS = _summed_keys()


class ShardedPromptEngine:
    """N serving engines behind one engine-shaped facade."""

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: FrameworkConfig | None = None, *,
                 n_workers: int = 4,
                 max_sessions: int = 8,
                 max_pending: int | None = None,
                 session_store: SessionStore | None = None,
                 snapshot_mode: str = "raw",
                 speculative=None):
        """``max_sessions`` and ``max_pending`` are per-worker budgets
        (each worker models one device's NVM banks and decode slots).
        ``speculative`` (a :class:`~repro.llm.speculative.
        SpeculativeDecoder`) is shared by every worker — it is stateless
        across rounds and its draft model is read-only, so one draft
        serves the whole fleet."""
        if n_workers <= 0:
            raise ValueError("n_workers must be positive")
        self.model = model
        self.tokenizer = tokenizer
        self.config = config if config is not None else FrameworkConfig()
        self.session_store = session_store
        self.speculative = speculative
        self.workers: tuple[PromptServeEngine, ...] = tuple(
            PromptServeEngine(model, tokenizer, self.config,
                              max_sessions=max_sessions,
                              max_pending=max_pending,
                              session_store=session_store,
                              snapshot_mode=snapshot_mode,
                              speculative=speculative)
            for _ in range(n_workers))

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, user_id: int) -> int:
        """The worker index owning ``user_id`` — stable across runs.

        A salted SHA-256 of the id (not Python's randomized ``hash``), so
        a user's shard survives restarts and is identical on every
        replica reading the same store.
        """
        digest = hashlib.sha256(f"shard:{int(user_id)}".encode()).digest()
        return int.from_bytes(digest[:8], "little") % len(self.workers)

    def worker_for(self, user_id: int) -> PromptServeEngine:
        return self.workers[self.shard_of(user_id)]

    # ------------------------------------------------------------------
    # Session management (delegated to the owning worker)
    # ------------------------------------------------------------------
    def session(self, user_id: int, *,
                config: FrameworkConfig | None = None) -> UserSession:
        return self.worker_for(user_id).session(user_id, config=config)

    def load_session(self, user_id: int, library: OVTLibrary, *,
                     config: FrameworkConfig | None = None) -> UserSession:
        return self.worker_for(user_id).load_session(user_id, library,
                                                     config=config)

    def has_session(self, user_id: int) -> bool:
        return self.worker_for(user_id).has_session(user_id)

    def active_users(self) -> list[int]:
        """Resident user ids across the fleet, grouped by worker."""
        users: list[int] = []
        for worker in self.workers:
            users.extend(worker.active_users())
        return users

    def drop_session(self, user_id: int, *, cancel_pending: bool = False,
                     spill: bool = True) -> bool:
        return self.worker_for(user_id).drop_session(
            user_id, cancel_pending=cancel_pending, spill=spill)

    # ------------------------------------------------------------------
    # Training mode
    # ------------------------------------------------------------------
    def observe(self, user_id: int, sample: Sample) -> bool:
        return self.worker_for(user_id).observe(user_id, sample)

    def submit(self, request: TuneRequest) -> TuneResponse:
        return self.worker_for(request.user_id).submit(request)

    def submit_batch(self, requests: list[TuneRequest]) -> list[TuneResponse]:
        """Absorb many users' batches; responses come back in input order.

        Grouped by user first (matching the single engine) so one user's
        buffer fills contiguously even when the input interleaves users.
        """
        order: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            order.setdefault(request.user_id, []).append(position)
        responses: list[TuneResponse | None] = [None] * len(requests)
        for positions in order.values():
            for position in positions:
                responses[position] = self.submit(requests[position])
        return responses  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # Inference mode
    # ------------------------------------------------------------------
    def default_generation(self) -> GenerationConfig:
        return self.workers[0].default_generation()

    def answer(self, user_id: int, text: str,
               generation: GenerationConfig | None = None) -> str:
        return self.worker_for(user_id).answer(user_id, text, generation)

    def query(self, request: QueryRequest) -> QueryResponse:
        return self.worker_for(request.user_id).query(request)

    def answer_batch(self, requests: list[QueryRequest], *,
                     batched: bool = True) -> list[QueryResponse]:
        """Serve a batch across the fleet; responses in input order.

        Each worker receives its users' requests as one sub-batch
        (preserving their arrival order) and drains them independently.
        Per-sequence decode is bit-exact whatever the batch composition,
        so the scattered result equals a single engine's, token for
        token.
        """
        by_worker: OrderedDict[int, list[int]] = OrderedDict()
        for position, request in enumerate(requests):
            by_worker.setdefault(self.shard_of(request.user_id),
                                 []).append(position)
        responses: list[QueryResponse | None] = [None] * len(requests)
        for shard, positions in by_worker.items():
            shard_responses = self.workers[shard].answer_batch(
                [requests[position] for position in positions],
                batched=batched)
            for position, response in zip(positions, shard_responses):
                responses[position] = response
        return responses  # type: ignore[return-value]

    def begin_query(self, request: QueryRequest, *,
                    deadline: float | None = None) -> PendingQuery:
        """Admit one query on the owning worker.

        Raises :class:`~repro.serve.engine.QueueFull` when that worker's
        pending queue is at capacity — backpressure is per shard, since
        each worker's decode batch is a separate device.
        """
        return self.worker_for(request.user_id).begin_query(
            request, deadline=deadline)

    def cancel_query(self, pending: PendingQuery) -> bool:
        return self.worker_for(pending.user_id).cancel_query(pending)

    def run_decode_round(self) -> DecodeRoundReport:
        """Tick every worker's scheduler once; merged round report.

        The gateway's decode loop calls this exactly as it would a single
        engine's round: each worker advances all of its pending
        generations by one token in its own batched forward.
        """
        tokens = active = retired = expired = 0
        for worker in self.workers:
            report = worker.run_decode_round()
            tokens += report.tokens_emitted
            active += report.n_active
            retired += report.n_retired
            expired += report.n_expired
        return DecodeRoundReport(tokens_emitted=tokens, n_active=active,
                                 n_retired=retired, n_expired=expired)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Fleet-wide aggregate plus a per-worker breakdown.

        Additive counters sum across workers; throughput ratios are
        recomputed from the summed numerators/denominators (not averaged
        averages); request latency histograms merge sample-by-sample.
        The shared session store is reported once, not per worker.
        """
        per_worker = [worker.stats() for worker in self.workers]
        aggregate: dict = {}
        # Scalar kinds merge by their declared semantics.  A key missing
        # from any worker is skipped, not guessed at: extension counters
        # only aggregate once both declared (register_stat) and emitted.
        for key, kind in STATS_MANIFEST.items():
            if not all(key in stats for stats in per_worker):
                continue
            values = [stats[key] for stats in per_worker]
            if kind == "additive":
                aggregate[key] = sum(values)
            elif kind == "capacity":
                aggregate[key] = (None if any(v is None for v in values)
                                  else sum(values))
        # Ratios recompute from the summed numerators/denominators.
        for key, kind in STATS_MANIFEST.items():
            if isinstance(kind, tuple) and kind[0] == "ratio":
                _, num, den = kind
                if num in aggregate and den in aggregate:
                    aggregate[key] = (aggregate[num] / aggregate[den]
                                      if aggregate[den] else 0.0)
        latency = LatencyHistogram()
        for worker in self.workers:
            latency.merge(worker._latency)
        aggregate["latency_ms"] = latency.summary()
        aggregate["session_store"] = (self.session_store.stats()
                                      if self.session_store is not None
                                      else None)
        aggregate["n_workers"] = len(self.workers)
        # Model-resident accounting is structural, not additive: every
        # worker shares the one base model, so summing would multiply the
        # real footprint by the fleet size.  Worker 0 speaks for all.
        for key in ("quantized_layers", "weight_bytes", "weight_bytes_saved"):
            aggregate[key] = per_worker[0][key]
        aggregate["workers"] = per_worker
        return aggregate
