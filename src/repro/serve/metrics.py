"""Serving-side latency metrics.

:class:`LatencyHistogram` is the per-request latency aggregate shared by
the engine, the HTTP gateway, and the load benchmarks: a fixed set of
log-spaced buckets (O(1) record, bounded memory no matter how many
requests flow through) plus exact count/sum/min/max, with percentile
estimates interpolated inside the winning bucket.  Relative bucket width
is ~20%, which is far below the run-to-run noise of any wall-clock
latency this repo measures.

The histogram is intentionally dependency-free and lock-free; callers
that record from several threads (the engine does) guard it with their
own lock.
"""

from __future__ import annotations

import math

__all__ = ["LatencyHistogram"]

# Buckets span 1 microsecond .. ~17 minutes with ~20% resolution; anything
# outside clamps to the edge buckets.
_FLOOR_S = 1e-6
_GROWTH = 1.2
_N_BUCKETS = 120


class LatencyHistogram:
    """Log-bucketed latency histogram with p50/p99 summaries."""

    __slots__ = ("_counts", "count", "total_s", "min_s", "max_s")

    def __init__(self):
        self._counts = [0] * _N_BUCKETS
        self.count = 0
        self.total_s = 0.0
        self.min_s = math.inf
        self.max_s = 0.0

    # ------------------------------------------------------------------
    @staticmethod
    def _bucket(seconds: float) -> int:
        if seconds <= _FLOOR_S:
            return 0
        index = int(math.log(seconds / _FLOOR_S, _GROWTH)) + 1
        return min(index, _N_BUCKETS - 1)

    @staticmethod
    def _bucket_bounds(index: int) -> tuple[float, float]:
        if index == 0:
            return 0.0, _FLOOR_S
        return (_FLOOR_S * _GROWTH ** (index - 1),
                _FLOOR_S * _GROWTH ** index)

    # ------------------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one request's wall latency (in seconds)."""
        seconds = max(0.0, float(seconds))
        self._counts[self._bucket(seconds)] += 1
        self.count += 1
        self.total_s += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold another histogram's samples into this one (returns self)."""
        for i, n in enumerate(other._counts):
            self._counts[i] += n
        self.count += other.count
        self.total_s += other.total_s
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)
        return self

    # ------------------------------------------------------------------
    def percentile(self, q: float) -> float:
        """Estimated latency (seconds) at quantile ``q`` in [0, 1].

        Linear interpolation inside the winning bucket, clamped to the
        exact observed min/max so single-sample histograms are exact.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, n in enumerate(self._counts):
            if n == 0:
                continue
            if seen + n >= rank:
                low, high = self._bucket_bounds(index)
                within = (rank - seen) / n
                value = low + (high - low) * within
                return min(max(value, self.min_s), self.max_s)
            seen += n
        return self.max_s

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-ready summary in milliseconds (the dashboard unit)."""
        return {
            "count": self.count,
            "p50_ms": self.percentile(0.50) * 1e3,
            "p99_ms": self.percentile(0.99) * 1e3,
            "mean_ms": self.mean_s * 1e3,
            "max_ms": (self.max_s if self.count else 0.0) * 1e3,
        }

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (f"LatencyHistogram(n={self.count}, "
                f"p50={self.percentile(0.5) * 1e3:.2f}ms, "
                f"p99={self.percentile(0.99) * 1e3:.2f}ms)")
