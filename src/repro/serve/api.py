"""Typed request/response objects of the serving API.

Every interaction with :class:`~repro.serve.PromptServeEngine` is a small
immutable dataclass: training data arrives as :class:`TuneRequest`s,
queries as :class:`QueryRequest`s, and answers come back as
:class:`QueryResponse`s that carry the generated text *plus* the retrieval
telemetry an operator needs (which OVT was selected, the per-OVT
similarity scores, and the analytic latency/energy estimate of the
in-memory search from :mod:`repro.cim.energy`).

:class:`PendingQuery` is the one mutable object: the handle returned by
:meth:`~repro.serve.PromptServeEngine.begin_query` for a query admitted to
the continuous-batching decoder.  It fills with a :class:`QueryResponse`
once the generation retires (EOS, token budget, or cancellation)."""

from __future__ import annotations

from dataclasses import dataclass

from ..data.lamp import Sample
from ..llm.generation import GenerationConfig

__all__ = ["TuneRequest", "TuneResponse", "QueryRequest", "QueryResponse",
           "PendingQuery"]


@dataclass(frozen=True)
class TuneRequest:
    """A batch of one user's interactions for the training pipeline."""

    user_id: int
    samples: tuple[Sample, ...]
    request_id: str = ""

    def __post_init__(self):
        if not isinstance(self.samples, tuple):
            object.__setattr__(self, "samples", tuple(self.samples))
        if not self.samples:
            raise ValueError("a TuneRequest needs at least one sample")


@dataclass(frozen=True)
class TuneResponse:
    """Outcome of absorbing one :class:`TuneRequest`."""

    user_id: int
    accepted: int            # samples absorbed into the user's buffer
    epochs_fired: int        # training epochs the request triggered
    library_size: int        # OVTs stored for this user afterwards
    request_id: str = ""


@dataclass(frozen=True)
class QueryRequest:
    """One user query for the inference path."""

    user_id: int
    text: str
    generation: GenerationConfig | None = None   # engine default when None
    request_id: str = ""

    def __post_init__(self):
        if not self.text:
            raise ValueError("a QueryRequest needs non-empty text")


@dataclass(frozen=True)
class QueryResponse:
    """The answer to one :class:`QueryRequest`, with retrieval telemetry."""

    user_id: int
    text: str                          # the query, echoed back
    answer: str                        # generated continuation
    ovt_index: int                     # which stored OVT was retrieved
    scores: tuple[float, ...] = ()     # WMSDP similarity per stored OVT
    n_ovts: int = 0                    # library size at answer time
    backend: str = ""                  # "RRAM" / "FeFET" on CiM, else "CPU"
    latency_ns: float = 0.0            # analytic retrieval latency estimate
    energy_pj: float = 0.0             # analytic retrieval energy estimate
    request_id: str = ""

    @property
    def latency_us(self) -> float:
        return self.latency_ns * 1e-3

    @property
    def energy_uj(self) -> float:
        return self.energy_pj * 1e-6


class PendingQuery:
    """A query admitted to the engine's continuous-batching decoder.

    Returned by :meth:`~repro.serve.PromptServeEngine.begin_query`; each
    :meth:`~repro.serve.PromptServeEngine.run_decode_round` advances it by
    at most one token.  Once the generation retires, :attr:`response`
    holds the same :class:`QueryResponse` the sequential path would have
    produced.  The handle is self-contained — retrieval telemetry is
    snapshotted at admission and the decode state lives in the underlying
    sequence — so evicting the owning session mid-flight can neither
    corrupt this query nor any other in the batch.
    """

    __slots__ = ("request", "response", "cancelled",
                 "_sequence", "_session", "_retrieval", "_admitted_at")

    def __init__(self, request: QueryRequest):
        self.request = request
        self.response: QueryResponse | None = None
        self.cancelled = False
        self._admitted_at = 0.0   # perf_counter at admission (latency stat)

    @property
    def done(self) -> bool:
        return self.response is not None

    @property
    def user_id(self) -> int:
        return self.request.user_id

    @property
    def finish_reason(self) -> str | None:
        """Why the generation retired: ``"eos"``, ``"length"``,
        ``"context"``, ``"cancelled"``, ``"deadline"`` — or None while
        still in flight."""
        return self._sequence.finish_reason

    def __repr__(self) -> str:
        status = ("cancelled" if self.cancelled
                  else "done" if self.done else "pending")
        return f"PendingQuery(user={self.user_id}, {status})"
