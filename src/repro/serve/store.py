"""Session persistence: where evicted sessions spill and restore from.

A :class:`SessionStore` holds serialized
:class:`~repro.serve.snapshot.SessionSnapshot` blobs keyed by user id,
with two backends behind one API:

* **memory** (``directory=None``) — blobs in a dict; survives eviction
  but not the process.
* **disk** — one ``session_<user>.nvpt`` file per user under
  ``directory``; writes go through a temp file and ``os.replace`` so a
  crash mid-spill never leaves a truncated snapshot behind.

The store works on bytes, not sessions: callers
(:class:`~repro.serve.engine.PromptServeEngine` eviction, operators
archiving users, another worker adopting them) decide when to capture
and rebuild.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["SessionStore"]

_SUFFIX = ".nvpt"
_PREFIX = "session_"


class SessionStore:
    """Keyed blob storage for serialized session snapshots."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self._memory: dict[int, bytes] = {}
        self._directory: Path | None = None
        if directory is not None:
            self._directory = Path(directory)
            self._directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @property
    def backend(self) -> str:
        return "memory" if self._directory is None else "disk"

    @property
    def directory(self) -> Path | None:
        return self._directory

    def _path(self, user_id: int) -> Path:
        return self._directory / f"{_PREFIX}{int(user_id)}{_SUFFIX}"

    # ------------------------------------------------------------------
    def put(self, user_id: int, blob: bytes) -> None:
        """Store (or overwrite) one user's snapshot blob."""
        user_id = int(user_id)
        if self._directory is None:
            self._memory[user_id] = bytes(blob)
            return
        # Atomic publish: a reader (or a crash) sees the old blob or the
        # new one, never a partial write.
        fd, tmp_name = tempfile.mkstemp(dir=self._directory,
                                        prefix=f"{_PREFIX}{user_id}.",
                                        suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, self._path(user_id))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def get(self, user_id: int) -> bytes | None:
        """The user's stored blob, or None if they were never spilled."""
        user_id = int(user_id)
        if self._directory is None:
            return self._memory.get(user_id)
        try:
            return self._path(user_id).read_bytes()
        except FileNotFoundError:
            return None

    def delete(self, user_id: int) -> bool:
        """Drop one user's blob; True if something was removed."""
        user_id = int(user_id)
        if self._directory is None:
            return self._memory.pop(user_id, None) is not None
        try:
            self._path(user_id).unlink()
            return True
        except FileNotFoundError:
            return False

    def clear(self) -> None:
        """Drop every stored blob."""
        for user_id in self.user_ids():
            self.delete(user_id)

    # ------------------------------------------------------------------
    def __contains__(self, user_id: int) -> bool:
        if self._directory is None:
            return int(user_id) in self._memory
        return self._path(int(user_id)).exists()

    def __len__(self) -> int:
        return len(self.user_ids())

    def user_ids(self) -> list[int]:
        """Ids with a stored snapshot, ascending."""
        if self._directory is None:
            return sorted(self._memory)
        ids = []
        for path in self._directory.glob(f"{_PREFIX}*{_SUFFIX}"):
            core = path.name[len(_PREFIX):-len(_SUFFIX)]
            try:
                ids.append(int(core))
            except ValueError:
                continue
        return sorted(ids)

    def stats(self) -> dict:
        """Backend, resident snapshot count, and total stored bytes."""
        if self._directory is None:
            total = sum(len(blob) for blob in self._memory.values())
        else:
            total = 0
            for user_id in self.user_ids():
                try:
                    total += self._path(user_id).stat().st_size
                except FileNotFoundError:
                    continue
        return {"backend": self.backend, "sessions": len(self),
                "bytes": total}
