"""DEPT: Decomposed Prompt Tuning (Shi & Lipani, 2023).

Decomposes the parameter budget into (i) a *shorter* soft prompt and (ii) a
low-rank update of the frozen word-embedding table.  The Fig. 1 "DEPT"
baseline trains this one4all on the user's buffer.
"""

from __future__ import annotations

import numpy as np

from ..ag import Parameter, Tensor, cat, cross_entropy, sequence_cross_entropy
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .base import (
    IGNORE_INDEX,
    PromptArtifact,
    TuningConfig,
    VirtualTokens,
    build_training_batch,
    build_training_ids,
    make_target_vector,
    mean_loss,
)
from .trainer import train_prompt_parameters
from .vanilla import initial_prompt_matrix
from ..utils import rng_from_seed

__all__ = ["DEPTTuner"]


class DEPTTuner:
    """Short soft prompt + low-rank embedding delta."""

    method_name = "dept"

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: TuningConfig = TuningConfig(), *, rank: int = 4):
        if rank <= 0:
            raise ValueError("rank must be positive")
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.rank = rank

    def fit(self, samples: list[Sample]) -> PromptArtifact:
        cfg = self.model.config
        rng = rng_from_seed(self.config.seed)
        # DEPT halves the prompt length, spending the rest on the low-rank
        # embedding update.
        short_len = max(1, self.config.n_virtual_tokens // 2)
        init = initial_prompt_matrix(self.model, self.tokenizer, samples,
                                     short_len, rng)
        prompt = Parameter(init)
        lora_a = Parameter(rng.normal(0.0, 0.02, (cfg.vocab_size, self.rank)))
        lora_b = Parameter(np.zeros((self.rank, cfg.d_model)))
        params = [prompt, lora_a, lora_b]

        def sample_loss(sample: Sample) -> Tensor:
            full_ids, loss_positions = build_training_ids(sample, self.tokenizer)
            inputs = full_ids[:-1]
            delta_table = lora_a @ lora_b           # (V, d)
            delta = delta_table[inputs].reshape(1, inputs.size, cfg.d_model)
            token_emb = self.model.embed(inputs[None, :]) + delta
            prompt_batch = prompt.reshape(1, *prompt.shape)
            embeddings = cat([prompt_batch, token_emb], axis=1)
            logits = self.model(embeddings=embeddings)
            targets = make_target_vector(full_ids, loss_positions, short_len)
            vocab = logits.shape[-1]
            return cross_entropy(logits.reshape(-1, vocab), targets,
                                 ignore_index=IGNORE_INDEX)

        def batch_loss(batch: list[Sample]) -> Tensor:
            padded = build_training_batch(batch, self.tokenizer,
                                          prompt_len=short_len)
            size = padded.batch_size
            delta_table = lora_a @ lora_b           # (V, d)
            token_emb = (self.model.embed(padded.input_ids)
                         + delta_table[padded.input_ids])
            prompt_rows = prompt.reshape(1, short_len, cfg.d_model)
            embeddings = cat(
                [prompt_rows.broadcast_to((size, short_len, cfg.d_model)),
                 token_emb], axis=1)
            mask = np.concatenate([np.zeros((size, short_len), dtype=bool),
                                   padded.key_padding_mask], axis=1)
            logits = self.model(embeddings=embeddings, key_padding_mask=mask)
            return sequence_cross_entropy(logits, padded.targets,
                                          ignore_index=IGNORE_INDEX)

        def loss_fn(batch: list[Sample]) -> Tensor:
            if self.config.batched:
                return batch_loss(batch)
            return mean_loss([sample_loss(s) for s in batch])

        train_prompt_parameters(self.model, params, loss_fn, samples,
                                self.config)
        tokens = VirtualTokens(prompt.data.copy())
        delta = (lora_a.data @ lora_b.data).astype(np.float32)
        return PromptArtifact(soft_prompt=tokens, embedding_delta=delta,
                              method=self.method_name)
