"""P-tuning v2 (Liu et al., 2021).

Deep prompts: a trainable prompt matrix per layer, projected through that
layer's frozen key/value projections at forward time (no reparameterisation
network — the defining difference from prefix tuning).
"""

from __future__ import annotations

import numpy as np

from ..ag import Parameter, Tensor
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .base import PromptArtifact, TuningConfig
from .prefix import prefix_loss_for_batch
from .trainer import train_prompt_parameters
from ..utils import rng_from_seed

__all__ = ["PTuningV2Tuner"]


class PTuningV2Tuner:
    """Trains per-layer deep prompts in embedding space."""

    method_name = "p-tuning-v2"

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: TuningConfig = TuningConfig()):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config

    def _project(self, prompts: list[Parameter]) -> list[tuple[Tensor, Tensor]]:
        """Run each layer's prompt through its frozen K/V projections."""
        cfg = self.model.config
        n_heads = cfg.n_heads
        d_head = cfg.d_model // n_heads
        p = self.config.n_virtual_tokens
        prefixes = []
        for prompt, block in zip(prompts, self.model.blocks):
            batched = prompt.reshape(1, p, cfg.d_model)
            keys = block.attn.k_proj(batched)
            values = block.attn.v_proj(batched)
            keys = keys.reshape(1, p, n_heads, d_head).transpose(0, 2, 1, 3)
            values = values.reshape(1, p, n_heads, d_head).transpose(0, 2, 1, 3)
            prefixes.append((keys, values))
        return prefixes

    def fit(self, samples: list[Sample]) -> PromptArtifact:
        cfg = self.model.config
        rng = rng_from_seed(self.config.seed)
        prompts = [
            Parameter(rng.normal(0.0, 0.02,
                                 (self.config.n_virtual_tokens, cfg.d_model)))
            for _ in range(cfg.n_layers)
        ]

        def loss_fn(batch: list[Sample]) -> Tensor:
            return prefix_loss_for_batch(self.model, self._project(prompts),
                                         batch, self.tokenizer,
                                         batched=self.config.batched)

        train_prompt_parameters(self.model, prompts, loss_fn, samples,
                                self.config)
        final = self._project(prompts)
        raw = [(k.data.copy(), v.data.copy()) for k, v in final]
        return PromptArtifact(prefix_kv=raw, method=self.method_name)
