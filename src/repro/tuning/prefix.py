"""Prefix tuning (Li & Liang, 2021).

Trains per-layer key/value prefixes that every token may attend to.  The
keys/values are reparameterised through a small MLP during training (as in
the original paper) and flattened to raw KV matrices in the artifact.
"""

from __future__ import annotations

import numpy as np

from ..ag import Parameter, Tensor, cross_entropy, gelu, sequence_cross_entropy
from ..data.lamp import Sample
from ..llm.tokenizer import Tokenizer
from ..llm.transformer import TinyCausalLM
from .base import (
    IGNORE_INDEX,
    PromptArtifact,
    TuningConfig,
    build_training_batch,
    build_training_ids,
    make_target_vector,
    mean_loss,
)
from .trainer import train_prompt_parameters
from ..utils import rng_from_seed

__all__ = ["PrefixTuner", "prefix_loss_for_sample", "prefix_loss_for_batch",
           "kv_prefix_tensors"]


def kv_prefix_tensors(raw: list[tuple[np.ndarray, np.ndarray]]):
    """Convert stored numpy KV prefixes to the tensors the model expects."""
    return [(Tensor(k), Tensor(v)) for k, v in raw]


def prefix_loss_for_sample(model: TinyCausalLM,
                           prefix_kv: list[tuple[Tensor, Tensor]],
                           sample: Sample, tokenizer: Tokenizer) -> Tensor:
    """LM loss of one sample conditioned on per-layer KV prefixes."""
    full_ids, loss_positions = build_training_ids(sample, tokenizer)
    inputs = full_ids[:-1]
    logits = model(inputs[None, :], prefix_kv=prefix_kv)
    targets = make_target_vector(full_ids, loss_positions, prompt_len=0)
    vocab = logits.shape[-1]
    return cross_entropy(logits.reshape(-1, vocab), targets,
                         ignore_index=IGNORE_INDEX)


def prefix_loss_for_batch(model: TinyCausalLM,
                          prefix_kv: list[tuple[Tensor, Tensor]],
                          samples: list[Sample], tokenizer: Tokenizer, *,
                          batched: bool = True) -> Tensor:
    """Mean per-sample LM loss of a minibatch under per-layer KV prefixes.

    ``batched=True`` runs one padded forward with the (batch-1) prefixes
    broadcast across the minibatch; ``batched=False`` keeps the per-sample
    reference loop.  Both return the mean of the per-sample losses.
    """
    if not batched:
        return mean_loss([prefix_loss_for_sample(model, prefix_kv, s,
                                                 tokenizer)
                          for s in samples])
    batch = build_training_batch(samples, tokenizer, prompt_len=0)
    size = batch.batch_size
    tiled = [(k.broadcast_to((size,) + k.shape[1:]),
              v.broadcast_to((size,) + v.shape[1:]))
             for k, v in prefix_kv]
    logits = model(batch.input_ids, prefix_kv=tiled,
                   key_padding_mask=batch.key_padding_mask)
    return sequence_cross_entropy(logits, batch.targets,
                                  ignore_index=IGNORE_INDEX)


class PrefixTuner:
    """Trains reparameterised per-layer KV prefixes."""

    method_name = "prefix-tuning"

    def __init__(self, model: TinyCausalLM, tokenizer: Tokenizer,
                 config: TuningConfig = TuningConfig(),
                 *, hidden_dim: int = 32):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config
        self.hidden_dim = hidden_dim

    def fit(self, samples: list[Sample]) -> PromptArtifact:
        cfg = self.model.config
        n_layers, n_heads = cfg.n_layers, cfg.n_heads
        d_head = cfg.d_model // n_heads
        p = self.config.n_virtual_tokens
        rng = rng_from_seed(self.config.seed)

        # Reparameterisation: prefix embedding -> MLP -> all layers' KV.
        out_dim = n_layers * 2 * n_heads * d_head
        embed = Parameter(rng.normal(0.0, 0.5, (p, self.hidden_dim)))
        w1 = Parameter(rng.normal(0.0, 0.2, (self.hidden_dim, self.hidden_dim)))
        w2 = Parameter(rng.normal(0.0, 0.2, (self.hidden_dim, out_dim)))
        params = [embed, w1, w2]

        def materialise() -> list[tuple[Tensor, Tensor]]:
            hidden = gelu(embed @ w1)
            flat = hidden @ w2  # (p, out_dim)
            per_layer = flat.reshape(p, n_layers, 2, n_heads, d_head)
            prefixes = []
            for layer in range(n_layers):
                block = per_layer[:, layer]  # (p, 2, heads, d_head)
                keys = block[:, 0].transpose(1, 0, 2).reshape(1, n_heads, p, d_head)
                values = block[:, 1].transpose(1, 0, 2).reshape(1, n_heads, p, d_head)
                prefixes.append((keys, values))
            return prefixes

        def loss_fn(batch: list[Sample]) -> Tensor:
            return prefix_loss_for_batch(self.model, materialise(), batch,
                                         self.tokenizer,
                                         batched=self.config.batched)

        train_prompt_parameters(self.model, params, loss_fn, samples,
                                self.config)
        final = materialise()
        raw = [(k.data.copy(), v.data.copy()) for k, v in final]
        return PromptArtifact(prefix_kv=raw, method=self.method_name)
